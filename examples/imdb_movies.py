"""Full cluster study: every component of the imdb-movies cluster.

Walks the complete Figure-1 pipeline on a generated 40-page movie site:

* step 1 — cluster the site's pages (movies / actors / search);
* step 2 — build mapping rules for all fifteen movie components from a
  10-page working sample, reporting which refinement strategies each
  component needed;
* step 3 — extract every movie page, evaluate against ground truth,
  aggregate rating+comment into a ``users-opinion`` structure, and emit
  the XML document plus its XML Schema.

Run:  python examples/imdb_movies.py
"""

from repro import PageClusterer, ScriptedOracle
from repro.core.repository import Aggregation
from repro.extraction import (
    ExtractionPipeline,
    ExtractionProcessor,
    generate_xml_schema,
    write_cluster_xml,
)
from repro.evaluation.metrics import evaluate_extraction
from repro.evaluation.tables import format_table
from repro.sites import generate_imdb_site

COMPONENTS = [
    "title", "year", "rating", "votes", "director", "writer", "runtime",
    "country", "language", "aka", "plot", "comment", "genres", "actors",
    "characters",
]


def main() -> None:
    site = generate_imdb_site(n_movies=40, n_actors=15, n_search=8, seed=42)
    print(f"Site: {len(site)} pages on {site.domain}")

    # -- step 1: clustering -------------------------------------------- #
    clustering = PageClusterer().cluster(list(site))
    print("\nStep 1 - page clusters:")
    for cluster in clustering.clusters:
        print(f"  {cluster.name:<34} {len(cluster):>3} pages")

    movie_pages = max(clustering.clusters, key=len).pages

    # -- step 2: semantic analysis -------------------------------------- #
    # A representative working sample: include both page layouts.
    with_photo = [p for p in movie_pages if 'class="photo"' in p.html]
    without = [p for p in movie_pages if 'class="photo"' not in p.html]
    sample = with_photo[:6] + without[:4]

    pipeline = ExtractionPipeline(ScriptedOracle(), seed=7)
    result = pipeline.run_cluster(
        "imdb-movies", movie_pages, COMPONENTS, sample=sample
    )
    print("\nStep 2 - rule building (strategies per component):")
    print(result.build_report.summary())

    # -- step 3: extraction + evaluation --------------------------------- #
    summary = evaluate_extraction(result.extraction, movie_pages, COMPONENTS)
    print("\nStep 3 - extraction quality against ground truth:")
    print(format_table(["component", "P", "R", "F1"], summary.rows()))

    failures = result.extraction.failures
    print(f"\nDetected extraction failures: {len(failures)}")

    # -- a-posteriori aggregation (Section 4) ----------------------------- #
    result.repository.record_aggregation(
        "imdb-movies", Aggregation("users-opinion", ("comment", "rating"))
    )
    processor = ExtractionProcessor(result.repository, "imdb-movies")
    xml = write_cluster_xml(
        processor.extract(movie_pages[:2]), result.repository
    )
    print("\nAggregated XML for the first two pages:")
    print(xml)

    print("\nGenerated XML Schema (excerpt):")
    schema = generate_xml_schema(result.repository, "imdb-movies")
    print("\n".join(schema.splitlines()[:20]))
    print("  ...")


if __name__ == "__main__":
    main()
