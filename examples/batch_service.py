"""Offline-build / online-serve: the service-layer lifecycle end to end.

1. Offline (Figure 1): build and validate rules on ground-truth pages,
   save the repository — the deployable artifact.
2. Online (repro.service): reload the repository, fit a router from a
   few exemplar pages, and stream the whole site through the parallel
   batch engine into an incremental JSONL sink.

Run:  PYTHONPATH=src python examples/batch_service.py
"""

import tempfile
from pathlib import Path

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.service import BatchExtractionEngine, ClusterRouter, JsonlSink
from repro.sites.imdb import generate_imdb_site


def build_repository(site) -> RuleRepository:
    """The offline phase: semi-automatic rule building + validation."""
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        site.pages_with_hint("imdb-movies")[:8], oracle,
        repository=repository, cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    MappingRuleBuilder(
        site.pages_with_hint("imdb-actors")[:6], oracle,
        repository=repository, cluster_name="imdb-actors", seed=1,
    ).build_all(["actor-name", "born"])
    return repository


def main() -> None:
    site = generate_imdb_site(n_movies=60, n_actors=20, n_search=10, seed=7)
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))

    # ---- offline: build once, save the artifact ----------------------- #
    artifact = workdir / "rules.json"
    build_repository(site).save(artifact)
    print(f"artifact saved: {artifact}")

    # ---- online: load, compile, route, serve -------------------------- #
    repository = RuleRepository.load(artifact)
    router = ClusterRouter.fit({
        "imdb-movies": site.pages_with_hint("imdb-movies")[:6],
        "imdb-actors": site.pages_with_hint("imdb-actors")[:6],
        "imdb-search": site.pages_with_hint("imdb-search")[:4],
    })
    engine = BatchExtractionEngine(
        repository, router=router, workers=2, chunk_size=16
    )
    out = workdir / "records.jsonl"
    with JsonlSink(out) as sink:
        report = engine.run(list(site), sink)

    print(report.summary())
    print(f"records: {out}")
    wrapper = repository.compile_cluster("imdb-movies")
    print(
        f"compiled imdb-movies wrapper: {wrapper.stats.rules} rules, "
        f"{wrapper.stats.steps_shared} DOM steps/page saved by "
        f"prefix factoring"
    )


if __name__ == "__main__":
    main()
