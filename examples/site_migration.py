"""Web-site migration: from static HTML to a relational database.

The paper lists "the migration of a static Web site towards a database"
as a primary application of mapping rules (Sections 1 and 7, citing
[18]).  This example performs that migration end to end:

* mapping rules are built for the imdb-movies cluster;
* every page is extracted;
* the extracted records are loaded into SQLite (movies table plus
  genre/actor link tables, respecting the rules' multiplicity);
* a few SQL queries answer questions the HTML site never could.

Run:  python examples/site_migration.py
"""

import sqlite3

from repro import ScriptedOracle
from repro.extraction import ExtractionPipeline, PostProcessor, regex_extractor
from repro.evaluation.tables import format_table
from repro.sites import generate_imdb_site

COMPONENTS = [
    "title", "year", "rating", "runtime", "director", "country",
    "genres", "actors",
]

SCHEMA = """
CREATE TABLE movie (
    uri      TEXT PRIMARY KEY,
    title    TEXT NOT NULL,
    year     INTEGER,
    rating   REAL,
    runtime  INTEGER,
    director TEXT,
    country  TEXT
);
CREATE TABLE movie_genre (
    uri   TEXT REFERENCES movie(uri),
    genre TEXT NOT NULL
);
CREATE TABLE movie_actor (
    uri   TEXT REFERENCES movie(uri),
    actor TEXT NOT NULL
);
"""


def extract_cluster():
    site = generate_imdb_site(n_movies=40, seed=11)
    pages = site.pages_with_hint("imdb-movies")
    with_photo = [p for p in pages if 'class="photo"' in p.html]
    without = [p for p in pages if 'class="photo"' not in p.html]
    sample = with_photo[:6] + without[:4]

    # Post-processing turns display strings into database-ready values.
    post = PostProcessor()
    post.register("year", regex_extractor(r"\((\d{4})\)"))
    post.register("rating", regex_extractor(r"([\d.]+)/10"))
    post.register("runtime", regex_extractor(r"(\d+) min"))

    pipeline = ExtractionPipeline(
        ScriptedOracle(), seed=2, postprocessor=post
    )
    result = pipeline.run_cluster("imdb-movies", pages, COMPONENTS,
                                  sample=sample)
    print("Rules built:")
    print(result.build_report.summary())
    return result.extraction


def load_database(extraction) -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.executescript(SCHEMA)
    for page in extraction.pages:
        connection.execute(
            "INSERT INTO movie VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                page.url,
                page.first("title"),
                int(page.first("year") or 0),
                float(page.first("rating") or 0.0),
                int(page.first("runtime") or 0),
                page.first("director"),
                page.first("country"),
            ),
        )
        connection.executemany(
            "INSERT INTO movie_genre VALUES (?, ?)",
            [(page.url, genre) for genre in page.get("genres")],
        )
        connection.executemany(
            "INSERT INTO movie_actor VALUES (?, ?)",
            [(page.url, actor) for actor in page.get("actors")],
        )
    connection.commit()
    return connection


def query(connection) -> None:
    print("\nTop-rated movies (SQL over the migrated data):")
    rows = connection.execute(
        "SELECT title, year, rating, runtime FROM movie "
        "ORDER BY rating DESC LIMIT 5"
    ).fetchall()
    print(format_table(
        ["title", "year", "rating", "runtime (min)"],
        [[str(c) for c in row] for row in rows],
        align_right=[1, 2, 3],
    ))

    print("\nMovies per genre:")
    rows = connection.execute(
        "SELECT genre, COUNT(*) AS n, ROUND(AVG(m.rating), 2) "
        "FROM movie_genre g JOIN movie m ON m.uri = g.uri "
        "GROUP BY genre ORDER BY n DESC LIMIT 6"
    ).fetchall()
    print(format_table(
        ["genre", "movies", "avg rating"],
        [[str(c) for c in row] for row in rows],
        align_right=[1, 2],
    ))

    print("\nBusiest actors:")
    rows = connection.execute(
        "SELECT actor, COUNT(*) FROM movie_actor GROUP BY actor "
        "ORDER BY COUNT(*) DESC LIMIT 5"
    ).fetchall()
    print(format_table(
        ["actor", "appearances"],
        [[str(c) for c in row] for row in rows],
        align_right=[1],
    ))


def main() -> None:
    extraction = extract_cluster()
    connection = load_database(extraction)
    count = connection.execute("SELECT COUNT(*) FROM movie").fetchone()[0]
    print(f"\nMigrated {count} pages into SQLite.")
    query(connection)


if __name__ == "__main__":
    main()
