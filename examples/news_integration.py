"""Data integration: one schema over heterogeneous page layouts.

The paper's integration motivation (Section 1): data "coming from
heterogeneous Web sites" should land in one XML structure.  The news
cluster has two sub-layouts (byline in a meta line vs. in an author
box); mapping rules absorb the difference with contextual anchors and
alternative paths, so a single rule set — and a single XML Schema —
covers both.

Run:  python examples/news_integration.py
"""

from collections import Counter

from repro import ScriptedOracle
from repro.extraction import ExtractionPipeline
from repro.evaluation.metrics import evaluate_extraction
from repro.evaluation.tables import format_table
from repro.sites import generate_news_site

COMPONENTS = ["headline", "byline", "date", "section"]


def main() -> None:
    site = generate_news_site(30, seed=8, layout_b_fraction=0.4)
    pages = site.pages_with_hint("news-articles")
    layout_b = ['class="article-b"' in p.html for p in pages]
    print(
        f"Cluster: {len(pages)} articles "
        f"({sum(layout_b)} in layout B, {len(pages) - sum(layout_b)} in layout A)"
    )

    # Working sample with both layouts represented (Section 3.1).
    a_pages = [p for p, b in zip(pages, layout_b) if not b]
    b_pages = [p for p, b in zip(pages, layout_b) if b]
    sample = a_pages[:5] + b_pages[:5]

    pipeline = ExtractionPipeline(ScriptedOracle(), seed=4)
    result = pipeline.run_cluster("news-articles", pages, COMPONENTS,
                                  sample=sample)
    print("\nRule building:")
    print(result.build_report.summary())

    print("\nRules that needed more than one location (alternative paths):")
    for rule in result.build_report.recorded_rules:
        if len(rule.locations) > 1:
            print(f"  {rule.name}:")
            for location in rule.locations:
                print(f"    {location}")

    summary = evaluate_extraction(result.extraction, pages, COMPONENTS)
    print("\nExtraction quality across BOTH layouts:")
    print(format_table(["component", "P", "R", "F1"], summary.rows()))

    sections = Counter(
        page.first("section") for page in result.extraction.pages
    )
    print("\nIntegrated section counts (from the unified XML view):")
    for section, count in sections.most_common():
        print(f"  {section:<10} {count}")

    print("\nUnified XML Schema covers both layouts:")
    print("\n".join(result.schema.splitlines()[:14]))
    print("  ...")


if __name__ == "__main__":
    main()
