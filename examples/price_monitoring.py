"""Information monitoring: tracking concurrent prices and stock values.

The paper motivates mapping rules with "the monitoring of Web data such
as concurrent prices or stock rankings" (Section 7) and notes this agile
use case needs "only a few simple components".  This example:

* builds two tiny rule sets — ``last-price``/``change`` on the quote
  cluster and ``price``/``old-price`` on the shop cluster;
* registers post-processing (the Section-7 regular-expression
  extension) so "+1.25%" becomes the numeric "1.25";
* simulates two monitoring polls (the sites re-rendered with a new
  seed, i.e. new data in the same template) and prints the deltas —
  the rules keep working because the layout, not the data, is what
  they encode.

Run:  python examples/price_monitoring.py
"""

from repro import ScriptedOracle
from repro.extraction import (
    ExtractionPipeline,
    ExtractionProcessor,
    PostProcessor,
    regex_extractor,
)
from repro.evaluation.tables import format_table
from repro.sites import generate_shop_site, generate_stocks_site


def build_stock_rules():
    site = generate_stocks_site(8, seed=1)
    pages = site.pages_with_hint("stock-quotes")
    post = PostProcessor()
    post.register("change", regex_extractor(r"([+-]?\d+\.\d+)%"))
    pipeline = ExtractionPipeline(
        ScriptedOracle(), sample_size=6, seed=0, postprocessor=post
    )
    result = pipeline.run_cluster(
        "stock-quotes", pages, ["company", "last-price", "change"],
        sample=pages[:6],
    )
    print("Stock rules built:")
    print(result.build_report.summary())
    return result.repository, post


def poll(repository, post, seed: int):
    """One monitoring poll: fetch the cluster and extract the quotes."""
    site = generate_stocks_site(8, seed=seed)
    processor = ExtractionProcessor(
        repository, "stock-quotes", postprocessor=post
    )
    quotes = {}
    for page in processor.extract(site.pages_with_hint("stock-quotes")).pages:
        (company,) = page.get("company")
        quotes[company] = (page.first("last-price"), page.first("change"))
    return quotes


def monitor_stocks() -> None:
    repository, post = build_stock_rules()
    morning = poll(repository, post, seed=1)
    evening = poll(repository, post, seed=99)  # same template, new data
    rows = []
    for company in sorted(morning):
        am_price, _ = morning[company]
        pm_price, pm_change = evening.get(company, ("-", "-"))
        rows.append([company, am_price, pm_price, pm_change])
    print()
    print(format_table(
        ["company", "poll 1", "poll 2", "change (clean)"], rows,
        title="Stock monitoring — two polls with the same rules",
        align_right=[1, 2, 3],
    ))


def monitor_prices() -> None:
    site = generate_shop_site(20, seed=5)
    pages = site.pages_with_hint("shop-products")
    post = PostProcessor()
    post.register("price", regex_extractor(r"([\d.]+) EUR"))
    post.register("old-price", regex_extractor(r"([\d.]+) EUR"))
    pipeline = ExtractionPipeline(
        ScriptedOracle(), sample_size=8, seed=3, postprocessor=post
    )
    result = pipeline.run_cluster(
        "shop-products", pages, ["product-name", "price", "old-price"],
        sample=pages[:8],
    )
    print("\nShop rules built:")
    print(result.build_report.summary())

    rows = []
    for page in result.extraction.pages[:8]:
        name = page.first("product-name")
        price = page.first("price")
        old = page.first("old-price") or "-"
        discount = ""
        if old != "-":
            discount = f"-{(1 - float(price) / float(old)) * 100:.0f}%"
        rows.append([name, price, old, discount])
    print()
    print(format_table(
        ["product", "price", "old price", "discount"], rows,
        title="Concurrent prices (optional old-price handled as optional component)",
        align_right=[1, 2, 3],
    ))


def main() -> None:
    monitor_stocks()
    monitor_prices()


if __name__ == "__main__":
    main()
