"""Quickstart: the paper's worked example in ~40 lines.

Reproduces the runtime component workflow of Sections 3-4 against the
paper's four-page working sample:

1. open the sample in a workbench session (the "browser tabs"),
2. select "108 min" in the first page and name it ``runtime``,
3. inspect the check table (Table 1 — rows c and d fail),
4. refine (contextual information on the "Runtime:" label, Figure 4),
5. record the rule and extract the whole sample to XML (Figure 5).

Run:  python examples/quickstart.py
"""

from repro import ExtractionProcessor, WorkbenchSession, make_paper_sample
from repro.extraction import write_cluster_xml


def main() -> None:
    sample = make_paper_sample()
    session = WorkbenchSession(sample, cluster_name="imdb-movies")

    print("Tabs open in the session:")
    for url in session.tabs:
        print("  ", url)

    node = session.select(0, "108 min")
    candidate = session.interpret(node, "runtime")
    print("\nCandidate rule (from one positive example):")
    print(candidate.describe())

    print("\nCheck table before refinement (Table 1):")
    print(session.check_table())

    session.refine()
    print("\nCheck table after refinement (Table 3):")
    print(session.check_table())

    rule = session.record()
    print("\nRecorded rule:")
    print(rule.describe())

    processor = ExtractionProcessor(session.repository, "imdb-movies")
    xml = write_cluster_xml(processor.extract(sample), session.repository)
    print("\nGenerated XML document (Figure 5):")
    print(xml)


if __name__ == "__main__":
    main()
