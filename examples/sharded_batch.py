"""Sharded batch execution, end to end on one machine.

Simulates the three-command multi-host recipe (see README "Scaling out
with shards") in a single process: plan a corpus into three shards,
run each shard through its own ordered engine — in production each of
these runs on a different host — then mergesort the outputs and check
the merged stream is byte-identical to an unsharded run.

Run with: PYTHONPATH=src python examples/sharded_batch.py
"""

import io
import tempfile
from pathlib import Path

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.service import (
    BatchExtractionEngine,
    JsonlSink,
    ShardMerger,
    ShardPlanner,
    ShardWorker,
)
from repro.sites.imdb import generate_imdb_site


def main() -> None:
    site = generate_imdb_site(n_movies=60, n_actors=20, n_search=10, seed=42)
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        site.pages_with_hint("imdb-movies")[:8], oracle,
        repository=repository, cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])

    pages = list(site)
    by_url = {page.url: page for page in pages}

    # 1. plan: a deterministic split every "host" can recompute
    plan = ShardPlanner(3, "hash").plan([page.url for page in pages])
    print(f"plan: {len(pages)} page(s) -> shards of {plan.shard_sizes()}")

    # 2. run: one worker per shard (each would be its own host)
    shard_dir = Path(tempfile.mkdtemp(prefix="repro-shards-"))
    for shard in range(plan.shards):
        worker = ShardWorker(repository, plan, shard, workers=2)
        manifest, _ = worker.run(lambda url: by_url[url], shard_dir)
        print(
            f"shard {manifest.shard}: {manifest.records} record(s), "
            f"indices [{manifest.index_min}, {manifest.index_max}], "
            f"sha256 {manifest.sha256[:12]}..."
        )

    # 3. merge: mergesort by global submission index
    merged = io.StringIO()
    report = ShardMerger().merge([shard_dir], merged)
    print(report.summary())

    # The point of it all: byte-identity with the unsharded run.
    unsharded = io.StringIO()
    with JsonlSink(unsharded) as sink:
        BatchExtractionEngine(repository, workers=4, ordered=True).run(
            pages, sink
        )
    assert merged.getvalue() == unsharded.getvalue()
    print("merged output is byte-identical to the unsharded run")


if __name__ == "__main__":
    main()
