"""Metrics instrumentation overhead — the observability tax on serve.

Runs the same serve-handler loop twice over an identical corpus: once
with a real :class:`~repro.service.metrics.MetricsRegistry` (what
``serve --http`` registers into and ``GET /metrics`` renders) and once
with :data:`~repro.service.metrics.NULL_METRICS` (every instrument a
no-op).  The handler path touches every chokepoint the registry
instruments — request timer, outcome counter, routing and extraction
series — so the ratio is the all-in cost of observability.

Acceptance bar (failing the run — this file is CI's regression gate
for the metrics layer): instrumented throughput must stay at least
:data:`MIN_INSTRUMENTED_RATIO` of the uninstrumented loop.  Rounds
alternate A/B so thermal drift cancels, and the best round on each
side is compared.  Results merge into the ``$BENCH_RESULTS`` JSON
artifact next to the other service measurements.
"""

import json
import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.service.metrics import NULL_METRICS, MetricsRegistry
from repro.service.serve import ServeHandler
from repro.sites.imdb import generate_imdb_site

from conftest import emit, write_results

#: Pages served per measured round.
SERVE_PAGES = 80

#: Alternating measurement rounds per side (best round wins).
ROUNDS = 5

#: Regression floor: instrumented serve must sustain at least this
#: fraction of the uninstrumented loop's throughput.
MIN_INSTRUMENTED_RATIO = 0.95


def _corpus() -> tuple[RuleRepository, list[str]]:
    site = generate_imdb_site(n_movies=120, n_actors=30, seed=17)
    movies = site.pages_with_hint("imdb-movies")
    repository = RuleRepository()
    MappingRuleBuilder(
        movies[:8], ScriptedOracle(), repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    lines = [
        json.dumps({"url": page.url, "html": page.html})
        for page in movies[:SERVE_PAGES]
    ]
    return repository, lines


def _round_seconds(handler: ServeHandler, lines: list[str]) -> float:
    started = time.perf_counter()
    served = 0
    for line in lines:
        _, ok = handler.handle_line(line)
        served += ok
    elapsed = time.perf_counter() - started
    assert served == len(lines)
    return elapsed


def test_metrics_overhead(benchmark):
    repository, lines = _corpus()
    instrumented = ServeHandler(
        repository, cluster="imdb-movies", metrics=MetricsRegistry(),
    )
    bare = ServeHandler(
        repository, cluster="imdb-movies", metrics=NULL_METRICS,
    )

    # Warm both paths (parse caches, compiled wrappers) off the clock.
    _round_seconds(bare, lines)
    _round_seconds(instrumented, lines)

    bare_best = min(
        _round_seconds(bare, lines) for _ in range(ROUNDS)
    )
    instrumented_best = benchmark.pedantic(
        lambda: min(
            _round_seconds(instrumented, lines) for _ in range(ROUNDS)
        ),
        rounds=1, iterations=1,
    )

    total = len(lines)
    ratio = bare_best / instrumented_best
    emit(
        "Metrics instrumentation overhead (pages/second)",
        "\n".join([
            f"uninstrumented (NULL_METRICS): {total / bare_best:8.1f}",
            f"instrumented (MetricsRegistry): {total / instrumented_best:8.1f}",
            f"instrumented/uninstrumented ratio: {ratio:5.3f}"
            f"  (floor {MIN_INSTRUMENTED_RATIO})",
        ]),
    )
    write_results({
        "metrics_overhead": {
            "pages": total,
            "uninstrumented_pps": round(total / bare_best, 1),
            "instrumented_pps": round(total / instrumented_best, 1),
            "ratio": round(ratio, 4),
            "floor": MIN_INSTRUMENTED_RATIO,
        }
    })
    assert ratio >= MIN_INSTRUMENTED_RATIO, (
        f"metrics overhead regression: instrumented serve at "
        f"{ratio:.3f}x of the uninstrumented loop "
        f"(floor {MIN_INSTRUMENTED_RATIO})"
    )
