"""Service throughput — compiled parallel engine vs. sequential baseline.

Measures pages/second over a two-cluster synthetic site for:

* the sequential :class:`ExtractionProcessor` (the Figure-1 baseline,
  re-walking rule locations page by page);
* one compiled wrapper on one thread (isolates the compilation win:
  pre-parsed ASTs + prefix-factored DOM walks);
* the :class:`BatchExtractionEngine` at 2 and 4 thread workers.

Pages are pre-parsed once so every variant measures pure extraction
machinery.  The acceptance bar: the compiled parallel path must beat
the sequential baseline at >= 2 workers by at least
:data:`MIN_ENGINE_SPEEDUP` (on single-core CI hosts the margin comes
from compilation — PR 1 measured ~1.8x there; multi-core hosts add
core-parallelism on top, and ``--executor process`` scales further).
Falling under the floor fails the run: this file is CI's throughput
regression gate.

Measurements are also written as JSON to ``$BENCH_RESULTS`` (default
``bench-results/service_throughput.json``) so CI can upload them as a
workflow artifact and runs stay comparable over time.
"""

import json
import os
import time
from pathlib import Path

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.service.engine import BatchExtractionEngine
from repro.service.sink import NullSink
from repro.sites.imdb import generate_imdb_site

from conftest import emit

N_MOVIES = 200
N_ACTORS = 60

#: Regression floor: the 2-worker engine must stay at least this much
#: faster than the sequential baseline (PR 1 measured ~1.8x on CI).
MIN_ENGINE_SPEEDUP = 1.3


def _write_results(payload: dict) -> Path:
    target = Path(
        os.environ.get(
            "BENCH_RESULTS", "bench-results/service_throughput.json"
        )
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def _build_corpus():
    site = generate_imdb_site(n_movies=N_MOVIES, n_actors=N_ACTORS, seed=13)
    movies = site.pages_with_hint("imdb-movies")
    actors = site.pages_with_hint("imdb-actors")
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        movies[:8], oracle, repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    MappingRuleBuilder(
        actors[:6], oracle, repository=repository,
        cluster_name="imdb-actors", seed=1,
    ).build_all(["actor-name", "born"])
    pages = movies + actors
    for page in pages:  # parse once; measure extraction, not parsing
        page.document
    return repository, pages, movies, actors


def _sequential(repository, movies, actors) -> float:
    started = time.perf_counter()
    ExtractionProcessor(repository, "imdb-movies").extract(movies)
    ExtractionProcessor(repository, "imdb-actors").extract(actors)
    return time.perf_counter() - started


def _compiled_one_thread(repository, movies, actors) -> float:
    wrappers = repository.compile_all()
    started = time.perf_counter()
    wrappers["imdb-movies"].extract(movies)
    wrappers["imdb-actors"].extract(actors)
    return time.perf_counter() - started


def _engine(repository, pages, workers: int) -> float:
    engine = BatchExtractionEngine(
        repository, workers=workers, chunk_size=16
    )
    report = engine.run(pages, NullSink())
    assert report.pages_served == len(pages)
    return report.wall_seconds


def test_service_throughput(benchmark):
    repository, pages, movies, actors = _build_corpus()
    total = len(pages)

    seq_seconds = _sequential(repository, movies, actors)
    compiled_seconds = _compiled_one_thread(repository, movies, actors)
    engine2_seconds = benchmark.pedantic(
        lambda: _engine(repository, pages, workers=2),
        rounds=1, iterations=1,
    )
    engine4_seconds = _engine(repository, pages, workers=4)

    def pps(seconds: float) -> float:
        return total / seconds

    engine2_speedup = seq_seconds / engine2_seconds
    emit(
        "Service throughput (pages/second, higher is better)",
        "\n".join([
            f"pages: {total} ({N_MOVIES} movies + {N_ACTORS} actors)",
            f"sequential processor : {pps(seq_seconds):9.1f} p/s",
            f"compiled, 1 thread   : {pps(compiled_seconds):9.1f} p/s"
            f"  ({seq_seconds / compiled_seconds:.2f}x)",
            f"engine, 2 workers    : {pps(engine2_seconds):9.1f} p/s"
            f"  ({engine2_speedup:.2f}x)",
            f"engine, 4 workers    : {pps(engine4_seconds):9.1f} p/s"
            f"  ({seq_seconds / engine4_seconds:.2f}x)",
        ]),
    )
    results_path = _write_results({
        "pages": total,
        "pages_per_second": {
            "sequential": pps(seq_seconds),
            "compiled_1_thread": pps(compiled_seconds),
            "engine_2_workers": pps(engine2_seconds),
            "engine_4_workers": pps(engine4_seconds),
        },
        "speedup_vs_sequential": {
            "compiled_1_thread": seq_seconds / compiled_seconds,
            "engine_2_workers": engine2_speedup,
            "engine_4_workers": seq_seconds / engine4_seconds,
        },
        "min_engine_speedup": MIN_ENGINE_SPEEDUP,
    })
    print(f"results written to {results_path}")

    # Regression gate: the compiled parallel path must beat the
    # sequential baseline at >= 2 workers with margin to spare.
    assert engine2_speedup >= MIN_ENGINE_SPEEDUP, (
        f"engine@2 is only {engine2_speedup:.2f}x sequential "
        f"(regression floor: {MIN_ENGINE_SPEEDUP}x)"
    )
    # And compilation alone is already a win.
    assert compiled_seconds < seq_seconds
