"""Service throughput — engine vs. sequential, async serve vs. sync.

Measures pages/second over a two-cluster synthetic site for:

* the sequential :class:`ExtractionProcessor` (the Figure-1 baseline,
  re-walking rule locations page by page);
* one compiled wrapper on one thread (isolates the compilation win:
  pre-parsed ASTs + prefix-factored DOM walks);
* the :class:`BatchExtractionEngine` at 2 and 4 thread workers;
* the ``serve`` front-ends: the ``--sync`` one-line-at-a-time loop vs
  the asyncio front-end, fed by a paced producer
  (:data:`PRODUCER_LATENCY` per line — a real upstream pipe costs
  something to fill; overlapping that cost with extraction is exactly
  what the async front-end buys, and what the bench gates on).

Pages are pre-parsed once so the engine variants measure pure
extraction machinery.  Two acceptance bars, both failing the run when
missed (this file is CI's throughput regression gate):

* the compiled parallel path must beat the sequential baseline at
  >= 2 workers by at least :data:`MIN_ENGINE_SPEEDUP` (PR 1 measured
  ~1.8x from compilation alone; the single-pass automaton lifted the
  measured figure to ~2.5-2.9x, so the floor ratcheted 1.3x -> 2.0x);
* the async serve front-end must sustain at least
  :data:`MIN_ASYNC_SERVE_SPEEDUP` x the sync loop's throughput on the
  paced corpus (measured ~1.2-1.4x; pure in-memory feeds with zero
  production latency are reported too, ungated, where the event-loop
  overhead on a GIL-bound workload shows as <1x).

Measurements are also written as JSON to ``$BENCH_RESULTS`` (default
``bench-results/service_throughput.json``; sections merge, so both
tests land in one artifact) so CI can upload them as a workflow
artifact and runs stay comparable over time.
"""

import asyncio
import io
import json
import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.service.engine import BatchExtractionEngine
from repro.service.serve import ServeHandler, serve_async
from repro.service.sink import NullSink
from repro.sites.imdb import generate_imdb_site

from conftest import emit, write_results

N_MOVIES = 200
N_ACTORS = 60

#: Regression floor: the 2-worker engine must stay at least this much
#: faster than the sequential baseline.  Ratcheted from 1.3x when the
#: single-pass automaton landed (measured ~2.5-2.9x; 2.5x is the
#: stretch goal once CI variance is charted).
MIN_ENGINE_SPEEDUP = 2.0

#: Pages fed through each serve front-end.
SERVE_PAGES = 120

#: Seconds the paced producer spends per line — the modelled cost of
#: the upstream pipe/network filling stdin.
PRODUCER_LATENCY = 0.001

#: Regression floor: the async front-end must at least match the sync
#: loop on the paced corpus (measured ~1.2-1.4x).
MIN_ASYNC_SERVE_SPEEDUP = 1.0


def _build_corpus():
    site = generate_imdb_site(n_movies=N_MOVIES, n_actors=N_ACTORS, seed=13)
    movies = site.pages_with_hint("imdb-movies")
    actors = site.pages_with_hint("imdb-actors")
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        movies[:8], oracle, repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    MappingRuleBuilder(
        actors[:6], oracle, repository=repository,
        cluster_name="imdb-actors", seed=1,
    ).build_all(["actor-name", "born"])
    pages = movies + actors
    for page in pages:  # parse once; measure extraction, not parsing
        page.document
    return repository, pages, movies, actors


def _sequential(repository, movies, actors) -> float:
    started = time.perf_counter()
    ExtractionProcessor(repository, "imdb-movies").extract(movies)
    ExtractionProcessor(repository, "imdb-actors").extract(actors)
    return time.perf_counter() - started


def _compiled_one_thread(repository, movies, actors) -> float:
    wrappers = repository.compile_all()
    started = time.perf_counter()
    wrappers["imdb-movies"].extract(movies)
    wrappers["imdb-actors"].extract(actors)
    return time.perf_counter() - started


def _engine(repository, pages, workers: int) -> float:
    engine = BatchExtractionEngine(
        repository, workers=workers, chunk_size=16
    )
    report = engine.run(pages, NullSink())
    assert report.pages_served == len(pages)
    return report.wall_seconds


def test_service_throughput(benchmark):
    repository, pages, movies, actors = _build_corpus()
    total = len(pages)

    seq_seconds = _sequential(repository, movies, actors)
    compiled_seconds = _compiled_one_thread(repository, movies, actors)
    engine2_seconds = benchmark.pedantic(
        lambda: _engine(repository, pages, workers=2),
        rounds=1, iterations=1,
    )
    engine4_seconds = _engine(repository, pages, workers=4)

    def pps(seconds: float) -> float:
        return total / seconds

    engine2_speedup = seq_seconds / engine2_seconds
    emit(
        "Service throughput (pages/second, higher is better)",
        "\n".join([
            f"pages: {total} ({N_MOVIES} movies + {N_ACTORS} actors)",
            f"sequential processor : {pps(seq_seconds):9.1f} p/s",
            f"compiled, 1 thread   : {pps(compiled_seconds):9.1f} p/s"
            f"  ({seq_seconds / compiled_seconds:.2f}x)",
            f"engine, 2 workers    : {pps(engine2_seconds):9.1f} p/s"
            f"  ({engine2_speedup:.2f}x)",
            f"engine, 4 workers    : {pps(engine4_seconds):9.1f} p/s"
            f"  ({seq_seconds / engine4_seconds:.2f}x)",
        ]),
    )
    results_path = write_results({
        "pages": total,
        "pages_per_second": {
            "sequential": pps(seq_seconds),
            "compiled_1_thread": pps(compiled_seconds),
            "engine_2_workers": pps(engine2_seconds),
            "engine_4_workers": pps(engine4_seconds),
        },
        "speedup_vs_sequential": {
            "compiled_1_thread": seq_seconds / compiled_seconds,
            "engine_2_workers": engine2_speedup,
            "engine_4_workers": seq_seconds / engine4_seconds,
        },
        "min_engine_speedup": MIN_ENGINE_SPEEDUP,
    })
    print(f"results written to {results_path}")

    # Regression gate: the compiled parallel path must beat the
    # sequential baseline at >= 2 workers with margin to spare.
    assert engine2_speedup >= MIN_ENGINE_SPEEDUP, (
        f"engine@2 is only {engine2_speedup:.2f}x sequential "
        f"(regression floor: {MIN_ENGINE_SPEEDUP}x)"
    )
    # And compilation alone is already a win.
    assert compiled_seconds < seq_seconds


# --------------------------------------------------------------------- #
# Async serve vs the sync loop
# --------------------------------------------------------------------- #


class _PacedStdin:
    """A stdin whose producer needs ~1 ms per line, like a real pipe."""

    def __init__(self, lines: list[str]) -> None:
        self._lines = iter(lines)

    def readline(self) -> str:
        time.sleep(PRODUCER_LATENCY)
        return next(self._lines, "")


def _serve_corpus() -> tuple[ServeHandler, list[str]]:
    repository, _, movies, _ = _build_corpus()
    handler = ServeHandler(repository, cluster="imdb-movies")
    lines = [
        json.dumps({"url": page.url, "html": page.html}) + "\n"
        for page in movies[:SERVE_PAGES]
    ]
    return handler, lines


def _sync_serve(handler: ServeHandler, lines: list[str],
                paced: bool) -> float:
    """The ``serve --sync`` core: read, handle, write, one at a time."""
    stdin = _PacedStdin(lines) if paced else io.StringIO("".join(lines))
    out = io.StringIO()
    served = 0
    started = time.perf_counter()
    while True:
        line = stdin.readline()
        if not line:
            break
        payload, ok = handler.handle_line(line.strip())
        print(payload, file=out, flush=True)
        served += ok
    elapsed = time.perf_counter() - started
    assert served == len(lines)
    return elapsed


def _async_serve(handler: ServeHandler, lines: list[str],
                 paced: bool) -> float:
    stdin = _PacedStdin(lines) if paced else io.StringIO("".join(lines))
    out = io.StringIO()
    started = time.perf_counter()
    stats = asyncio.run(serve_async(handler, stdin, out, max_inflight=8))
    elapsed = time.perf_counter() - started
    assert stats.served == len(lines)
    return elapsed


def test_async_serve_throughput(benchmark):
    handler, lines = _serve_corpus()
    total = len(lines)

    sync_paced = _sync_serve(handler, lines, paced=True)
    async_paced = benchmark.pedantic(
        lambda: _async_serve(handler, lines, paced=True),
        rounds=1, iterations=1,
    )
    # The zero-latency variants are diagnostics, not a gate: with no
    # production cost to overlap, the event loop is pure overhead.
    sync_memory = _sync_serve(handler, lines, paced=False)
    async_memory = _async_serve(handler, lines, paced=False)

    def pps(seconds: float) -> float:
        return total / seconds

    speedup = sync_paced / async_paced
    emit(
        "Serve front-ends (pages/second, higher is better)",
        "\n".join([
            f"pages: {total}, producer latency: "
            f"{PRODUCER_LATENCY * 1000:.1f} ms/line, 8 in flight",
            f"sync loop, paced     : {pps(sync_paced):9.1f} p/s",
            f"async, paced         : {pps(async_paced):9.1f} p/s"
            f"  ({speedup:.2f}x)",
            f"sync loop, in-memory : {pps(sync_memory):9.1f} p/s",
            f"async, in-memory     : {pps(async_memory):9.1f} p/s"
            f"  ({sync_memory / async_memory:.2f}x)",
        ]),
    )
    results_path = write_results({
        "serve": {
            "pages": total,
            "producer_latency_seconds": PRODUCER_LATENCY,
            "pages_per_second": {
                "sync_paced": pps(sync_paced),
                "async_paced": pps(async_paced),
                "sync_in_memory": pps(sync_memory),
                "async_in_memory": pps(async_memory),
            },
            "async_speedup_paced": speedup,
            "min_async_serve_speedup": MIN_ASYNC_SERVE_SPEEDUP,
        },
    })
    print(f"results written to {results_path}")

    # Regression gate: overlapping production latency with extraction
    # must keep the async front-end at least level with the sync loop.
    assert speedup >= MIN_ASYNC_SERVE_SPEEDUP, (
        f"async serve is only {speedup:.2f}x the sync loop "
        f"(regression floor: {MIN_ASYNC_SERVE_SPEEDUP}x)"
    )
