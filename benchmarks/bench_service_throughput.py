"""Service throughput — compiled parallel engine vs. sequential baseline.

Measures pages/second over a two-cluster synthetic site for:

* the sequential :class:`ExtractionProcessor` (the Figure-1 baseline,
  re-walking rule locations page by page);
* one compiled wrapper on one thread (isolates the compilation win:
  pre-parsed ASTs + prefix-factored DOM walks);
* the :class:`BatchExtractionEngine` at 2 and 4 thread workers.

Pages are pre-parsed once so every variant measures pure extraction
machinery.  The acceptance bar: the compiled parallel path must beat
the sequential baseline at >= 2 workers (on single-core CI hosts the
margin comes from compilation; multi-core hosts add core-parallelism
on top, and ``--executor process`` scales further).
"""

import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.service.engine import BatchExtractionEngine
from repro.service.sink import NullSink
from repro.sites.imdb import generate_imdb_site

from conftest import emit

N_MOVIES = 200
N_ACTORS = 60


def _build_corpus():
    site = generate_imdb_site(n_movies=N_MOVIES, n_actors=N_ACTORS, seed=13)
    movies = site.pages_with_hint("imdb-movies")
    actors = site.pages_with_hint("imdb-actors")
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        movies[:8], oracle, repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    MappingRuleBuilder(
        actors[:6], oracle, repository=repository,
        cluster_name="imdb-actors", seed=1,
    ).build_all(["actor-name", "born"])
    pages = movies + actors
    for page in pages:  # parse once; measure extraction, not parsing
        page.document
    return repository, pages, movies, actors


def _sequential(repository, movies, actors) -> float:
    started = time.perf_counter()
    ExtractionProcessor(repository, "imdb-movies").extract(movies)
    ExtractionProcessor(repository, "imdb-actors").extract(actors)
    return time.perf_counter() - started


def _compiled_one_thread(repository, movies, actors) -> float:
    wrappers = repository.compile_all()
    started = time.perf_counter()
    wrappers["imdb-movies"].extract(movies)
    wrappers["imdb-actors"].extract(actors)
    return time.perf_counter() - started


def _engine(repository, pages, workers: int) -> float:
    engine = BatchExtractionEngine(
        repository, workers=workers, chunk_size=16
    )
    report = engine.run(pages, NullSink())
    assert report.pages_served == len(pages)
    return report.wall_seconds


def test_service_throughput(benchmark):
    repository, pages, movies, actors = _build_corpus()
    total = len(pages)

    seq_seconds = _sequential(repository, movies, actors)
    compiled_seconds = _compiled_one_thread(repository, movies, actors)
    engine2_seconds = benchmark.pedantic(
        lambda: _engine(repository, pages, workers=2),
        rounds=1, iterations=1,
    )
    engine4_seconds = _engine(repository, pages, workers=4)

    def pps(seconds: float) -> float:
        return total / seconds

    emit(
        "Service throughput (pages/second, higher is better)",
        "\n".join([
            f"pages: {total} ({N_MOVIES} movies + {N_ACTORS} actors)",
            f"sequential processor : {pps(seq_seconds):9.1f} p/s",
            f"compiled, 1 thread   : {pps(compiled_seconds):9.1f} p/s"
            f"  ({seq_seconds / compiled_seconds:.2f}x)",
            f"engine, 2 workers    : {pps(engine2_seconds):9.1f} p/s"
            f"  ({seq_seconds / engine2_seconds:.2f}x)",
            f"engine, 4 workers    : {pps(engine4_seconds):9.1f} p/s"
            f"  ({seq_seconds / engine4_seconds:.2f}x)",
        ]),
    )

    # Acceptance: compiled parallel path beats the sequential baseline
    # at >= 2 workers.
    assert engine2_seconds < seq_seconds
    # And compilation alone is already a win.
    assert compiled_seconds < seq_seconds
