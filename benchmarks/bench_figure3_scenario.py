"""Figure 3 — the mapping-rules building scenario.

Sample selection -> candidate rule building -> rule checking -> rule
refinement -> rule recording, looped over every component of interest.
The benchmark measures the whole scenario for the full 15-component set
on a 10-page working sample of a 30-page cluster.
"""

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.evaluation.tables import format_table

from conftest import emit

COMPONENTS = [
    "title", "year", "rating", "votes", "director", "writer", "runtime",
    "country", "language", "aka", "plot", "comment", "genres", "actors",
    "characters",
]


def run_scenario(sample):
    repository = RuleRepository()
    builder = MappingRuleBuilder(
        sample, ScriptedOracle(), repository=repository,
        cluster_name="imdb-movies", seed=5,
    )
    return builder.build_all(COMPONENTS), repository


def test_figure3_building_scenario(benchmark, movie_cluster):
    sample = movie_cluster[:10]

    report, repository = benchmark.pedantic(
        run_scenario, args=(sample,), rounds=1, iterations=1
    )

    assert report.failed_components == []
    assert len(repository) == len(COMPONENTS)

    rows = [
        [
            outcome.component_name,
            "recorded" if outcome.recorded else "FAILED",
            str(len(outcome.trace.steps)),
            ", ".join(outcome.trace.strategies_used) or "-",
        ]
        for outcome in report.outcomes
    ]
    emit(
        "Figure 3 - scenario per component (candidate/check/refine/record)",
        format_table(["component", "status", "refinements", "strategies"], rows),
    )
