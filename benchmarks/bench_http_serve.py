"""HTTP serve front-end throughput — sockets vs the stdin loops.

Measures requests/second (one page per request line) over a paced
client for the three ``serve`` front-ends:

* the ``--sync`` one-line-at-a-time stdin loop;
* the asyncio stdin front-end (``serve``'s default);
* the HTTP front-end (``serve --http``): one keep-alive connection,
  one ``POST /batch`` whose NDJSON body arrives at the paced rate
  while the chunked NDJSON response streams back concurrently —
  the socket twin of the paced-stdin scenario.

Pacing models a real upstream feed (:data:`PRODUCER_LATENCY` per
line, as in ``bench_service_throughput``): the async front-ends win
exactly by overlapping that production latency with extraction, and
the HTTP layer must not squander the win on framing.

Acceptance bar (failing the run — this file is CI's regression gate
for the socket ingress): HTTP throughput must stay within
:data:`MIN_HTTP_VS_ASYNC` of the asyncio stdin loop on the same paced
corpus.  Results merge into the ``$BENCH_RESULTS`` JSON artifact next
to the other service measurements.

This measures *one* serve process — the baseline the multi-worker
supervisor is gated against (``bench_multiworker_serve`` asserts the
2-worker gateway fleet clears 1.8x of it, byte-identically).
"""

import asyncio
import io
import json
import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.service.http import HttpFrontEnd
from repro.service.serve import ServeHandler, serve_async, serve_sync
from repro.sites.imdb import generate_imdb_site

from conftest import emit, write_results

#: Pages fed through each front-end.
SERVE_PAGES = 120

#: Seconds the paced producer spends per line — the modelled cost of
#: the upstream pipe/network filling the input.
PRODUCER_LATENCY = 0.001

#: Regression floor: HTTP must sustain at least this fraction of the
#: asyncio stdin front-end's throughput on the paced corpus.
MIN_HTTP_VS_ASYNC = 0.9


def _serve_corpus() -> tuple[ServeHandler, list[str]]:
    site = generate_imdb_site(n_movies=160, n_actors=40, seed=17)
    movies = site.pages_with_hint("imdb-movies")
    repository = RuleRepository()
    MappingRuleBuilder(
        movies[:8], ScriptedOracle(), repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    handler = ServeHandler(repository, cluster="imdb-movies")
    lines = [
        json.dumps({"url": page.url, "html": page.html})
        for page in movies[:SERVE_PAGES]
    ]
    for page in movies[:SERVE_PAGES]:  # parse once, as the stdin bench does
        page.document
    return handler, lines


class _PacedStdin:
    """A stdin whose producer needs ~1 ms per line, like a real pipe."""

    def __init__(self, lines: list[str]) -> None:
        self._lines = iter(lines)

    def readline(self) -> str:
        time.sleep(PRODUCER_LATENCY)
        return next(self._lines, "")


def _sync_stdin_seconds(handler, lines: list[str]) -> float:
    stdin = _PacedStdin([line + "\n" for line in lines])
    out = io.StringIO()
    started = time.perf_counter()
    stats = serve_sync(handler, stdin, out)
    elapsed = time.perf_counter() - started
    assert stats.served == len(lines)
    return elapsed


def _async_stdin_seconds(handler, lines: list[str]) -> float:
    stdin = _PacedStdin([line + "\n" for line in lines])
    out = io.StringIO()
    started = time.perf_counter()
    stats = asyncio.run(serve_async(handler, stdin, out, max_inflight=8))
    elapsed = time.perf_counter() - started
    assert stats.served == len(lines)
    return elapsed


async def _paced_batch_round(handler, lines: list[str]) -> float:
    """One paced client, one keep-alive ``POST /batch``, full drain."""
    front = HttpFrontEnd(handler, "127.0.0.1", 0, max_inflight=8)
    await front.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", front.port)
    payload = [(line + "\n").encode("utf-8") for line in lines]
    total_bytes = sum(len(data) for data in payload)
    started = time.perf_counter()
    writer.write((
        f"POST /batch HTTP/1.1\r\nHost: bench\r\n"
        f"Connection: close\r\nContent-Length: {total_bytes}\r\n\r\n"
    ).encode("latin-1"))

    async def _produce() -> None:
        for data in payload:
            await asyncio.sleep(PRODUCER_LATENCY)  # the paced upstream
            writer.write(data)
            await writer.drain()

    async def _consume() -> int:
        head = await reader.readuntil(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200"), head
        records = 0
        while True:
            size = int((await reader.readline()).strip(), 16)
            if size == 0:
                await reader.readline()
                return records
            body = await reader.readexactly(size)
            await reader.readexactly(2)
            records += body.count(b"\n")

    _, records = await asyncio.gather(_produce(), _consume())
    elapsed = time.perf_counter() - started
    writer.close()
    stats = await front.shutdown()
    assert records == len(lines)
    assert stats.served == len(lines)
    return elapsed


def _http_seconds(handler, lines: list[str]) -> float:
    return asyncio.run(_paced_batch_round(handler, lines))


def test_http_serve_throughput(benchmark):
    handler, lines = _serve_corpus()
    total = len(lines)

    sync_seconds = _sync_stdin_seconds(handler, lines)
    async_seconds = _async_stdin_seconds(handler, lines)
    http_seconds = benchmark.pedantic(
        lambda: _http_seconds(handler, lines), rounds=1, iterations=1,
    )

    def pps(seconds: float) -> float:
        return total / seconds

    http_vs_async = async_seconds / http_seconds
    emit(
        "HTTP serve front-end (requests/second, higher is better)",
        "\n".join([
            f"pages: {total}, producer latency: "
            f"{PRODUCER_LATENCY * 1000:.1f} ms/line, 8 in flight",
            f"sync stdin loop      : {pps(sync_seconds):9.1f} req/s",
            f"async stdin loop     : {pps(async_seconds):9.1f} req/s"
            f"  ({sync_seconds / async_seconds:.2f}x sync)",
            f"http /batch stream   : {pps(http_seconds):9.1f} req/s"
            f"  ({http_vs_async:.2f}x async stdin)",
        ]),
    )
    results_path = write_results({
        "http_serve": {
            "pages": total,
            "producer_latency_seconds": PRODUCER_LATENCY,
            "requests_per_second": {
                "sync_stdin_paced": pps(sync_seconds),
                "async_stdin_paced": pps(async_seconds),
                "http_batch_paced": pps(http_seconds),
            },
            "http_vs_async_stdin": http_vs_async,
            "min_http_vs_async": MIN_HTTP_VS_ASYNC,
        },
    })
    print(f"results written to {results_path}")

    # Regression gate: the socket ingress must not squander the async
    # overlap win on HTTP framing.
    assert http_vs_async >= MIN_HTTP_VS_ASYNC, (
        f"HTTP serve is only {http_vs_async:.2f}x the async stdin loop "
        f"(regression floor: {MIN_HTTP_VS_ASYNC}x)"
    )
