"""Figure 6 — the Retrozilla tool.

The GUI's four squares map to workbench actions: (1) tabs, (2) select +
interpret, (3) the check table, (4) refine/record.  The benchmark
measures a full interactive session defining the runtime component,
and prints the session transcript — the textual equivalent of the
figure's screenshot.
"""

from repro.workbench import WorkbenchSession

from conftest import emit


def run_session(paper_sample):
    session = WorkbenchSession(list(paper_sample), cluster_name="imdb-movies")
    node = session.select(0, "108 min")          # square 1+2: tab, selection
    session.interpret(node, "runtime")           # square 2: interpretation
    table_before = session.check_table()         # square 3: tabular view
    session.refine()                             # square 4: refinement
    table_after = session.check_table()
    session.record()                             # square 4: recording
    return session, table_before, table_after


def test_figure6_workbench_session(benchmark, paper_sample):
    session, before, after = benchmark.pedantic(
        run_session, args=(paper_sample,), rounds=1, iterations=1
    )

    assert [e.action for e in session.transcript] == [
        "open", "select", "interpret", "check", "refine", "check", "record",
    ]
    assert session.repository.component_names("imdb-movies") == ["runtime"]
    assert "wrong-value" in before and "wrong-value" not in after

    emit(
        "Figure 6 - workbench session (GUI substitute)",
        session.render_transcript()
        + "\n\n[check table before refinement]\n" + before
        + "\n\n[check table after refinement]\n" + after,
    )
