"""Baseline comparison — the Section-6 related-work positioning.

Semi-automatic targeted rules (this paper) vs:

* LR wrapper induction [10] — supervised but string-level;
* RoadRunner [6] and EXALG [1] — fully automatic; they extract "all
  varying chunks of the HTML source code", so their *targeted*
  precision is necessarily low ("documents containing data that do not
  interest some classes of end-users").

Expected shape: retrozilla best on both P and R for the targeted
components; LR close on recall but losing precision where delimiters
collide; automatic systems with high-ish recall and low precision.
"""

from repro.evaluation.experiments import baseline_comparison
from repro.evaluation.tables import format_table

from conftest import emit


def run_comparison():
    return baseline_comparison(n_pages=30, seed=11, train_size=10)


def test_baseline_comparison(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    by_name = {r.system: r for r in results}

    retro = by_name["retrozilla"]
    assert retro.f1 >= by_name["lr-wrapper"].f1
    assert retro.f1 > 0.95
    assert retro.precision > by_name["roadrunner"].precision * 2
    assert retro.precision > by_name["exalg"].precision * 2
    assert by_name["exalg"].recall > 0.5  # automatic systems do find data

    emit(
        "Baseline comparison - targeted components "
        "(title, runtime, director, country, genres)",
        format_table(
            ["system", "precision", "recall", "F1", "note"],
            [r.row() for r in results],
            align_right=[1, 2, 3],
        ),
    )
