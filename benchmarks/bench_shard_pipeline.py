"""Shard pipeline overhead — plan + N workers + merge vs one batch run.

A sharded run pays for manifest bookkeeping, content digests and the
k-way merge.  This benchmark runs the same corpus through (a) one
ordered engine and (b) a 3-shard plan/run/merge pipeline executed
back-to-back on one host, reports the relative overhead, and checks
the merged stream is byte-identical to the unsharded one — the
property that makes multi-host scaling safe.
"""

import io
import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.service.engine import BatchExtractionEngine
from repro.service.shard import ShardMerger, ShardPlanner, ShardWorker
from repro.service.sink import JsonlSink
from repro.sites.imdb import generate_imdb_site

from conftest import emit

N_MOVIES = 120
N_ACTORS = 40
SHARDS = 3


def _build_corpus():
    site = generate_imdb_site(n_movies=N_MOVIES, n_actors=N_ACTORS, seed=23)
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        site.pages_with_hint("imdb-movies")[:8], oracle,
        repository=repository, cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating"])
    MappingRuleBuilder(
        site.pages_with_hint("imdb-actors")[:6], oracle,
        repository=repository, cluster_name="imdb-actors", seed=1,
    ).build_all(["actor-name", "born"])
    pages = list(site)
    for page in pages:
        page.document
    return repository, pages


def test_shard_pipeline_overhead(benchmark, tmp_path):
    repository, pages = _build_corpus()
    by_url = {page.url: page for page in pages}

    started = time.perf_counter()
    stream = io.StringIO()
    with JsonlSink(stream) as sink:
        BatchExtractionEngine(repository, workers=2, ordered=True).run(
            pages, sink
        )
    unsharded_seconds = time.perf_counter() - started
    unsharded = stream.getvalue()

    def sharded() -> float:
        begun = time.perf_counter()
        plan = ShardPlanner(SHARDS, "hash").plan([p.url for p in pages])
        directory = tmp_path / "shards"
        for shard in range(SHARDS):
            ShardWorker(repository, plan, shard, workers=2).run(
                lambda url: by_url[url], directory
            )
        merged = io.StringIO()
        ShardMerger().merge([directory], merged)
        assert merged.getvalue() == unsharded
        return time.perf_counter() - begun

    sharded_seconds = benchmark.pedantic(sharded, rounds=1, iterations=1)
    emit(
        "Shard pipeline (one host, back-to-back workers)",
        "\n".join([
            f"pages: {len(pages)}, shards: {SHARDS}",
            f"unsharded ordered engine : {unsharded_seconds:.3f}s",
            f"plan + run x{SHARDS} + merge    : {sharded_seconds:.3f}s"
            f"  ({sharded_seconds / unsharded_seconds:.2f}x)",
            "merged output byte-identical to unsharded run: yes",
        ]),
    )
