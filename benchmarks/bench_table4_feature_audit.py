"""Table 4 — main features of Retrozilla, audited on this implementation.

Each of the paper's seven feature rows (automation, complex objects,
page content, ease of use, XML output, non-HTML, resilience) is backed
by an executable probe; the benchmark measures one full audit run.
"""

from repro.evaluation.features_audit import audit_features
from repro.evaluation.tables import format_table

from conftest import emit

PAPER_VALUES = {
    "Automation": "Semi",
    "Complex objects": "Yes",
    "Page content": "Data",
    "Ease of use": "Easy",
    "Xml output": "Yes",
    "Non-HTML": "Could be",
    "Resilience/adaptiveness": "No",
}


def test_table4_feature_audit(benchmark):
    audit = benchmark.pedantic(
        audit_features, kwargs={"n_pages": 12, "seed": 21}, rounds=1, iterations=1
    )

    assert audit.all_verified
    measured = {row.feature: row.value for row in audit.rows}
    assert measured == PAPER_VALUES
    emit(
        "Table 4 - main features of Retrozilla (probe-verified)",
        format_table(
            ["Feature", "Value", "Verified", "Argumentation"],
            [row.row() for row in audit.rows],
        ),
    )
