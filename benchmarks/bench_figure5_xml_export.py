"""Figure 5 — the generated XML document.

The paper's example: the `imdb-movies` root, one `imdb-movie` element
per page with its `uri` attribute, a `runtime` leaf — values 108/91/
104/84 min.  The benchmark measures rule interpretation plus XML
serialisation for the whole sample.
"""

from repro.core.builder import MappingRuleBuilder
from repro.core.repository import RuleRepository
from repro.extraction import ExtractionProcessor, write_cluster_xml

from conftest import emit

PAPER_LINES = [
    '<?xml version="1.0" encoding="ISO-8859-1"?>',
    "<imdb-movies>",
    '  <imdb-movie uri="http://imdb.com/title/tt0095159/">',
    "    <runtime>108 min</runtime>",
    "  </imdb-movie>",
]


def export(processor, sample, repository):
    result = processor.extract(sample)
    return write_cluster_xml(result, repository)


def test_figure5_generated_xml(benchmark, paper_sample, oracle):
    repository = RuleRepository()
    builder = MappingRuleBuilder(
        paper_sample, oracle, repository=repository,
        cluster_name="imdb-movies", seed=1,
    )
    outcome = builder.build_rule("runtime")
    assert outcome.recorded
    processor = ExtractionProcessor(repository, "imdb-movies")

    xml = benchmark(export, processor, paper_sample, repository)

    for line in PAPER_LINES:
        assert line in xml, line
    for runtime in ("108 min", "91 min", "104 min", "84 min"):
        assert f"<runtime>{runtime}</runtime>" in xml
    assert xml.count("<imdb-movie ") == 4

    emit("Figure 5 - generated XML document", xml)
