"""Canary rollout under drift — promote latency, recovery, overhead.

The registry/canary acceptance scenario, scripted end to end over the
depth drift corpus (``bench_adaptive_drift``'s template-edit class):

1. a repository + router fitted on depth-1 exemplars is published to a
   fresh :class:`~repro.service.registry.store.ArtifactRegistry` and
   pinned (the baseline version);
2. the served stream mutates to depth-3; the adaptive router detects
   drift and refits, but with a deployer attached the refit product is
   **staged as a shadow candidate**, not installed;
3. the :class:`~repro.service.registry.canary.CanaryController`
   shadow-routes a fraction of traffic, compares outcomes over its
   window, and **promotes** the candidate — a new pinned version whose
   manifest records the parent and the triggering drift event;
4. ``registry rollback`` (here via the API) restores the prior pin.

Two replays over the identical stream quantify the rollout:

* **adapt-only** — the adaptive router installs refits directly (the
  ``--adapt`` baseline);
* **canary** — the same stream with shadowing + promotion in the path.

Gates (merged into the CI benchmark artifact like the other service
benches):

* at least one promotion, zero rollbacks;
* the routed fraction over the post-promote tail recovers to at least
  :data:`MIN_RECOVERY` of the pre-drift level (promotion must not cost
  recovery versus installing refits directly);
* shadow work is bounded: the canary's dry-run extractions stay under
  :data:`MAX_SHADOW_OVERHEAD` of the stream (a deterministic counter,
  not a wall-clock race); wall time of both replays is reported.
"""

import asyncio
import io
import json
import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.service.adapt import make_adapter
from repro.service.registry import (
    ArtifactRegistry,
    CanaryController,
    wrapper_extractor,
)
from repro.service.router import UNROUTABLE, ClusterRouter
from repro.service.serve import ServeHandler, serve_async
from repro.sites.variation import DEPTH_COMPONENTS, generate_depth_cluster

from conftest import emit, write_results

#: Pages rendered from the fitted template (first) and the drifted one.
PRE_DRIFT_PAGES = 150
POST_DRIFT_PAGES = 150

#: Exemplars the rules and router are fitted from.
EXEMPLARS = 8

#: Routing confidence threshold (see bench_adaptive_drift).
THRESHOLD = 0.8

#: Drift-detection window of both adaptive replays.
DRIFT_WINDOW = 32

#: Canary knobs: half the served pages shadow-routed, verdict after 16
#: paired samples — promotion lands well inside the drifted half.
CANARY_FRACTION = 0.5
CANARY_WINDOW = 16

#: Post-promote tail the recovery gate measures (the stream's last
#: pages, long after the first promotion at ~2x the canary window).
TAIL_PAGES = 50

#: Recovery floor: tail routed fraction vs the pre-drift level.
MIN_RECOVERY = 0.9

#: Shadow-work ceiling: candidate dry-run extractions per served page.
MAX_SHADOW_OVERHEAD = 0.10


def _corpus():
    fitted = generate_depth_cluster(
        1, n_pages=PRE_DRIFT_PAGES + EXEMPLARS, seed=3
    )
    drifted = generate_depth_cluster(3, n_pages=POST_DRIFT_PAGES, seed=4)
    repository = RuleRepository()
    report = MappingRuleBuilder(
        fitted[:EXEMPLARS], ScriptedOracle(), repository=repository,
        cluster_name="depth-1", seed=1,
    ).build_all(list(DEPTH_COMPONENTS))
    assert report.failed_components == []
    return repository, fitted[:EXEMPLARS], fitted[EXEMPLARS:] + drifted


def _fit_router(exemplars) -> ClusterRouter:
    return ClusterRouter.fit({"depth-1": exemplars}, threshold=THRESHOLD)


def _serve(handler, pages):
    text = "".join(
        json.dumps({"url": page.url, "html": page.html}) + "\n"
        for page in pages
    )
    stdout = io.StringIO()
    started = time.perf_counter()
    stats = asyncio.run(serve_async(
        handler, io.StringIO(text), stdout, max_inflight=1,
    ))
    elapsed = time.perf_counter() - started
    outputs = [
        json.loads(line) for line in stdout.getvalue().strip().splitlines()
    ]
    return stats, outputs, elapsed


def _routed_fraction(outputs) -> float:
    if not outputs:
        return 0.0
    unroutable = sum(
        1 for output in outputs if output.get("cluster") == UNROUTABLE
    )
    return 1.0 - unroutable / len(outputs)


def _replay(registry_root):
    repository, exemplars, stream = _corpus()

    # Baseline: refits install directly (serve --adapt, no canary).
    adapt_only = make_adapter(_fit_router(exemplars), window=DRIFT_WINDOW)
    adapt_handler = ServeHandler(repository, adapter=adapt_only)
    adapt_stats, adapt_outputs, adapt_seconds = _serve(adapt_handler, stream)

    # The rollout: refit products stage as shadows and must win promotion.
    registry = ArtifactRegistry(registry_root)
    adapter = make_adapter(_fit_router(exemplars), window=DRIFT_WINDOW)
    handler = ServeHandler(repository, adapter=adapter)
    deployer = CanaryController(
        adapter.router, repository, registry=registry,
        fraction=CANARY_FRACTION, window=CANARY_WINDOW,
        extract=wrapper_extractor(handler.runtime), log=adapter.log,
    )
    baseline = deployer.ensure_baseline()
    adapter.deployer = deployer
    canary_stats, canary_outputs, canary_seconds = _serve(handler, stream)

    return {
        "stream_pages": len(stream),
        "adapt_stats": adapt_stats,
        "adapt_outputs": adapt_outputs,
        "adapt_seconds": adapt_seconds,
        "canary_stats": canary_stats,
        "canary_outputs": canary_outputs,
        "canary_seconds": canary_seconds,
        "registry": registry,
        "deployer": deployer,
        "baseline": baseline,
        "events": [event["event"] for event in adapter.log.events],
    }


def test_registry_canary_rollout(benchmark, tmp_path):
    result = benchmark.pedantic(
        lambda: _replay(tmp_path / "registry"), rounds=1, iterations=1
    )
    registry = result["registry"]
    deployer = result["deployer"]
    stream_pages = result["stream_pages"]

    pre_drift = _routed_fraction(result["canary_outputs"][:PRE_DRIFT_PAGES])
    adapt_tail = _routed_fraction(result["adapt_outputs"][-TAIL_PAGES:])
    canary_tail = _routed_fraction(result["canary_outputs"][-TAIL_PAGES:])
    recovery = canary_tail / pre_drift if pre_drift else 0.0
    shadow_overhead = deployer.shadow_extractions / stream_pages
    promoted = registry.pinned()

    emit(
        "Canary rollout - drift -> refit -> shadow -> promote",
        "\n".join([
            f"pages: {PRE_DRIFT_PAGES} fitted template + "
            f"{POST_DRIFT_PAGES} drifted, canary fraction "
            f"{CANARY_FRACTION}, window {CANARY_WINDOW}",
            f"pre-drift routed      : {pre_drift:9.3f}",
            f"tail routed, adapt    : {adapt_tail:9.3f}"
            f"  ({result['adapt_stats'].refits} refit(s), "
            f"{result['adapt_seconds']:.2f}s)",
            f"tail routed, canary   : {canary_tail:9.3f}"
            f"  ({deployer.promotions} promotion(s), "
            f"{deployer.rollbacks} rollback(s), "
            f"{result['canary_seconds']:.2f}s)",
            f"recovery vs pre-drift : {recovery:9.2f}x "
            f"(floor {MIN_RECOVERY})",
            f"shadow work           : {deployer.shadow_pages} page(s) "
            f"shadow-routed, {deployer.shadow_extractions} dry-run "
            f"extraction(s) = {shadow_overhead:.3f}/page "
            f"(ceiling {MAX_SHADOW_OVERHEAD})",
            f"registry              : baseline "
            f"{result['baseline'].version} -> pinned {promoted}",
        ]),
    )
    results_path = write_results({
        "registry_rollout": {
            "pre_drift_pages": PRE_DRIFT_PAGES,
            "post_drift_pages": POST_DRIFT_PAGES,
            "canary_fraction": CANARY_FRACTION,
            "canary_window": CANARY_WINDOW,
            "routed_fraction": {
                "pre_drift": pre_drift,
                "adapt_tail": adapt_tail,
                "canary_tail": canary_tail,
            },
            "recovery_ratio": recovery,
            "min_recovery": MIN_RECOVERY,
            "promotions": deployer.promotions,
            "rollbacks": deployer.rollbacks,
            "shadow_pages": deployer.shadow_pages,
            "shadow_extractions": deployer.shadow_extractions,
            "shadow_overhead_per_page": shadow_overhead,
            "max_shadow_overhead": MAX_SHADOW_OVERHEAD,
            "wall_seconds": {
                "adapt_only": result["adapt_seconds"],
                "canary": result["canary_seconds"],
            },
            "baseline_version": result["baseline"].version,
            "promoted_version": promoted,
        },
    })
    print(f"results written to {results_path}")

    # The lifecycle actually ran: drift tripped a refit, the refit was
    # staged (not installed), and the shadow won its comparison.
    assert result["canary_stats"].drift_events >= 1
    assert deployer.promotions >= 1
    assert deployer.rollbacks == 0
    first_promote = result["events"].index("promote")
    assert result["events"].index("drift") < result["events"].index(
        "refit"
    ) < result["events"].index("shadow") < first_promote
    # Promotion moved the pin to a refit child of the baseline.
    assert promoted != result["baseline"].version
    manifest = registry.manifest(promoted)
    assert manifest.source == "refit"
    assert manifest.trigger is not None

    # Gate 1: rolling out through the canary must not cost recovery —
    # the post-promote tail reaches MIN_RECOVERY of the pre-drift level.
    assert recovery >= MIN_RECOVERY, (
        f"canary rollout recovered only {recovery:.2f}x of the "
        f"pre-drift routed fraction (floor: {MIN_RECOVERY})"
    )
    # Gate 2: shadow work is bounded by a deterministic counter.
    assert shadow_overhead <= MAX_SHADOW_OVERHEAD, (
        f"{deployer.shadow_extractions} dry-run extraction(s) over "
        f"{stream_pages} page(s) exceeds the "
        f"{MAX_SHADOW_OVERHEAD:.0%} shadow-overhead ceiling"
    )

    # And the one-command escape hatch: rollback restores the parent.
    restored = registry.rollback()
    assert restored.version == manifest.parent
    assert registry.pinned() == manifest.parent
