"""Table 2 — the six example XPath expression forms.

The paper lists (a) positional text selection, (b) contextual predicate,
(c) first row, (d) broadened row range, (e)/(f) first/last instances of
a multivalued component.  Row (b) is printed in the paper's informal
abbreviated style; the engine evaluates the standard-XPath equivalent
(documented in repro.xpath) — the lenient one-argument ``contains`` is
supported, the bare ``ancestor-or-self`` keyword is normalised to a
proper axis.

The benchmark measures compiling and evaluating all six forms against a
paper-sample page.
"""

from repro.evaluation.tables import format_table
from repro.xpath import compile_xpath, select

from conftest import emit

EXPRESSIONS = {
    "a": "BODY//TR[6]/TD[1]/text()[1]",
    "b": (
        'BODY//TR[6]/TD[1]/text()[normalize-space(preceding::text()'
        '[normalize-space(.) != ""][1]) = "Runtime:"]'
    ),
    "c": "BODY//TABLE[1]/TR[1]",
    "d": "BODY//TABLE[1]/TR[position() >= 1]",
    "e": "BODY//TABLE[1]/TR[2]/TD[2]/text()",
    "f": "BODY//TABLE[1]/TR[6]/TD[1]/text()",
}


def evaluate_all(root):
    return {key: select(root, expr) for key, expr in EXPRESSIONS.items()}


def test_table2_xpath_forms(benchmark, paper_sample):
    root = paper_sample[0].root_element

    results = benchmark(evaluate_all, root)

    # (a) positional: the runtime text node on page a.
    assert [n.data.strip() for n in results["a"]] == ["108 min"]
    # (b) contextual: same node via the Runtime: anchor.
    assert results["b"] == results["a"]
    # (c) "selects the first row of an HTML table": every match is a
    # first row (one per table matched by the TABLE[1] step); (d) the
    # broadened predicate selects every row of the same tables.
    assert results["c"], "row (c) must match"
    assert all(tr.position_among_same_tag() == 1 for tr in results["c"])
    assert set(map(id, results["c"])) <= set(map(id, results["d"]))
    assert len(results["d"]) > len(results["c"])
    # (e)/(f): single-position selections used to deduce the repetitive
    # tag; they must be distinct positions of the same structure.
    assert compile_xpath(EXPRESSIONS["e"]).source != EXPRESSIONS["f"]

    rows = [
        [key, expr, str(len(results[key]))]
        for key, expr in EXPRESSIONS.items()
    ]
    emit(
        "Table 2 - example XPath expressions (standard-syntax forms)",
        format_table(["row", "XPath expression", "matches on page a"], rows),
    )
