"""Figure 1 — the three-step pipeline: clustering, analysis, extraction.

Measures the full end-to-end run on a mixed three-cluster site (movie
pages, actor pages, search pages): step (1) partitions the pages, step
(2) builds mapping rules for the components of interest on the movie
cluster, step (3) extracts every movie page towards XML.
"""

from repro.clustering import PageClusterer
from repro.core.oracle import ScriptedOracle
from repro.extraction import ExtractionPipeline
from repro.evaluation.metrics import evaluate_extraction
from repro.evaluation.tables import format_table
from repro.sites.imdb import generate_imdb_site

from conftest import emit

COMPONENTS = ["title", "runtime", "director", "genres", "actors"]


def run_pipeline():
    site = generate_imdb_site(n_movies=16, n_actors=8, n_search=5, seed=3)
    clustering = PageClusterer().cluster(list(site))
    movie_cluster = max(clustering.clusters, key=len).pages
    with_photo = [p for p in movie_cluster if 'class="photo"' in p.html]
    without = [p for p in movie_cluster if 'class="photo"' not in p.html]
    sample = with_photo[:6] + without[:3]
    pipeline = ExtractionPipeline(ScriptedOracle(), seed=0)
    result = pipeline.run_cluster(
        "imdb-movies", movie_cluster, COMPONENTS, sample=sample
    )
    return clustering, movie_cluster, result


def test_figure1_full_pipeline(benchmark):
    clustering, movie_cluster, result = benchmark.pedantic(
        run_pipeline, rounds=1, iterations=1
    )

    assert len(clustering.clusters) == 3
    assert clustering.purity() == 1.0
    assert result.build_report.failed_components == []
    summary = evaluate_extraction(result.extraction, movie_cluster, COMPONENTS)
    assert summary.micro_f1 > 0.99

    emit(
        "Figure 1 - pipeline stages",
        format_table(
            ["stage", "output"],
            [
                ["(1) clustering",
                 f"{len(clustering.clusters)} clusters, purity "
                 f"{clustering.purity():.2f}"],
                ["(2) semantic analysis",
                 f"{len(result.build_report.recorded_rules)}/"
                 f"{len(COMPONENTS)} rules recorded"],
                ["(3) extraction",
                 f"{result.extraction.page_count} pages -> XML, "
                 f"micro-F1 {summary.micro_f1:.3f}"],
            ],
        ),
    )
