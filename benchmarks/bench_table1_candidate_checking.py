"""Table 1 — candidate rule checking for component "runtime".

Paper rows (4-page working sample):

    ./title/tt0095159/  108 min
    ./title/tt0071853/  91 min
    ./title/tt0074103/  The Wing and the Thigh (International: English title)
    ./title/tt0102059/  -

The benchmark measures one full candidate-checking pass (rule applied
to every sample page plus outcome classification).
"""

from repro.core.builder import MappingRuleBuilder
from repro.core.checking import check_rule, render_check_table

from conftest import emit

PAPER_ROWS = [
    "108 min",
    "91 min",
    "The Wing and the Thigh (International: English title)",
    "-",
]


def make_candidate(paper_sample, oracle):
    builder = MappingRuleBuilder(paper_sample, oracle, seed=1)
    selection = oracle.select_value(paper_sample[0], "runtime")
    return builder.candidate_from_selection("runtime", selection)


def test_table1_candidate_rule_checking(benchmark, paper_sample, oracle):
    candidate = make_candidate(paper_sample, oracle)

    report = benchmark(check_rule, candidate, paper_sample, oracle)

    measured = [row.display_value for row in report.rows]
    assert measured == PAPER_ROWS
    assert not report.is_valid  # rows c and d are negative examples
    emit(
        "Table 1 - candidate rule checking for component 'runtime'",
        render_check_table(report),
    )
