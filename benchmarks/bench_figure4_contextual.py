"""Figure 4 — using contextual information.

The paper's two HTML fragments: on the left, the details cell starts
with "Runtime:"; on the right an "Also Known As:" pair precedes it, so
the positional XPath picks the wrong text node.  The refinement
replaces "the erroneous position predicate ... by a predicate searching
for a specific text node in the preceding ... nodes".

The benchmark measures the contextual-refinement step in isolation
(anchor discovery + XPath rewrite) on the paper sample.
"""

from repro.core.builder import MappingRuleBuilder
from repro.core.refinement import RefinementEngine
from repro.core.checking import check_rule
from repro.core.xpath_builder import nearest_preceding_label
from repro.dom.traversal import find_text_node

from conftest import emit


def contextual_step(engine, rule, sample, oracle):
    report = check_rule(rule, sample, oracle)
    problem = report.first_problem()
    from repro.core.refinement import RefinementTrace

    trace = RefinementTrace()
    return engine._refine_contextual(rule, problem, sample, trace)


def test_figure4_contextual_information(benchmark, paper_sample, oracle):
    builder = MappingRuleBuilder(paper_sample, oracle, seed=1)
    candidate = builder.candidate_from_selection(
        "runtime", oracle.select_value(paper_sample[0], "runtime")
    )
    engine = RefinementEngine(oracle)

    refined = benchmark(
        contextual_step, engine, candidate, paper_sample, oracle
    )

    assert refined is not None
    assert "Runtime:" in refined.primary_location

    # The anchor is the DFS-order nearest preceding label on every page.
    labels = []
    for page in paper_sample:
        value = page.ground_truth["runtime"][0]
        node = find_text_node(page.root_element, value)
        labels.append(nearest_preceding_label(node))
    assert set(labels) == {"Runtime:"}

    emit(
        "Figure 4 - contextual refinement",
        "candidate : " + candidate.primary_location
        + "\nrefined   : " + refined.primary_location
        + f"\nanchor constant across sample: {set(labels)}",
    )
