"""Nesting-depth ablation — the Section-7 granularity claim.

"Retrozilla is empirically more effective on fine-grained HTML
structures (i.e., highly nested documents) rather than on poorly
structured (i.e., relatively flat) documents.  Indeed, components can
be located more accurately when there are nested in a deeper
structure."

Depth 0 renders values as bare <BR>-separated text without labels
(nothing to anchor on, positions shift with the optional field);
deeper levels add labels, per-field rows, and dedicated cells.
Expected shape: F1 climbs with depth and saturates once labels exist.
"""

from repro.evaluation.experiments import nesting_depth_study
from repro.evaluation.tables import format_table

from conftest import emit


def run_study():
    return nesting_depth_study(n_pages=24, seed=9, sample_size=8)


def test_ablation_nesting_depth(benchmark):
    results = benchmark.pedantic(run_study, rounds=1, iterations=1)
    by_depth = {r.depth: r for r in results}

    assert by_depth[0].f1 < by_depth[1].f1
    assert by_depth[1].f1 > 0.95
    assert by_depth[3].f1 > 0.95
    # Flat documents also lose whole components at rule-building time.
    assert by_depth[0].rules_built < by_depth[0].rules_total

    emit(
        "Ablation - extraction quality vs structural granularity",
        format_table(
            ["depth", "micro-F1", "rules built"],
            [r.row() for r in results],
            align_right=[0, 1],
        ),
    )
