"""Table 3 — rule checking after rule refinement.

Paper rows: 108 min / 91 min / 104 min / 84 min — the contextual
refinement on the constant "Runtime:" label fixes rows c and d of
Table 1.

The benchmark measures the complete refinement loop (check, strategy
selection, contextual rewrite, re-check) starting from the Table-1
candidate.
"""

from repro.core.builder import MappingRuleBuilder
from repro.core.checking import render_check_table

from conftest import emit

PAPER_ROWS = ["108 min", "91 min", "104 min", "84 min"]


def refine(builder, candidate, sample):
    return builder.engine.refine(candidate, sample)


def test_table3_refined_rule_checking(benchmark, paper_sample, oracle):
    builder = MappingRuleBuilder(paper_sample, oracle, seed=1)
    selection = oracle.select_value(paper_sample[0], "runtime")
    candidate = builder.candidate_from_selection("runtime", selection)

    rule, report, trace = benchmark(refine, builder, candidate, paper_sample)

    assert [row.display_value for row in report.rows] == PAPER_ROWS
    assert report.is_valid
    assert trace.strategies_used == ["contextual"]
    assert "Runtime:" in rule.primary_location
    emit(
        "Table 3 - rule checking after rule refinement",
        render_check_table(report) + "\n\nrefined rule:\n" + rule.describe(),
    )
