"""Substrate micro-benchmarks: HTML parsing and XPath evaluation.

Not a paper exhibit, but the fixed costs every experiment pays; tracked
so regressions in the from-scratch substrates are visible.
"""

import statistics

from repro.html import parse_html
from repro.xpath import select

from conftest import emit

CONTEXTUAL = (
    'BODY//TD/text()[normalize-space(preceding::text()'
    '[normalize-space(.) != ""][1]) = "Runtime:"]'
)


def test_parse_movie_page(benchmark, paper_sample):
    html = paper_sample[0].html
    doc = benchmark(parse_html, html)
    assert doc.document_element.find_first("BODY") is not None


def test_xpath_compile(benchmark):
    # Bypass the engine cache to measure a real compile.
    from repro.xpath.parser import parse_xpath

    ast = benchmark(parse_xpath, CONTEXTUAL)
    assert str(ast)


def test_xpath_positional_select(benchmark, paper_sample):
    root = paper_sample[0].root_element
    expr = "BODY[1]/DIV[2]/TABLE[1]/TR[6]/TD[1]/text()[1]"
    nodes = benchmark(select, root, expr)
    assert [n.data.strip() for n in nodes] == ["108 min"]


def test_xpath_contextual_select(benchmark, paper_sample):
    root = paper_sample[0].root_element
    nodes = benchmark(select, root, CONTEXTUAL)
    assert [n.data.strip() for n in nodes] == ["108 min"]


def test_parse_throughput_summary(paper_sample):
    sizes = [len(page.html) for page in paper_sample]
    emit(
        "Substrates - input sizes",
        f"paper-sample page sizes: {sizes} bytes "
        f"(median {statistics.median(sizes):.0f})",
    )
