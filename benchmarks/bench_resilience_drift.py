"""Resilience under wrapper drift — Table 4's last row, quantified.

Rules are built on the original cluster and applied to a drifted
re-rendering of the same data (an extra certification row shifts the
details row; the Country/Language pair order swaps; the "Runtime:"
label is renamed "Length:").

Expected shape:

* positional-only rules (the ablation with contextual refinement
  disabled) cannot even validate the shift-prone components on the
  sample, and gain nothing after drift;
* contextual rules validate everything and survive the structural
  drift, losing only the component whose *label* was renamed — no
  automatic repair happens, which is exactly the paper's
  "Resilience/adaptiveness: No".
"""

from repro.evaluation.experiments import drift_resilience_study
from repro.evaluation.tables import format_table

from conftest import emit


def run_study():
    return drift_resilience_study(n_pages=24, seed=5)


def test_resilience_under_drift(benchmark):
    positional, contextual = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )

    assert contextual.f1_before_drift > 0.99
    assert contextual.f1_before_drift > positional.f1_before_drift
    # Drift degrades the contextual rules (label rename) but they stay
    # far ahead of positional ones.
    assert contextual.f1_after_drift < contextual.f1_before_drift
    assert contextual.f1_after_drift > positional.f1_after_drift
    assert contextual.f1_after_drift > 0.75

    emit(
        "Resilience - extraction F1 before/after wrapper drift",
        format_table(
            ["rule style", "F1 before drift", "F1 after drift"],
            [positional.row(), contextual.row()],
            align_right=[1, 2],
        ),
    )
