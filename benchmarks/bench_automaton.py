"""Single-pass automaton vs the prefix trie vs the sequential baseline.

The compiler's third gear: eligible locations (child-axis steps with at
most one positional predicate, primaries *and* alternatives) compile
into one DOM automaton, so a page is scanned in a single preorder
traversal no matter how many rules the cluster carries.  This bench
isolates that win on one thread:

* the sequential :class:`ExtractionProcessor` (the Figure-1 baseline);
* the compiled wrapper with the automaton disabled — the prefix trie
  alone (``--no-automaton`` in the CLI);
* the compiled wrapper with the automaton on (the default).

All three must produce byte-identical output on the same corpus — the
bench asserts it before timing anything, so the speedup numbers are
never for a path that silently diverged.  Two acceptance bars:

* the automaton path must beat the sequential baseline by at least
  :data:`MIN_AUTOMATON_SPEEDUP` (measured ~3.1-4.0x locally);
* it must beat the trie-only wrapper by at least
  :data:`MIN_AUTOMATON_VS_TRIE` (measured ~1.6x — the single traversal
  vs one trie walk per page with re-counted siblings).

Timings take the best of :data:`ROUNDS` passes so a scheduler hiccup on
a shared CI runner cannot fail the gate on its own.  Measurements merge
into the ``$BENCH_RESULTS`` artifact next to the other service benches.
"""

import time

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.sites.imdb import generate_imdb_site

from conftest import emit, write_results

N_MOVIES = 200
N_ACTORS = 60

#: Timed passes per variant; the best one is scored (noise rejection).
ROUNDS = 3

#: Regression floor: one automaton thread vs the sequential baseline
#: (measured ~3.1-4.0x; the floor leaves headroom for slow CI runners).
MIN_AUTOMATON_SPEEDUP = 2.0

#: Regression floor: the automaton vs the trie-only wrapper (measured
#: ~1.6x from collapsing per-rule trie walks into one traversal).
MIN_AUTOMATON_VS_TRIE = 1.15


def _build_corpus():
    site = generate_imdb_site(n_movies=N_MOVIES, n_actors=N_ACTORS, seed=13)
    movies = site.pages_with_hint("imdb-movies")
    actors = site.pages_with_hint("imdb-actors")
    repository = RuleRepository()
    oracle = ScriptedOracle()
    MappingRuleBuilder(
        movies[:8], oracle, repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    MappingRuleBuilder(
        actors[:6], oracle, repository=repository,
        cluster_name="imdb-actors", seed=1,
    ).build_all(["actor-name", "born"])
    for page in movies + actors:  # parse once; measure extraction only
        page.document
    return repository, movies, actors


def _outcome(extraction):
    return (
        [(p.url, p.values, p.raw_values) for p in extraction.pages],
        [(f.page_url, f.component_name, f.reason)
         for f in extraction.failures],
    )


def _best(run) -> float:
    return min(run() for _ in range(ROUNDS))


def _sequential(repository, movies, actors) -> float:
    def run() -> float:
        started = time.perf_counter()
        ExtractionProcessor(repository, "imdb-movies").extract(movies)
        ExtractionProcessor(repository, "imdb-actors").extract(actors)
        return time.perf_counter() - started

    return _best(run)


def _compiled(repository, movies, actors, automaton: bool) -> float:
    wrappers = repository.compile_all(automaton=automaton)

    def run() -> float:
        started = time.perf_counter()
        wrappers["imdb-movies"].extract(movies)
        wrappers["imdb-actors"].extract(actors)
        return time.perf_counter() - started

    return _best(run)


def test_automaton_throughput(benchmark):
    repository, movies, actors = _build_corpus()
    total = len(movies) + len(actors)

    # Identity first: never publish a speedup for a diverging path.
    for cluster, pages in (("imdb-movies", movies), ("imdb-actors", actors)):
        baseline = _outcome(
            ExtractionProcessor(repository, cluster).extract(pages)
        )
        automaton = repository.compile_cluster(cluster)
        trie = repository.compile_cluster(cluster, automaton=False)
        assert _outcome(automaton.extract(pages)) == baseline
        assert _outcome(trie.extract(pages)) == baseline

    stats = repository.compile_cluster("imdb-movies").stats

    seq_seconds = _sequential(repository, movies, actors)
    trie_seconds = _compiled(repository, movies, actors, automaton=False)
    auto_seconds = benchmark.pedantic(
        lambda: _compiled(repository, movies, actors, automaton=True),
        rounds=1, iterations=1,
    )

    def pps(seconds: float) -> float:
        return total / seconds

    auto_speedup = seq_seconds / auto_seconds
    auto_vs_trie = trie_seconds / auto_seconds
    emit(
        "Single-pass automaton (pages/second, one thread)",
        "\n".join([
            f"pages: {total} ({N_MOVIES} movies + {N_ACTORS} actors), "
            f"best of {ROUNDS}",
            f"imdb-movies automaton: {stats.automaton_slots} slots, "
            f"{stats.automaton_states} states, "
            f"{stats.automaton_transitions} transitions "
            f"({stats.automaton_steps_saved} steps saved)",
            f"sequential processor : {pps(seq_seconds):9.1f} p/s",
            f"trie-only wrapper    : {pps(trie_seconds):9.1f} p/s"
            f"  ({seq_seconds / trie_seconds:.2f}x)",
            f"automaton wrapper    : {pps(auto_seconds):9.1f} p/s"
            f"  ({auto_speedup:.2f}x, {auto_vs_trie:.2f}x vs trie)",
        ]),
    )
    results_path = write_results({
        "automaton": {
            "pages": total,
            "rounds": ROUNDS,
            "compiler_stats": stats.as_dict(),
            "pages_per_second": {
                "sequential": pps(seq_seconds),
                "trie_only": pps(trie_seconds),
                "automaton": pps(auto_seconds),
            },
            "automaton_speedup_vs_sequential": auto_speedup,
            "automaton_speedup_vs_trie": auto_vs_trie,
            "min_automaton_speedup": MIN_AUTOMATON_SPEEDUP,
            "min_automaton_vs_trie": MIN_AUTOMATON_VS_TRIE,
        },
    })
    print(f"results written to {results_path}")

    # Regression gates: the single traversal must stay decisively
    # ahead of both the baseline and the trie it subsumes.
    assert auto_speedup >= MIN_AUTOMATON_SPEEDUP, (
        f"automaton is only {auto_speedup:.2f}x sequential "
        f"(regression floor: {MIN_AUTOMATON_SPEEDUP}x)"
    )
    assert auto_vs_trie >= MIN_AUTOMATON_VS_TRIE, (
        f"automaton is only {auto_vs_trie:.2f}x the trie-only wrapper "
        f"(regression floor: {MIN_AUTOMATON_VS_TRIE}x)"
    )
