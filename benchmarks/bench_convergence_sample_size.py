"""Convergence study — Section 3.1's sample-size claims.

"A sample of about ten randomly selected pages usually includes most of
these variants"; "[6] report that mapping rules converge after the
analysis of about 5 pages."

Expected shape: extraction F1 on held-out pages rises steeply from a
1-page sample (candidate rules are too specific) and converges close to
1.0 by roughly five pages.
"""

from repro.evaluation.convergence import convergence_study
from repro.evaluation.tables import format_table

from conftest import emit

COMPONENTS = ["runtime", "director", "aka", "language", "genres"]
SAMPLE_SIZES = (1, 2, 3, 5, 8, 10)
SEEDS = tuple(range(6))


def run_study(pages):
    return convergence_study(
        pages, COMPONENTS, sample_sizes=SAMPLE_SIZES, seeds=SEEDS
    )


def test_convergence_with_sample_size(benchmark, movie_cluster):
    points = benchmark.pedantic(
        run_study, args=(movie_cluster,), rounds=1, iterations=1
    )

    f1_by_size = {p.sample_size: p.mean_f1 for p in points}
    # Monotone-ish rise and convergence by ~5 pages, per the paper.
    assert f1_by_size[1] < f1_by_size[5]
    assert f1_by_size[5] > 0.85
    assert f1_by_size[10] >= f1_by_size[2]
    assert f1_by_size[10] > 0.9

    rows = [
        [
            str(p.sample_size),
            f"{p.mean_f1:.3f}",
            f"{p.mean_precision:.3f}",
            f"{p.mean_recall:.3f}",
            f"{p.mean_refinements:.1f}",
        ]
        for p in points
    ]
    emit(
        "Convergence - extraction quality vs working-sample size "
        f"({len(SEEDS)} seeds, components: {', '.join(COMPONENTS)})",
        format_table(
            ["sample size", "mean F1", "mean P", "mean R", "mean refinements"],
            rows,
            align_right=[0, 1, 2, 3, 4],
        ),
    )
