"""Benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's per-experiment index) and *prints* the regenerated rows, so
``pytest benchmarks/ --benchmark-only -s`` shows the paper-vs-measured
material that EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.oracle import ScriptedOracle
from repro.sites.imdb import ImdbOptions, generate_imdb_site, make_paper_sample


@pytest.fixture(scope="session")
def paper_sample():
    return make_paper_sample()


@pytest.fixture(scope="session")
def movie_cluster():
    site = generate_imdb_site(options=ImdbOptions(n_pages=30, seed=7))
    return site.pages_with_hint("imdb-movies")


@pytest.fixture(scope="session")
def oracle():
    return ScriptedOracle()


def emit(title: str, body: str) -> None:
    """Print a labelled block (visible with ``-s``)."""
    print(f"\n=== {title} ===")
    print(body)


def write_results(payload: dict) -> Path:
    """Merge one bench's measurements into the ``$BENCH_RESULTS`` file.

    Every service benchmark lands its section in the same JSON
    artifact (CI uploads it per Python version), so sections merge
    rather than overwrite.
    """
    import json
    import os

    target = Path(
        os.environ.get(
            "BENCH_RESULTS", "bench-results/service_throughput.json"
        )
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    merged: dict = {}
    if target.exists():
        merged = json.loads(target.read_text(encoding="utf-8"))
    merged.update(payload)
    target.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target
