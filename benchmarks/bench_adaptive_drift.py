"""Adaptive routing under template drift — recovery, quantified.

A router is fitted on a fine-grained template (the depth family's
level 1) and then the stream mutates to level 3: same records, same
concepts, same URL shape, different layout — the "template edit"
drift class ``bench_resilience_drift`` probes for extraction rules,
now aimed at *routing*.

Replayed twice over the identical drifting stream:

* **frozen** — the paper's behaviour (Table 4 "Resilience/
  adaptiveness: No"): the router never changes, so every post-drift
  page falls below the confidence threshold and lands in the
  unroutable bucket;
* **adaptive** — an :class:`~repro.service.adapt.AdaptiveRouter`
  watches the unroutable fraction over a sliding window, refits the
  centroid from the buffered cohort, and swaps profiles atomically.

The gated metric is **routed-fraction recovery**: over the pages
served *after* the adaptive router's first refit, the routed fraction
must reach at least :data:`MIN_RECOVERY` of the frozen router's
pre-drift level.  Results are merged into the CI benchmark artifact
(``$BENCH_RESULTS``) next to the throughput measurements.
"""

from repro.service.adapt import AdaptiveRouter, DriftMonitor
from repro.service.router import ClusterRouter
from repro.sites.variation import generate_depth_cluster

from conftest import emit, write_results

#: Pages rendered from the fitted template (first) and the drifted one.
PRE_DRIFT_PAGES = 150
POST_DRIFT_PAGES = 150

#: Exemplars the router is fitted from.
EXEMPLARS = 8

#: Routing confidence threshold: fitted-template pages score ~0.93,
#: drifted ones ~0.60 (see bench output), so 0.8 separates cleanly.
THRESHOLD = 0.8

#: Drift-detection window of the adaptive replay.
DRIFT_WINDOW = 32

#: Regression floor: post-refit routed fraction must reach this share
#: of the frozen router's pre-drift routed fraction.
MIN_RECOVERY = 0.9


def _corpus():
    fitted = generate_depth_cluster(1, n_pages=PRE_DRIFT_PAGES + EXEMPLARS,
                                    seed=3)
    drifted = generate_depth_cluster(3, n_pages=POST_DRIFT_PAGES, seed=4)
    exemplars, pre = fitted[:EXEMPLARS], fitted[EXEMPLARS:]
    return exemplars, pre, drifted


def _routed_flags(router, pages) -> list:
    return [router.route(page).routed for page in pages]


def _fraction(flags) -> float:
    return sum(flags) / len(flags) if flags else 0.0


def _replay():
    exemplars, pre, drifted = _corpus()

    frozen = ClusterRouter.fit({"depth-1": exemplars}, threshold=THRESHOLD)
    frozen_pre = _routed_flags(frozen, pre)
    frozen_post = _routed_flags(frozen, drifted)

    adaptive = AdaptiveRouter(
        ClusterRouter.fit({"depth-1": exemplars}, threshold=THRESHOLD),
        monitor=DriftMonitor(window=DRIFT_WINDOW),
    )
    adaptive_pre = _routed_flags(adaptive, pre)
    refits_at_boundary = adaptive.refits
    adaptive_post = []
    first_refit_position = None
    for position, page in enumerate(drifted):
        adaptive_post.append(adaptive.route(page).routed)
        if (
            first_refit_position is None
            and adaptive.refits > refits_at_boundary
        ):
            first_refit_position = position
    return {
        "frozen_pre": frozen_pre,
        "frozen_post": frozen_post,
        "adaptive_pre": adaptive_pre,
        "adaptive_post": adaptive_post,
        "first_refit_position": first_refit_position,
        "adaptive": adaptive,
    }


def test_adaptive_drift_recovery(benchmark):
    result = benchmark.pedantic(_replay, rounds=1, iterations=1)
    adaptive = result["adaptive"]

    pre_drift_level = _fraction(result["frozen_pre"])
    frozen_post = _fraction(result["frozen_post"])
    adaptive_post = _fraction(result["adaptive_post"])
    first_refit = result["first_refit_position"]
    assert first_refit is not None, "the drifting replay never refit"
    post_refit = _fraction(result["adaptive_post"][first_refit + 1:])
    recovery = post_refit / pre_drift_level if pre_drift_level else 0.0

    emit(
        "Adaptive routing - routed fraction under template drift",
        "\n".join([
            f"pages: {len(result['frozen_pre'])} fitted template + "
            f"{len(result['frozen_post'])} drifted, "
            f"threshold {THRESHOLD}, window {DRIFT_WINDOW}",
            f"frozen, pre-drift    : {pre_drift_level:9.3f}",
            f"frozen, post-drift   : {frozen_post:9.3f}",
            f"adaptive, post-drift : {adaptive_post:9.3f}"
            f"  ({adaptive.refits} refit(s), "
            f"first after {first_refit + 1} drifted page(s))",
            f"adaptive, post-refit : {post_refit:9.3f}"
            f"  (recovery {recovery:.2f}x of pre-drift level)",
        ]),
    )
    results_path = write_results({
        "adaptive_drift": {
            "pre_drift_pages": len(result["frozen_pre"]),
            "post_drift_pages": len(result["frozen_post"]),
            "threshold": THRESHOLD,
            "drift_window": DRIFT_WINDOW,
            "routed_fraction": {
                "frozen_pre_drift": pre_drift_level,
                "frozen_post_drift": frozen_post,
                "adaptive_post_drift": adaptive_post,
                "adaptive_post_refit": post_refit,
            },
            "first_refit_after_pages": first_refit + 1,
            "refits": adaptive.refits,
            "drift_events": adaptive.drift_events,
            "recovery_ratio": recovery,
            "min_recovery": MIN_RECOVERY,
        },
    })
    print(f"results written to {results_path}")

    # Sanity of the scenario itself: adaptation never hurts the
    # pre-drift stream, and drift genuinely breaks the frozen router.
    assert _fraction(result["adaptive_pre"]) == pre_drift_level
    assert frozen_post < 0.5 * pre_drift_level
    # The regression gate: post-refit routing must recover to at least
    # MIN_RECOVERY of the frozen router's pre-drift level.
    assert recovery >= MIN_RECOVERY, (
        f"adaptive router recovered only {recovery:.2f}x of the "
        f"pre-drift routed fraction (floor: {MIN_RECOVERY})"
    )
    assert adaptive_post > frozen_post
