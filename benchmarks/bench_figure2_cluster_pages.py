"""Figure 2 — two pages of the "imdb-movies" cluster.

The figure shows two structurally similar but non-identical movie
pages.  The benchmark parses the paper sample's first and third pages
(the pair whose differences drive the Figure-4 refinement) and verifies
the cluster-membership criteria of Section 2.1: same domain, same
concept vocabulary, close HTML structure.
"""

from repro.clustering.features import keyword_profile, path_profile
from repro.clustering.similarity import cosine_similarity, structure_similarity
from repro.html import parse_html
from repro.evaluation.tables import format_table
from repro.sites.site import same_domain

from conftest import emit


def parse_pair(pages):
    return [parse_html(page.html, url=page.url) for page in pages]


def test_figure2_cluster_pages(benchmark, paper_sample):
    pair = [paper_sample[0], paper_sample[2]]

    docs = benchmark(parse_pair, pair)

    assert all(doc.document_element is not None for doc in docs)
    structure = structure_similarity(
        path_profile(pair[0]), path_profile(pair[1])
    )
    concept = cosine_similarity(
        keyword_profile(pair[0]), keyword_profile(pair[1])
    )
    assert same_domain(pair[0].url, pair[1].url)
    assert structure > 0.6, "pages must have a close HTML structure"
    assert concept > 0.3, "pages must display instances of the same concept"
    # ... and yet differ (page c has the Also Known As pair):
    assert structure < 1.0 or pair[0].html != pair[1].html

    emit(
        "Figure 2 - two pages of the imdb-movies cluster",
        format_table(
            ["criterion", "value"],
            [
                ["same domain", str(same_domain(pair[0].url, pair[1].url))],
                ["structure similarity", f"{structure:.3f}"],
                ["concept (keyword) similarity", f"{concept:.3f}"],
                ["identical HTML", str(pair[0].html == pair[1].html)],
            ],
        ),
    )
