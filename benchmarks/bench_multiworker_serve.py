"""Multi-worker HTTP serve throughput — one process vs the fleet.

Measures one large ``POST /batch`` (NDJSON corpus, ``Connection:
close``) against two real ``serve`` subprocesses:

* ``serve --http`` — the single-process front-end (the baseline);
* ``serve --http --workers 2 --gateway`` — the pre-fork supervisor
  fanning line slices across two forked children and merging the
  streams back in input order.

Both runs must produce byte-identical response bodies — the gateway's
whole contract — and the fleet must actually buy throughput: the
extraction work is pure-Python CPU, so two child *processes* (two
GILs) should approach 2x a single process once slice fan-out overhead
is amortised.

Acceptance bar (failing the run — this file is CI's regression gate
for the supervisor): the 2-worker gateway must sustain at least
:data:`MIN_MULTIWORKER_SPEEDUP` x the single-process throughput.  The
bar is asserted only on hosts with >= :data:`MIN_CPUS_FOR_GATE` CPUs
(CI's runners): with fewer cores the parent, the children and the
client all share one core and the fleet physically cannot win — the
measured ratio is still recorded in the ``$BENCH_RESULTS`` artifact,
and byte-identity is asserted everywhere.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.sites.imdb import generate_imdb_site

from conftest import emit, write_results

#: Distinct movie pages in the corpus (each line is a full parse).
CORPUS_PAGES = 120

#: Repeats of the page set in one batch body.
CORPUS_REPEATS = 12

#: Lines per gateway slice — large enough that slice fan-out (one
#: loopback POST per slice) stays a small fraction of the slice work.
SLICE_LINES = 96

#: Regression floor: gateway@2 workers vs the single process.
MIN_MULTIWORKER_SPEEDUP = 1.8

#: The speedup gate needs the parent, two children and the client to
#: have real cores; below this the ratio is recorded, not asserted.
MIN_CPUS_FOR_GATE = 4

_SERVING = re.compile(r"serving HTTP on 127\.0\.0\.1:(\d+)")


def _corpus(tmp_dir: Path) -> tuple[Path, bytes]:
    site = generate_imdb_site(
        n_movies=CORPUS_PAGES, n_actors=0, n_search=0, seed=17
    )
    pages = site.pages_with_hint("imdb-movies")
    repository = RuleRepository()
    MappingRuleBuilder(
        pages[:8], ScriptedOracle(), repository=repository,
        cluster_name="imdb-movies", seed=1,
    ).build_all(["title", "rating", "genres"])
    repo_path = tmp_dir / "rules.json"
    repository.save(repo_path)
    body = "".join(
        json.dumps({"url": page.url, "html": page.html}) + "\n"
        for page in pages * CORPUS_REPEATS
    ).encode("utf-8")
    return repo_path, body


class _Serve:
    """One ``serve --http`` subprocess (optionally a supervisor)."""

    def __init__(self, repo_path: Path, *extra: str) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             "serve", "--repository", str(repo_path),
             "--cluster", "imdb-movies", "--http", "127.0.0.1:0", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        )
        self._lines: list[str] = []
        threading.Thread(target=self._drain, daemon=True).start()
        deadline = time.time() + 60
        self.port = None
        while time.time() < deadline and self.port is None:
            for line in list(self._lines):
                match = _SERVING.search(line)
                if match:
                    self.port = int(match.group(1))
            time.sleep(0.02)
        assert self.port is not None, "".join(self._lines)

    def _drain(self) -> None:
        for line in self.proc.stderr:
            self._lines.append(line.decode("utf-8", "replace"))

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(10)


def _batch_seconds(port: int, body: bytes) -> tuple[float, bytes]:
    """One timed ``POST /batch``; returns (seconds, response body)."""
    raw = (
        b"POST /batch HTTP/1.1\r\nHost: bench\r\n"
        b"Content-Length: %d\r\nConnection: close\r\n\r\n" % len(body)
        + body
    )
    with socket.create_connection(("127.0.0.1", port), timeout=600) as s:
        s.sendall(raw)
        s.settimeout(600)
        started = time.perf_counter()
        data = b""
        while True:
            chunk = s.recv(1 << 20)
            if not chunk:
                break
            data += chunk
    elapsed = time.perf_counter() - started
    head, _, rest = data.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 200"), head
    payload = b""
    while rest:  # the response streams back chunked
        size_line, _, rest = rest.partition(b"\r\n")
        size = int(size_line.split(b";")[0], 16)
        if size == 0:
            break
        payload += rest[:size]
        rest = rest[size + 2:]
    return elapsed, payload


def _measure(repo_path: Path, body: bytes, *extra: str) -> tuple:
    serve = _Serve(repo_path, *extra)
    try:
        _measure_warm = _batch_seconds(serve.port, body)  # warm the fleet
        first, payload = _batch_seconds(serve.port, body)
        second, again = _batch_seconds(serve.port, body)
        assert again == payload
        assert payload == _measure_warm[1]
        return min(first, second), payload
    finally:
        serve.close()


def test_multiworker_serve_throughput(tmp_path, benchmark):
    repo_path, body = _corpus(tmp_path)
    lines = body.count(b"\n")

    single_seconds, single_payload = _measure(repo_path, body)
    gateway_seconds, gateway_payload = benchmark.pedantic(
        lambda: _measure(
            repo_path, body,
            "--workers", "2", "--gateway",
            "--gateway-slice", str(SLICE_LINES),
        ),
        rounds=1, iterations=1,
    )

    # The supervisor's contract before its throughput: the fanned-out
    # merge is byte-identical to the single-process stream.
    assert gateway_payload == single_payload

    speedup = single_seconds / gateway_seconds
    cpus = os.cpu_count() or 1
    gated = cpus >= MIN_CPUS_FOR_GATE
    emit(
        "Multi-worker HTTP serve (pages/second, higher is better)",
        "\n".join([
            f"lines: {lines}, slice: {SLICE_LINES}, cpus: {cpus}",
            f"single process       : {lines / single_seconds:9.1f} pages/s",
            f"gateway, 2 workers   : {lines / gateway_seconds:9.1f} pages/s"
            f"  ({speedup:.2f}x single)",
            f"speedup gate         : >= {MIN_MULTIWORKER_SPEEDUP}x "
            + ("(enforced)" if gated else
               f"(recorded only: < {MIN_CPUS_FOR_GATE} cpus)"),
        ]),
    )
    results_path = write_results({
        "multiworker_serve": {
            "lines": lines,
            "slice_lines": SLICE_LINES,
            "cpus": cpus,
            "pages_per_second": {
                "single_process": lines / single_seconds,
                "gateway_2_workers": lines / gateway_seconds,
            },
            "speedup_vs_single": speedup,
            "min_speedup": MIN_MULTIWORKER_SPEEDUP,
            "gate_enforced": gated,
            "byte_identical": True,
        },
    })
    print(f"results written to {results_path}")

    if gated:
        assert speedup >= MIN_MULTIWORKER_SPEEDUP, (
            f"2-worker gateway is only {speedup:.2f}x the single process "
            f"(regression floor: {MIN_MULTIWORKER_SPEEDUP}x)"
        )
