"""Command-line interface: the ``retrozilla`` tool.

Subcommands mirror the Figure-1 pipeline:

* ``demo``        — run the paper's worked example end to end
                    (Table 1 -> refinement -> Table 3 -> Figure 5 XML);
* ``generate``    — write a synthetic site to a directory as HTML files;
* ``cluster``     — cluster a directory of HTML files and print groups;
* ``build``       — build mapping rules for a cluster interactively
                    (console oracle) and save the repository;
* ``extract``     — apply a saved repository to HTML files and emit the
                    XML document (and optionally the XML Schema).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.clustering.cluster import PageClusterer
from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import InteractiveOracle, ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.extraction.schema import generate_xml_schema
from repro.extraction.xml_writer import write_cluster_xml
from repro.sites.imdb import generate_imdb_site, make_paper_sample
from repro.sites.news import generate_news_site
from repro.sites.page import WebPage
from repro.sites.shop import generate_shop_site
from repro.sites.stocks import generate_stocks_site


def _load_pages(directory: Path) -> list[WebPage]:
    """Read ``*.html`` files from a directory as pages (URL = file URI)."""
    pages: list[WebPage] = []
    for path in sorted(directory.glob("*.html")):
        pages.append(WebPage(url=path.as_uri(), html=path.read_text(encoding="utf-8")))
    return pages


def _save_site(site, directory: Path) -> int:
    directory.mkdir(parents=True, exist_ok=True)
    count = 0
    for index, page in enumerate(site):
        name = f"{page.cluster_hint or 'page'}-{index:04d}.html"
        (directory / name).write_text(page.html, encoding="utf-8")
        count += 1
    return count


# ----------------------------------------------------------------------- #
# Subcommand implementations
# ----------------------------------------------------------------------- #


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.checking import check_rule, render_check_table

    sample = make_paper_sample()
    oracle = ScriptedOracle()
    builder = MappingRuleBuilder(
        sample, oracle, cluster_name="imdb-movies", seed=args.seed
    )
    selection = oracle.select_value(sample[0], "runtime")
    candidate = builder.candidate_from_selection("runtime", selection)
    print("Candidate rule (from one positive example):")
    print(candidate.describe())
    print()
    print("Table 1 - candidate rule checking:")
    print(render_check_table(check_rule(candidate, sample, oracle)))
    print()
    rule, report, trace = builder.engine.refine(candidate, sample)
    print(f"Refinement strategies applied: {trace.strategies_used}")
    print()
    print("Table 3 - rule checking after rule refinement:")
    print(render_check_table(report))
    print()
    builder.repository.record("imdb-movies", rule)
    processor = ExtractionProcessor(builder.repository, "imdb-movies")
    print("Figure 5 - generated XML document:")
    print(write_cluster_xml(processor.extract(sample), builder.repository))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    generators = {
        "imdb": lambda: generate_imdb_site(
            n_movies=args.pages, n_actors=args.pages // 3,
            n_search=args.pages // 5, seed=args.seed,
        ),
        "shop": lambda: generate_shop_site(args.pages, seed=args.seed),
        "news": lambda: generate_news_site(args.pages, seed=args.seed),
        "stocks": lambda: generate_stocks_site(min(args.pages, 24), seed=args.seed),
    }
    if args.family not in generators:
        print(f"unknown site family {args.family!r}", file=sys.stderr)
        return 2
    count = _save_site(generators[args.family](), Path(args.output))
    print(f"wrote {count} page(s) to {args.output}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    pages = _load_pages(Path(args.directory))
    if not pages:
        print("no *.html files found", file=sys.stderr)
        return 2
    result = PageClusterer().cluster(pages)
    for cluster in result.clusters:
        print(f"{cluster.name}  ({len(cluster)} page(s))")
        for url in cluster.urls()[: args.show]:
            print(f"  {url}")
        if len(cluster) > args.show:
            print(f"  ... and {len(cluster) - args.show} more")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    pages = _load_pages(Path(args.directory))
    if not pages:
        print("no *.html files found", file=sys.stderr)
        return 2
    sample = pages[: args.sample_size]
    oracle = InteractiveOracle()
    repository = (
        RuleRepository.load(args.repository)
        if Path(args.repository).exists()
        else RuleRepository()
    )
    builder = MappingRuleBuilder(
        sample, oracle, repository=repository, cluster_name=args.cluster
    )
    report = builder.build_all(args.components)
    print(report.summary())
    repository.save(args.repository)
    print(f"repository saved to {args.repository}")
    return 0 if not report.failed_components else 1


def cmd_extract(args: argparse.Namespace) -> int:
    pages = _load_pages(Path(args.directory))
    repository = RuleRepository.load(args.repository)
    processor = ExtractionProcessor(repository, args.cluster)
    result = processor.extract(pages)
    xml = write_cluster_xml(result, repository)
    if args.output:
        Path(args.output).write_text(xml, encoding="utf-8")
        print(f"XML written to {args.output}")
    else:
        print(xml)
    if args.schema:
        schema = generate_xml_schema(repository, args.cluster)
        Path(args.schema).write_text(schema, encoding="utf-8")
        print(f"XML Schema written to {args.schema}")
    if result.failures:
        print(f"{len(result.failures)} extraction failure(s) detected:",
              file=sys.stderr)
        for failure in result.failures[:10]:
            print(f"  {failure}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------- #
# Parser
# ----------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="retrozilla",
        description="Semi-automated extraction of targeted data from web pages "
        "(Estiévenart et al., ICDE Workshops 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's worked example")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    generate = sub.add_parser("generate", help="write a synthetic site to disk")
    generate.add_argument("family", choices=["imdb", "shop", "news", "stocks"])
    generate.add_argument("output")
    generate.add_argument("--pages", type=int, default=30)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    cluster = sub.add_parser("cluster", help="cluster a directory of HTML files")
    cluster.add_argument("directory")
    cluster.add_argument("--show", type=int, default=5)
    cluster.set_defaults(func=cmd_cluster)

    build = sub.add_parser("build", help="build rules interactively")
    build.add_argument("directory")
    build.add_argument("components", nargs="+")
    build.add_argument("--cluster", default="cluster")
    build.add_argument("--repository", default="rules.json")
    build.add_argument("--sample-size", type=int, default=10)
    build.set_defaults(func=cmd_build)

    extract = sub.add_parser("extract", help="apply saved rules, emit XML")
    extract.add_argument("directory")
    extract.add_argument("--cluster", default="cluster")
    extract.add_argument("--repository", default="rules.json")
    extract.add_argument("--output", default="")
    extract.add_argument("--schema", default="")
    extract.set_defaults(func=cmd_extract)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
