"""Command-line interface: the ``retrozilla`` tool.

Subcommands mirror the Figure-1 pipeline:

* ``demo``        — run the paper's worked example end to end
                    (Table 1 -> refinement -> Table 3 -> Figure 5 XML);
* ``generate``    — write a synthetic site to a directory as HTML files;
* ``cluster``     — cluster a directory of HTML files and print groups;
* ``build``       — build mapping rules for a cluster interactively
                    (console oracle) and save the repository;
* ``extract``     — apply a saved repository to HTML files and emit the
                    XML document (and optionally the XML Schema);
* ``batch``       — serve a directory through the streaming extraction
                    runtime (router -> compiled wrappers -> sink);
* ``serve``       — online loop: read ``{"url", "html"}`` JSON lines
                    from stdin, write extraction records to stdout.
                    Asynchronous by default (bounded in-flight pages,
                    output in input order); ``--sync`` keeps the
                    one-line-at-a-time loop; ``--http HOST:PORT``
                    serves the same contract over a socket instead
                    (``POST /extract``, streaming ``POST /batch``,
                    ``GET /healthz``, ``GET /metrics``) with graceful
                    drain on SIGINT/SIGTERM and optional admission
                    control (``--rate-limit``, ``--max-concurrent``);
* ``shard``       — multi-host batch execution in coordinator-free
                    steps: ``plan`` splits the corpus deterministically,
                    ``run`` extracts one shard (JSONL or XML +
                    manifest), ``resume`` re-runs only failed/missing
                    shards, ``merge`` mergesorts shard outputs into a
                    stream byte-identical to an unsharded ``batch`` run;
* ``registry``    — inspect and manage a versioned artifact registry
                    (``list`` / ``show`` / ``diff`` / ``pin`` /
                    ``rollback``).  ``serve``, ``batch`` and the shard
                    workers take ``--registry DIR`` to deploy its
                    pinned version, and ``serve --adapt
                    --canary-fraction`` shadow-tests every refit
                    candidate before promoting (or rolling back) it;
* ``lint``        — statically analyze rule-set files, cluster
                    directories or registry versions with the
                    :mod:`repro.analysis` analyzer; findings carry
                    stable ``RW*`` codes (``docs/lint.md``) and the
                    same gate refuses ``registry``-bound publishes of
                    error-severity artifacts unless
                    ``--allow-findings`` overrides it.

Every data-path subcommand is a composition over the same
:class:`~repro.service.runtime.StreamingRuntime`; see
``docs/architecture.md`` for the source -> runtime -> sink map.

``serve``, ``batch`` and the ``shard`` workers all accept ``--adapt``
(plus ``--drift-window`` / ``--drift-threshold`` / ``--adapt-log``):
an :class:`~repro.service.adapt.AdaptiveRouter` then watches the
stream for drift and refits the router online, with every event
auditable in the log.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import re
import signal
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.errors import LintGateError, RegistryError, RepositoryError
from repro.clustering.cluster import PageClusterer
from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import InteractiveOracle, ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.extraction.schema import generate_xml_schema
from repro.extraction.xml_writer import write_cluster_xml
from repro.sites.imdb import generate_imdb_site, make_paper_sample
from repro.sites.news import generate_news_site
from repro.sites.page import WebPage
from repro.sites.shop import generate_shop_site
from repro.sites.stocks import generate_stocks_site


#: ``generate`` names files ``<cluster_hint>-NNNN.html`` (4+ digits —
#: ``{index:04d}`` grows past 9999); loading recovers the hint so
#: routers can be fitted from labelled exemplars.
_HINTED_NAME_RE = re.compile(r"^(?P<hint>.+)-\d{4,}$")


def _page_paths(directory: Path) -> list[Path]:
    return sorted(directory.glob("*.html"))


def _page_from_path(path: Path) -> WebPage:
    """One page from one file (URL = file URI).

    File names following the ``generate`` convention
    (``<hint>-NNNN.html``) get their cluster hint restored; other
    names load with an empty hint.
    """
    return WebPage(
        url=path.resolve().as_uri(),
        html=path.read_text(encoding="utf-8"),
        cluster_hint=_filename_hint(path),
    )


def _load_pages(directory: Path) -> list[WebPage]:
    """Read ``*.html`` files from a directory as pages, eagerly.

    The ``batch`` command instead streams pages lazily
    (``_page_from_path`` over ``_page_paths``) so huge directories
    never sit in memory at once.
    """
    return [_page_from_path(path) for path in _page_paths(directory)]


def _corpus_source(paths: list[Path]):
    """The lazy, fault-tolerant page source every batch path shares.

    Pages are read (and dropped) as the runtime's bounded in-flight
    window advances; an unreadable or mis-encoded file is skipped with
    a note instead of aborting a million-page run, and records keep
    their corpus *positions* as submission indices (gaps where files
    were skipped), so ``batch`` output stays byte-compatible with a
    merged ``shard run``.
    """
    from repro.service.runtime import LoadingPageSource

    return LoadingPageSource(
        list(enumerate(paths)),
        _page_from_path,
        skip_unreadable=True,
        on_skip=lambda path, exc: print(
            f"skipping {path}: {exc}", file=sys.stderr
        ),
    )


def _save_site(site, directory: Path) -> int:
    directory.mkdir(parents=True, exist_ok=True)
    count = 0
    for index, page in enumerate(site):
        name = f"{page.cluster_hint or 'page'}-{index:04d}.html"
        (directory / name).write_text(page.html, encoding="utf-8")
        count += 1
    return count


# ----------------------------------------------------------------------- #
# Subcommand implementations
# ----------------------------------------------------------------------- #


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.checking import check_rule, render_check_table

    sample = make_paper_sample()
    oracle = ScriptedOracle()
    builder = MappingRuleBuilder(
        sample, oracle, cluster_name="imdb-movies", seed=args.seed
    )
    selection = oracle.select_value(sample[0], "runtime")
    candidate = builder.candidate_from_selection("runtime", selection)
    print("Candidate rule (from one positive example):")
    print(candidate.describe())
    print()
    print("Table 1 - candidate rule checking:")
    print(render_check_table(check_rule(candidate, sample, oracle)))
    print()
    rule, report, trace = builder.engine.refine(candidate, sample)
    print(f"Refinement strategies applied: {trace.strategies_used}")
    print()
    print("Table 3 - rule checking after rule refinement:")
    print(render_check_table(report))
    print()
    builder.repository.record("imdb-movies", rule)
    processor = ExtractionProcessor(builder.repository, "imdb-movies")
    print("Figure 5 - generated XML document:")
    print(write_cluster_xml(processor.extract(sample), builder.repository))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    generators = {
        "imdb": lambda: generate_imdb_site(
            n_movies=args.pages, n_actors=args.pages // 3,
            n_search=args.pages // 5, seed=args.seed,
        ),
        "shop": lambda: generate_shop_site(args.pages, seed=args.seed),
        "news": lambda: generate_news_site(args.pages, seed=args.seed),
        "stocks": lambda: generate_stocks_site(min(args.pages, 24), seed=args.seed),
    }
    if args.family not in generators:
        print(f"unknown site family {args.family!r}", file=sys.stderr)
        return 2
    count = _save_site(generators[args.family](), Path(args.output))
    print(f"wrote {count} page(s) to {args.output}")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    pages = _load_pages(Path(args.directory))
    if not pages:
        print("no *.html files found", file=sys.stderr)
        return 2
    result = PageClusterer().cluster(pages)
    for cluster in result.clusters:
        print(f"{cluster.name}  ({len(cluster)} page(s))")
        for url in cluster.urls()[: args.show]:
            print(f"  {url}")
        if len(cluster) > args.show:
            print(f"  ... and {len(cluster) - args.show} more")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    pages = _load_pages(Path(args.directory))
    if not pages:
        print("no *.html files found", file=sys.stderr)
        return 2
    sample = pages[: args.sample_size]
    oracle = InteractiveOracle()
    repository = (
        RuleRepository.load(args.repository)
        if Path(args.repository).exists()
        else RuleRepository()
    )
    builder = MappingRuleBuilder(
        sample, oracle, repository=repository, cluster_name=args.cluster
    )
    report = builder.build_all(args.components)
    print(report.summary())
    repository.save(args.repository)
    print(f"repository saved to {args.repository}")
    return 0 if not report.failed_components else 1


def cmd_extract(args: argparse.Namespace) -> int:
    pages = _load_pages(Path(args.directory))
    repository = RuleRepository.load(args.repository)
    processor = ExtractionProcessor(repository, args.cluster)
    result = processor.extract(pages)
    xml = write_cluster_xml(result, repository)
    if args.output:
        Path(args.output).write_text(xml, encoding="utf-8")
        print(f"XML written to {args.output}")
    else:
        print(xml)
    if args.schema:
        schema = generate_xml_schema(repository, args.cluster)
        Path(args.schema).write_text(schema, encoding="utf-8")
        print(f"XML Schema written to {args.schema}")
    if result.failures:
        print(f"{len(result.failures)} extraction failure(s) detected:",
              file=sys.stderr)
        for failure in result.failures[:10]:
            print(f"  {failure}", file=sys.stderr)
    return 0


def _take_per_cluster(items, hint_of, clusters, cap: int) -> dict:
    """Up to ``cap`` items per cluster, keyed by ``hint_of(item)``.

    Stops scanning early once every wanted cluster's bucket is full,
    so lazy iterables are consumed only as far as needed.
    """
    wanted = set(clusters)
    buckets: dict[str, list] = {}
    for item in items:
        hint = hint_of(item)
        if hint not in wanted:
            continue
        bucket = buckets.setdefault(hint, [])
        if len(bucket) < cap:
            bucket.append(item)
            if all(
                len(buckets.get(cluster, [])) >= cap for cluster in wanted
            ):
                break
    return buckets


def _filename_hint(path: Path) -> str:
    match = _HINTED_NAME_RE.match(path.stem)
    return match.group("hint") if match else ""


def _fit_router_from_paths(
    paths: list[Path],
    repository: RuleRepository,
    exemplars: int,
    threshold: float,
):
    """Fit a router from on-disk pages, selecting by file *name* hint.

    Only the selected exemplar files are ever read, so fitting over a
    huge directory costs a name scan plus ``exemplars`` reads per
    cluster — the rest of the corpus is left for the engine's single
    streaming pass.
    """
    path_buckets = _take_per_cluster(
        paths, _filename_hint, repository.clusters(), exemplars
    )
    if not path_buckets:
        return None
    # Unreadable exemplars are skipped, like everywhere else in batch
    # processing: one mis-encoded file must not abort the run.  Every
    # command fits from the same path list, so routing (and therefore
    # sharded/unsharded output) stays identical either way.
    by_cluster: dict[str, list[WebPage]] = {}
    for cluster, cluster_paths in path_buckets.items():
        pages = []
        for path in cluster_paths:
            try:
                pages.append(_page_from_path(path))
            except (OSError, UnicodeDecodeError) as exc:
                print(f"skipping exemplar {path}: {exc}", file=sys.stderr)
        if pages:
            by_cluster[cluster] = pages
    if not by_cluster:
        return None
    from repro.service import ClusterRouter

    return ClusterRouter.fit(by_cluster, threshold=threshold)


def _make_adapter(args, router):
    """Build the ``--adapt`` layer; ``None`` (with a message) on error.

    Adaptation watches routing decisions, so it needs a fitted
    signature router — hint-based routing has no profiles to refit.
    The audit log starts in-memory; :func:`_attach_adapter_log` opens
    the ``--adapt-log`` file only after the rest of the command has
    validated, so a command that never runs cannot truncate a
    previous run's audit trail.
    """
    from repro.errors import ClusteringError
    from repro.service import make_adapter

    try:
        return make_adapter(
            router,
            window=args.drift_window,
            threshold=args.drift_threshold,
            low_margin=args.drift_margin,
            spawn_clusters=args.adapt_spawn,
        )
    except (ClusteringError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return None


def _attach_adapter_log(adapter, args, log_suffix: str = "") -> None:
    """Point a validated adapter's audit log at ``--adapt-log``.

    ``log_suffix`` keeps audit logs apart when one process runs
    several adaptive workers (``shard resume``).  Raises ``OSError``
    when the path cannot be opened.
    """
    from repro.service import AdaptationLog

    if adapter is not None and args.adapt_log:
        adapter.log = AdaptationLog(args.adapt_log + log_suffix)


def _registry_pinned_artifact(args):
    """``(registry, repository, router, version)`` for ``--registry``.

    Opens the registry and loads its pinned artifact when one exists
    (repository/router/version come back ``None`` otherwise); the
    caller's repository and fitted router are then *replaced* by the
    pinned version's, so every worker of a run deploys the exact
    artifact the pin names.  ``RegistryError`` propagates to the
    caller's error path.
    """
    from repro.service import ArtifactRegistry

    registry = ArtifactRegistry(args.registry)
    pinned = registry.pinned()
    if pinned is None:
        return registry, None, None, None
    repository, router, _ = registry.load(pinned)
    print(f"registry: using pinned version {pinned}", file=sys.stderr)
    return registry, repository, router, pinned


def _publish_initial(
    registry, repository, router, allow_findings: bool = False
) -> str:
    """Seed an empty registry with the artifact this run deploys.

    Publishing runs the lint gate: error-severity analyzer findings
    raise :class:`~repro.errors.LintGateError` (a ``RegistryError``
    the callers' error paths already handle) unless the run passed
    ``--allow-findings``.
    """
    manifest = registry.publish(
        repository, router, source="initial", allow_findings=allow_findings
    )
    registry.pin(manifest.version)
    print(
        f"registry: published and pinned initial version "
        f"{manifest.version}",
        file=sys.stderr,
    )
    return manifest.version


def _print_lint_refusal(exc: LintGateError) -> None:
    """Render a publish refusal: the findings first, then the next move."""
    from repro.analysis import render_text

    print(render_text(exc.findings), file=sys.stderr)
    print(f"{exc} (pass --allow-findings to deploy anyway)", file=sys.stderr)


def _dump_metrics(path: str) -> None:
    """Snapshot the process-wide metrics registry to ``path``.

    The dump is the same Prometheus text exposition ``serve --http``
    answers on ``GET /metrics``; batch and shard runs have no socket,
    so ``--metrics PATH`` writes the registry on exit instead — after
    an interrupted run too, where the counters document how far the
    checkpoint got.
    """
    from repro.service import default_registry

    Path(path).write_text(default_registry().render(), encoding="utf-8")
    print(f"metrics written to {path}", file=sys.stderr)


def _progress_emitter(args, label: str):
    """The ``--progress`` JSONL emitter on stderr (``None`` when off)."""
    if not getattr(args, "progress", 0):
        return None
    from repro.service import ProgressEmitter

    return ProgressEmitter(
        sys.stderr, label=label, every_pages=args.progress
    )


def _announce_compile(progress, runtime) -> None:
    """Emit the one-off per-cluster compiler-stats progress event.

    Duck-typed: anything without ``announce_compile`` (progress off, or
    a bare-callable emitter) is silently skipped.
    """
    announce = getattr(progress, "announce_compile", None)
    if announce is not None:
        announce(runtime.wrapper_stats())


@contextlib.contextmanager
def _graceful_interrupt(token):
    """Turn the first SIGINT into a cooperative cancellation.

    The first ``^C`` cancels ``token`` — the runtime stops admitting
    pages, drains what is in flight, and the command exits 130 with
    line-complete output (and, for shards, a digest-valid checkpoint
    manifest that ``shard resume`` picks up).  A second ``^C`` raises
    :class:`KeyboardInterrupt` as usual for a hard abort.  The
    previous handler is restored on exit; on threads that cannot set
    signal handlers the context is a no-op.
    """

    def _handler(signum, frame):
        if token.is_set():
            raise KeyboardInterrupt
        token.cancel()
        print(
            "interrupt: finishing in-flight work (^C again to abort)",
            file=sys.stderr,
        )

    try:
        previous = signal.signal(signal.SIGINT, _handler)
    except ValueError:  # pragma: no cover - non-main thread
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.service import (
        CancellationToken,
        JsonlSink,
        StreamingRuntime,
        XmlDirectorySink,
    )

    if args.jsonl and args.xml_dir:
        print("--jsonl and --xml-dir are mutually exclusive",
              file=sys.stderr)
        return 2
    paths = _page_paths(Path(args.directory))
    if not paths:
        print("no *.html files found", file=sys.stderr)
        return 2
    try:
        repository = RuleRepository.load(args.repository)
    except RepositoryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    registry = None
    reg_router = None
    if args.registry:
        try:
            registry, reg_repository, reg_router, _ = (
                _registry_pinned_artifact(args)
            )
            if reg_repository is not None:
                repository = reg_repository
        except RegistryError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    router = None
    if args.route == "auto":
        router = reg_router if reg_router is not None else (
            _fit_router_from_paths(
                paths, repository, args.exemplars, args.threshold
            )
        )
        if router is None:
            print(
                "no hint-labelled exemplar pages found; routing by hints",
                file=sys.stderr,
            )
    if registry is not None and registry.pinned() is None:
        try:
            _publish_initial(
                registry, repository, router,
                allow_findings=args.allow_findings,
            )
        except LintGateError as exc:
            _print_lint_refusal(exc)
            return 2
    adapter = None
    if args.adapt:
        adapter = _make_adapter(args, router)
        if adapter is None:
            return 2
    try:
        # ``ordered=True``: records leave in submission-index order, so
        # this output is byte-identical to a merged ``shard`` run.
        runtime = StreamingRuntime(
            repository,
            router=None if adapter is not None else router,
            workers=args.workers,
            executor=args.executor,
            chunk_size=args.chunk_size,
            ordered=True,
            adapter=adapter,
            automaton=args.automaton,
            transport=args.transport,
        )
        _attach_adapter_log(adapter, args)
    except (ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    # Output files open only now, with everything validated: a
    # command that cannot run must not truncate a previous run's
    # records or audit log.
    if args.xml_dir:
        sink = XmlDirectorySink(Path(args.xml_dir), repository)
    elif args.jsonl:
        sink = JsonlSink(args.jsonl)
    else:
        sink = JsonlSink(sys.stdout)
    source = _corpus_source(paths)
    cancel = CancellationToken()
    progress = _progress_emitter(args, "batch")
    _announce_compile(progress, runtime)
    try:
        with sink:
            with _graceful_interrupt(cancel):
                report = runtime.run(
                    source, sink, cancel=cancel, on_progress=progress
                )
            if progress is not None:
                progress.finish(report)
    finally:
        if adapter is not None:
            adapter.log.close()
    print(report.summary(), file=sys.stderr)
    if source.unreadable:
        print(f"{len(source.unreadable)} unreadable file(s) skipped",
              file=sys.stderr)
    if args.xml_dir:
        print(f"XML documents written to {args.xml_dir}", file=sys.stderr)
    elif args.jsonl:
        print(f"records written to {args.jsonl}", file=sys.stderr)
    if args.metrics:
        _dump_metrics(args.metrics)
    if report.cancelled:
        print("interrupted; partial output is line-complete",
              file=sys.stderr)
        return 130
    return 0


# --------------------------------------------------------------------- #
# Sharded batch execution (multi-host, coordinator-free)
# --------------------------------------------------------------------- #


def cmd_shard_plan(args: argparse.Namespace) -> int:
    from repro.errors import ShardError
    from repro.service import ShardPlanner

    paths = _page_paths(Path(args.directory))
    if not paths:
        print("no *.html files found", file=sys.stderr)
        return 2
    try:
        planner = ShardPlanner(args.shards, args.strategy)
        plan = planner.plan([path.name for path in paths])
    except ShardError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    plan.save(args.output)
    sizes = ", ".join(
        f"#{shard}={size}" for shard, size in enumerate(plan.shard_sizes())
    )
    print(
        f"planned {len(paths)} page(s) into {plan.shards} "
        f"{plan.strategy} shard(s): {sizes}"
    )
    print(f"plan written to {args.output}")
    return 0


def _load_shard_inputs(args) -> Optional[tuple]:
    """Plan + repository + corpus-presence check shared by run/resume.

    With ``--registry``, the pinned artifact replaces the repository
    (and the fitted router), and its version id is returned for the
    shard manifests — every shard of a run must deploy one version.
    """
    from repro.errors import ShardError
    from repro.service import ShardPlan

    directory = Path(args.directory)
    try:
        plan = ShardPlan.load(args.plan)
        repository = RuleRepository.load(args.repository)
    except (ShardError, RepositoryError) as exc:
        print(str(exc), file=sys.stderr)
        return None
    registry = None
    reg_router = None
    artifact_version = None
    if args.registry:
        try:
            registry, reg_repository, reg_router, artifact_version = (
                _registry_pinned_artifact(args)
            )
            if reg_repository is not None:
                repository = reg_repository
        except RegistryError as exc:
            print(str(exc), file=sys.stderr)
            return None
    missing = [
        page_id for page_id in plan.page_ids
        if not (directory / page_id).exists()
    ]
    if missing:
        print(
            f"{len(missing)} page(s) named by the plan are missing from "
            f"{directory} (first: {missing[0]})",
            file=sys.stderr,
        )
        return None
    router = None
    if args.route == "auto":
        if reg_router is not None:
            router = reg_router
        else:
            # Fitted from the *full* corpus in plan order, so every
            # shard (and an unsharded ``batch``) routes identically.
            router = _fit_router_from_paths(
                [directory / page_id for page_id in plan.page_ids],
                repository, args.exemplars, args.threshold,
            )
        if router is None:
            print(
                "no hint-labelled exemplar pages found; routing by hints",
                file=sys.stderr,
            )
    if registry is not None and artifact_version is None:
        try:
            artifact_version = _publish_initial(
                registry, repository, router,
                allow_findings=args.allow_findings,
            )
        except LintGateError as exc:
            _print_lint_refusal(exc)
            return None
    return directory, plan, repository, router, artifact_version


def _run_one_shard(args, directory, plan, repository, router,
                   shard: int,
                   artifact_version: Optional[str] = None,
                   cancel=None):
    """Execute one shard worker; prints the run summary.

    Returns the shard's manifest (``manifest.interrupted`` is set when
    ``cancel`` fired and the output is a resumable checkpoint), or
    ``None`` on error.
    """
    from repro.errors import ShardError
    from repro.service import ShardWorker

    # Each shard adapts (and audits) independently: drift is a
    # property of the traffic a host actually serves.
    from repro.service.shard import shard_basename

    adapter = None
    if args.adapt:
        # Each shard adapts from the originally fitted profiles: the
        # fitted router is shared across the shards a resume runs in
        # one process, and refit() mutates its profile list, so every
        # worker gets its own clone — a resumed shard's output stays
        # identical to running that shard alone on its own host.
        own_router = None if router is None else router.clone()
        adapter = _make_adapter(args, own_router)
        if adapter is None:
            return None
    try:
        worker = ShardWorker(
            repository, plan, shard,
            router=None if adapter is not None else router,
            workers=args.workers,
            executor=args.executor,
            chunk_size=args.chunk_size,
            skip_unreadable=True,
            adapter=adapter,
            automaton=args.automaton,
            transport=args.transport,
        )
        _attach_adapter_log(
            adapter, args, log_suffix=f".{shard_basename(shard)}"
        )
        progress = _progress_emitter(args, shard_basename(shard))
        _announce_compile(progress, worker.runtime)
        manifest, report = worker.run(
            lambda page_id: _page_from_path(directory / page_id),
            Path(args.output_dir),
            output_format=args.format,
            artifact_version=artifact_version,
            cancel=cancel,
            on_progress=progress,
        )
        if progress is not None:
            progress.finish(report)
    except (ShardError, ValueError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return None
    finally:
        if adapter is not None:
            adapter.log.close()
    print(report.summary(), file=sys.stderr)
    if manifest.unreadable:
        print(f"{manifest.unreadable} unreadable file(s) skipped",
              file=sys.stderr)
    print(
        f"shard {manifest.shard} of {manifest.shards}: "
        f"{manifest.records} record(s) -> "
        f"{Path(args.output_dir) / manifest.output}",
        file=sys.stderr,
    )
    return manifest


def cmd_shard_run(args: argparse.Namespace) -> int:
    from repro.service import CancellationToken

    loaded = _load_shard_inputs(args)
    if loaded is None:
        return 2
    directory, plan, repository, router, artifact_version = loaded
    cancel = CancellationToken()
    with _graceful_interrupt(cancel):
        manifest = _run_one_shard(args, directory, plan, repository,
                                  router, args.shard,
                                  artifact_version=artifact_version,
                                  cancel=cancel)
    if manifest is None:
        return 2
    if args.metrics:
        _dump_metrics(args.metrics)
    if manifest.interrupted:
        print(
            "interrupted; checkpoint manifest written — `shard resume` "
            "re-runs this shard",
            file=sys.stderr,
        )
        return 130
    return 0


def cmd_shard_resume(args: argparse.Namespace) -> int:
    from repro.errors import ShardError
    from repro.service import ShardPlan, shard_statuses

    # Audit first: it needs only the plan and the output directory, so
    # a fully-complete resume is a cheap no-op even when the corpus is
    # gone from this host and no router has to be fitted.
    try:
        plan = ShardPlan.load(args.plan)
        statuses = shard_statuses(
            plan, args.output_dir, verify_digests=not args.no_verify
        )
    except ShardError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    mismatched = sorted({
        status.output_format for status in statuses
        if status.complete and status.output_format != args.format
    })
    if mismatched:
        print(
            f"existing complete shard(s) in {args.output_dir} are "
            f"{', '.join(mismatched)} but --format is {args.format}; "
            "re-run resume with the matching --format",
            file=sys.stderr,
        )
        return 2
    pending = [status for status in statuses if not status.complete]
    if not pending:
        print(
            f"all {plan.shards} shard(s) complete in {args.output_dir}; "
            "nothing to resume",
            file=sys.stderr,
        )
        return 0
    loaded = _load_shard_inputs(args)
    if loaded is None:
        return 2
    directory, plan, repository, router, artifact_version = loaded
    # Re-runs join a directory of already-complete shards: they must
    # deploy the artifact version those shards ran, or the directory
    # can never merge (``_validate_manifests`` enforces the same).
    stale = sorted({
        status.artifact_version or "(none)" for status in statuses
        if status.complete and status.artifact_version != artifact_version
    })
    if stale:
        print(
            f"existing complete shard(s) in {args.output_dir} ran "
            f"artifact version(s) {', '.join(stale)} but this run "
            f"deploys {artifact_version or '(none)'}; re-pin the "
            "registry or start a fresh output directory",
            file=sys.stderr,
        )
        return 2
    print(
        f"resuming {len(pending)} of {plan.shards} shard(s): "
        + ", ".join(f"#{s.shard} ({s.reason})" for s in pending),
        file=sys.stderr,
    )
    from repro.service import CancellationToken

    cancel = CancellationToken()
    interrupted = False
    with _graceful_interrupt(cancel):
        for status in pending:
            manifest = _run_one_shard(args, directory, plan, repository,
                                      router, status.shard,
                                      artifact_version=artifact_version,
                                      cancel=cancel)
            if manifest is None:
                return 2
            if manifest.interrupted:
                interrupted = True
                break
    if args.metrics:
        _dump_metrics(args.metrics)
    if interrupted:
        print(
            "interrupted; checkpoint manifest written — re-run "
            "`shard resume` to finish",
            file=sys.stderr,
        )
        return 130
    return 0


def cmd_shard_merge(args: argparse.Namespace) -> int:
    from repro.errors import ShardError
    from repro.service import ShardMerger, XmlShardMerger

    if args.format == "xml":
        if not args.output:
            print("--format xml needs --output DIRECTORY", file=sys.stderr)
            return 2
        merger = XmlShardMerger(verify_digests=not args.no_verify)
        try:
            report = merger.merge(args.inputs, args.output)
        except ShardError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        print(report.summary(), file=sys.stderr)
        print(f"merged XML documents written to {args.output}",
              file=sys.stderr)
        return 0
    merger = ShardMerger(verify_digests=not args.no_verify)
    try:
        report = merger.merge(
            args.inputs, args.output if args.output else sys.stdout
        )
    except ShardError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(report.summary(), file=sys.stderr)
    if args.output:
        print(f"merged records written to {args.output}", file=sys.stderr)
    return 0


#: CLI override of the consecutive-decode-failure cap before ``serve``
#: gives up.  ``None`` defers to the single definition in
#: :data:`repro.service.serve.MAX_DECODE_FAILURES` (sync and async
#: front-ends can never drift); rebind to a number to tune the CLI.
#: Kept lazy so non-service subcommands never import the serve layer.
SERVE_MAX_DECODE_FAILURES: Optional[int] = None


def _serve_decode_failure_cap() -> int:
    from repro.service.serve import MAX_DECODE_FAILURES

    if SERVE_MAX_DECODE_FAILURES is not None:
        return SERVE_MAX_DECODE_FAILURES
    return MAX_DECODE_FAILURES


def _serve_output_closed() -> None:
    """The consumer closed our output mid-run: stop serving cleanly.

    Point the real stdout at devnull so the interpreter's shutdown
    flush cannot raise a second time.
    """
    try:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except (OSError, ValueError, AttributeError):
        pass
    print("output stream closed by consumer", file=sys.stderr)


#: Test seam: called with the started ``HttpFrontEnd`` once ``serve
#: --http`` is accepting connections (the CLI blocks in its event loop
#: from then on; tests use this to learn the bound port and to request
#: a stop from another thread).  ``None`` disables.
SERVE_HTTP_STARTED: Optional[Callable] = None


def _parse_http_address(value: str) -> tuple[str, int]:
    """``HOST:PORT`` (port 0 = pick a free one); host may be omitted.

    IPv6 literals use the standard bracketed spelling (``[::1]:8080``);
    the brackets come off before the bind.
    """
    host, sep, port_text = value.rpartition(":")
    if not sep:
        raise ValueError(
            f"--http takes HOST:PORT, got {value!r} (use :0 for any port)"
        )
    try:
        port = int(port_text)
        if not 0 <= port <= 65535:
            raise ValueError
    except ValueError:
        raise ValueError(
            f"--http port must be 0..65535, got {port_text!r}"
        ) from None
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    return host or "127.0.0.1", port


def _serve_http(handler, args) -> int:
    """The socket front-end: serve until SIGINT/SIGTERM, then drain."""
    from repro.service.http import HttpFrontEnd

    try:
        host, port = _parse_http_address(args.http)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    async def _run():
        front = HttpFrontEnd(
            handler, host, port, drain_timeout=args.http_drain_timeout
        )
        await front.start()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, front.stop)
                hooked.append(signum)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # platform (or thread) without loop signal handlers
        print(f"serving HTTP on {front.host}:{front.port}",
              file=sys.stderr, flush=True)
        if SERVE_HTTP_STARTED is not None:
            SERVE_HTTP_STARTED(front)
        try:
            await front.wait_stopped()
        finally:
            stats = await front.shutdown()
            for signum in hooked:
                loop.remove_signal_handler(signum)
        return stats

    try:
        stats = asyncio.run(_run())
    except KeyboardInterrupt:
        # No loop signal handlers on this platform: the interrupt
        # aborted the loop; sinks flush per line, so output is whole.
        print("interrupted", file=sys.stderr)
        return 130
    except OSError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"served {stats.served} page(s) over {stats.requests} "
        f"request(s) on {stats.connections} connection(s)",
        file=sys.stderr,
    )
    if stats.drained_connections:
        # Mirrors repro_http_drained_connections_total, so the drain
        # log and a final /metrics scrape always agree.
        print(
            f"drained {stats.drained_connections} connection(s) "
            "at shutdown",
            file=sys.stderr,
        )
    if stats.rate_limited or stats.shed:
        print(
            f"admission: {stats.rate_limited} rate-limited, "
            f"{stats.shed} shed",
            file=sys.stderr,
        )
    return 0


#: Test seam: called with the started ``ServeSupervisor`` once every
#: initial child is ready (ports are bound and published by then).
#: ``None`` disables.
SERVE_SUPERVISOR_STARTED: Optional[Callable] = None


def _serve_multiworker(handler, args) -> int:
    """The pre-fork supervisor: N ingress children behind one port."""
    from repro.service.supervisor import ServeSupervisor

    try:
        host, port = _parse_http_address(args.http)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    async def _run():
        supervisor = ServeSupervisor(
            handler,
            host,
            port,
            workers=args.workers,
            gateway=args.gateway,
            slice_lines=args.gateway_slice,
            status_port=args.status_port,
            drain_timeout=args.http_drain_timeout,
        )
        await supervisor.start()
        loop = asyncio.get_running_loop()
        hooked = []
        try:
            loop.add_signal_handler(
                signal.SIGINT, supervisor.interrupt
            )
            hooked.append(signal.SIGINT)
            loop.add_signal_handler(signal.SIGTERM, supervisor.stop)
            hooked.append(signal.SIGTERM)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # platform (or thread) without loop signal handlers
        mode = "gateway" if args.gateway else supervisor.mode
        print(
            f"serving HTTP on {host}:{supervisor.port} with "
            f"{supervisor.workers} worker(s) ({mode})",
            file=sys.stderr, flush=True,
        )
        if not args.gateway:
            print(
                f"supervisor status on {host}:{supervisor.status_port}",
                file=sys.stderr, flush=True,
            )
        if SERVE_SUPERVISOR_STARTED is not None:
            SERVE_SUPERVISOR_STARTED(supervisor)
        try:
            await supervisor.wait_stopped()
        finally:
            stats = await supervisor.shutdown()
            for signum in hooked:
                loop.remove_signal_handler(signum)
        return stats, supervisor.failed

    try:
        stats, failed = asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (OSError, TimeoutError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(
        f"served {stats.served} page(s) over {stats.requests} "
        f"request(s) on {stats.connections} connection(s)",
        file=sys.stderr,
    )
    if stats.drained_connections:
        print(
            f"drained {stats.drained_connections} connection(s) "
            "at shutdown",
            file=sys.stderr,
        )
    if stats.rate_limited or stats.shed:
        print(
            f"admission: {stats.rate_limited} rate-limited, "
            f"{stats.shed} shed",
            file=sys.stderr,
        )
    print(
        f"workers: {stats.workers} worker(s), "
        f"{stats.restarts} restart(s)",
        file=sys.stderr,
    )
    if args.gateway:
        print(
            f"gateway: {stats.gateway_slices} slice(s), "
            f"{stats.gateway_retries} retried",
            file=sys.stderr,
        )
    if failed:
        print("supervisor gave up: all workers crash-looping",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServeHandler, ServePolicy

    if args.sync and args.http:
        print("--sync and --http are mutually exclusive", file=sys.stderr)
        return 2
    multiworker = args.workers > 1 or args.gateway
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.gateway_slice < 1:
        print("--gateway-slice must be >= 1", file=sys.stderr)
        return 2
    if multiworker and not args.http:
        print("--workers/--gateway need --http", file=sys.stderr)
        return 2
    if multiworker and args.adapt:
        # Each forked child would drift and refit independently — N
        # silently diverging artifacts behind one port.  Adaptation
        # stays a single-process concern; multi-worker serves a pinned
        # artifact.
        print("--workers/--gateway and --adapt are mutually exclusive "
              "(per-child refits would diverge)", file=sys.stderr)
        return 2
    try:
        repository = RuleRepository.load(args.repository)
    except RepositoryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    registry = None
    reg_router = None
    reg_version = None
    if args.registry:
        try:
            registry, reg_repository, reg_router, reg_version = (
                _registry_pinned_artifact(args)
            )
            if reg_repository is not None:
                repository = reg_repository
        except RegistryError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.canary_fraction and not args.adapt:
        print("--canary-fraction needs --adapt (a canary shadows "
              "refit candidates)", file=sys.stderr)
        return 2
    router = None
    cluster = args.cluster
    if args.exemplars_dir:
        # Only the selected exemplar files are read (a name scan plus
        # ``exemplars`` reads per cluster), not the whole directory.
        router = _fit_router_from_paths(
            _page_paths(Path(args.exemplars_dir)),
            repository, args.exemplars, args.threshold,
        )
        if router is None:
            print(
                "exemplar directory has no hint-labelled pages",
                file=sys.stderr,
            )
            return 2
    elif reg_router is not None:
        # The pinned artifact ships its own fitted router.
        router = reg_router
    elif cluster:
        if cluster not in repository.clusters():
            print(
                f"unknown cluster {cluster!r}; repository has: "
                f"{', '.join(repository.clusters())}",
                file=sys.stderr,
            )
            return 2
    else:
        clusters = repository.clusters()
        if len(clusters) == 1:
            cluster = clusters[0]
        else:
            print(
                "repository has several clusters: pass --cluster or "
                "--exemplars-dir",
                file=sys.stderr,
            )
            return 2
    if args.max_inflight < 1:
        print("--max-inflight must be >= 1", file=sys.stderr)
        return 2
    adapter = None
    if args.adapt:
        adapter = _make_adapter(args, router)
        if adapter is None:
            return 2
    try:
        # One policy object, every front-end: the sync/async stdin
        # loops and the HTTP ingress inherit the same caps and
        # admission limits.
        policy = ServePolicy(
            max_decode_failures=_serve_decode_failure_cap(),
            max_inflight=args.max_inflight,
            rate_limit=args.rate_limit,
            rate_burst=args.rate_burst,
            max_concurrent_requests=args.max_concurrent,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    handler = ServeHandler(
        repository,
        router=None if adapter is not None else router,
        cluster=cluster or None,
        adapter=adapter,
        policy=policy,
        automaton=args.automaton,
        # Compiled once, here; the supervisor's forked children inherit
        # this handler (and the stamped pin) without recompiling.
        artifact_version=reg_version,
    )
    try:
        _attach_adapter_log(adapter, args)
    except OSError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if adapter is not None and (
            registry is not None or args.canary_fraction > 0
        ):
            from repro.service import CanaryController, wrapper_extractor

            deployer = CanaryController(
                adapter.router,
                repository,
                registry=registry,
                fraction=args.canary_fraction,
                window=args.canary_window,
                low_margin=args.drift_margin,
                extract=wrapper_extractor(handler.runtime),
                log=adapter.log,
                allow_findings=args.allow_findings,
            )
            deployer.ensure_baseline()
            adapter.deployer = deployer
        elif registry is not None and registry.pinned() is None:
            _publish_initial(
            registry, repository, router,
            allow_findings=args.allow_findings,
        )
    except LintGateError as exc:
        _print_lint_refusal(exc)
        return 2
    except (ValueError, RegistryError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    def _report_drift() -> None:
        if adapter is not None:
            print(
                f"drift: {adapter.drift_events} event(s), "
                f"{adapter.refits} refit(s)",
                file=sys.stderr,
            )
            deployer = adapter.deployer
            if deployer is not None:
                status = deployer.status()
                print(
                    f"registry: active "
                    f"{status['registry_version'] or '(unversioned)'}, "
                    f"shadow {status['shadow_version'] or '(none)'}, "
                    f"{status['canary_promotions']} promotion(s), "
                    f"{status['canary_rollbacks']} rollback(s)",
                    file=sys.stderr,
                )
            adapter.log.close()

    # The drift report (and the audit-log close behind it) must run on
    # *every* exit path — a session interrupted mid-stream still has to
    # leave a complete, flushed adaptation log behind.  The metrics
    # dump rides the same guarantee.
    try:
        if args.http and multiworker:
            return _serve_multiworker(handler, args)
        if args.http:
            return _serve_http(handler, args)
        return _serve_stdin(handler, args)
    finally:
        _report_drift()
        if args.metrics:
            _dump_metrics(args.metrics)


def _serve_stdin(handler, args) -> int:
    """The stdin front-ends (async by default, ``--sync`` loop)."""
    from repro.service import serve_async, serve_sync

    stdin = args.stdin if args.stdin is not None else sys.stdin
    stdout = args.stdout if args.stdout is not None else sys.stdout
    # Undecodable input bytes must surface as error records, not kill
    # the loop: where the stream supports it, decode troublesome bytes
    # to escapes (json.loads then rejects the line with a clean error).
    reconfigure = getattr(stdin, "reconfigure", None)
    if reconfigure is not None:
        try:
            reconfigure(errors="backslashreplace")
        except (ValueError, OSError):  # pragma: no cover - exotic stream
            pass
    if args.sync:
        stats = serve_sync(
            handler, stdin, stdout, on_output_closed=_serve_output_closed
        )
    else:
        try:
            stats = asyncio.run(serve_async(
                handler, stdin, stdout,
                on_output_closed=_serve_output_closed,
            ))
        except KeyboardInterrupt:
            # The interrupt hit the event loop itself rather than the
            # coroutine; in-flight output was flushed line-complete.
            print("interrupted; partial output is line-complete",
                  file=sys.stderr)
            return 130
    if stats.interrupted:
        print("interrupted; partial output is line-complete",
              file=sys.stderr)
        return 130
    if stats.gave_up:
        print("too many undecodable reads; giving up", file=sys.stderr)
        return 1
    print(f"served {stats.served} page(s)", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------- #
# Registry management
# ----------------------------------------------------------------------- #


def _open_registry(args):
    """The ``registry`` subcommands' store, or ``None`` (error printed)."""
    from repro.service import ArtifactRegistry

    try:
        return ArtifactRegistry(args.directory)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return None


def cmd_registry_list(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    if registry is None:
        return 2
    try:
        pinned = registry.pinned()
        ids = registry.version_ids()
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if not ids:
        print("registry is empty", file=sys.stderr)
        return 0
    for version in ids:
        try:
            manifest = registry.manifest(version)
        except RegistryError as exc:
            print(f"{version}  !! {exc}")
            continue
        marker = "*" if version == pinned else " "
        print(
            f"{marker} {version}  {manifest.created}  "
            f"{manifest.source:<7}  "
            f"parent={manifest.parent or '-'}  "
            f"clusters={','.join(manifest.clusters) or '-'}  "
            f"router={'yes' if manifest.routed else 'no'}"
        )
    return 0


def cmd_registry_show(args: argparse.Namespace) -> int:
    import json

    registry = _open_registry(args)
    if registry is None:
        return 2
    try:
        manifest = registry.manifest(args.version)
        payload = manifest.to_dict()
        if args.stats:
            # Compile the version exactly as a deploy would and attach
            # each cluster's compiler stats (trie sharing + automaton
            # shape) to the printed manifest.
            payload["compiler_stats"] = {
                cluster: wrapper.stats.as_dict()
                for cluster, wrapper in sorted(
                    registry.compile(args.version).items()
                )
            }
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_registry_diff(args: argparse.Namespace) -> int:
    import json

    registry = _open_registry(args)
    if registry is None:
        return 2
    try:
        diff = registry.diff(args.old, args.new)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(diff, indent=2, sort_keys=True))
    return 0


def cmd_registry_pin(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    if registry is None:
        return 2
    try:
        previous = registry.pinned()
        registry.pin(args.version)
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"pinned {args.version} (was {previous or '(none)'})")
    return 0


def cmd_registry_rollback(args: argparse.Namespace) -> int:
    registry = _open_registry(args)
    if registry is None:
        return 2
    try:
        previous = registry.pinned()
        manifest = registry.rollback()
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"pinned {manifest.version} (was {previous})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Statically analyze rule-set artifacts; exit 1 on gated findings.

    Targets are rule-set/artifact JSON files, cluster directories of
    them, and/or registry versions (``--registry``, every version
    unless ``--version`` narrows it).  Exit codes follow the compiler
    convention: 0 clean at the gate, 1 findings at or above the gate
    severity, 2 usage or I/O errors.
    """
    from repro.analysis import (
        analyze_path,
        analyze_registry,
        gate_findings,
        render_report,
        render_text,
    )

    if not args.paths and not args.registry:
        print(
            "nothing to lint: give rule-set paths and/or --registry DIR",
            file=sys.stderr,
        )
        return 2
    findings = []
    try:
        if args.registry:
            from repro.service import ArtifactRegistry

            registry = ArtifactRegistry(args.registry)
            versions = args.versions or None
            if versions:
                missing = [v for v in versions if not registry.exists(v)]
                if missing:
                    print(
                        f"no such version(s): {', '.join(missing)}",
                        file=sys.stderr,
                    )
                    return 2
            findings.extend(analyze_registry(registry, versions))
        for path in args.paths:
            target = Path(path)
            if not target.exists():
                print(f"no such file or directory: {path}", file=sys.stderr)
                return 2
            findings.extend(analyze_path(target))
    except RegistryError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    gated = gate_findings(findings, args.severity)
    if args.json:
        print(render_report(findings, gate=args.severity))
    else:
        text = render_text(findings)
        if text:
            print(text)
        print(
            f"lint: {len(findings)} finding(s), {len(gated)} at or "
            f"above {args.severity}",
            file=sys.stderr,
        )
    return 1 if gated else 0


# ----------------------------------------------------------------------- #
# Parser
# ----------------------------------------------------------------------- #


def _observability_arguments(parser) -> None:
    """``--progress`` / ``--metrics``, shared by batch and the shards."""
    parser.add_argument("--progress", type=int, default=0, metavar="N",
                        help="emit a JSONL progress line to stderr every "
                             "N pages (also every 10s while working; "
                             "0 disables)")
    parser.add_argument("--metrics", default="", metavar="PATH",
                        help="on exit, write the Prometheus text "
                             "exposition of this run's metrics here")


def _adaptation_arguments(parser) -> None:
    """The ``--adapt`` flag family shared by batch, serve and shard."""
    parser.add_argument("--adapt", action="store_true",
                        help="watch served traffic for drift and refit "
                             "the router online (needs a fitted router)")
    parser.add_argument("--drift-window", type=int, default=64,
                        help="observations per drift-detection window")
    parser.add_argument("--drift-threshold", type=float, default=None,
                        help="bad-signal fraction that trips a refit "
                             "(default: 0.5 per-cluster failures, "
                             "0.3 unroutable)")
    parser.add_argument("--drift-margin", type=float, default=0.0,
                        help="also count routed decisions with a "
                             "best-vs-runner-up margin below this as "
                             "drift signals (0 disables)")
    parser.add_argument("--adapt-spawn", action="store_true",
                        help="let a refit spawn a new cluster for an "
                             "unroutable cohort that resembles no "
                             "known profile")
    parser.add_argument("--adapt-log", default="",
                        help="JSONL audit log of drift/refit events "
                             "(shard commands append .shard-NNNN)")


def _registry_arguments(parser, canary: bool = False) -> None:
    """The ``--registry`` flag family (serve also gets the canary knobs)."""
    parser.add_argument("--registry", default="",
                        help="versioned artifact registry directory: "
                             "deploy its pinned version (an empty "
                             "registry is seeded with the artifact "
                             "this run would deploy)")
    parser.add_argument("--allow-findings", action="store_true",
                        help="publish artifacts past the lint gate "
                             "even with error-severity analyzer "
                             "findings (see docs/lint.md)")
    if canary:
        parser.add_argument("--canary-fraction", type=float, default=0.0,
                            help="fraction of served pages shadow-routed "
                                 "by a refit candidate before the "
                                 "promote/rollback verdict (0 promotes "
                                 "refits immediately; needs --adapt)")
        parser.add_argument("--canary-window", type=int, default=64,
                            help="paired shadow samples compared for a "
                                 "canary verdict")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="retrozilla",
        description="Semi-automated extraction of targeted data from web pages "
        "(Estiévenart et al., ICDE Workshops 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's worked example")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    generate = sub.add_parser("generate", help="write a synthetic site to disk")
    generate.add_argument("family", choices=["imdb", "shop", "news", "stocks"])
    generate.add_argument("output")
    generate.add_argument("--pages", type=int, default=30)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    cluster = sub.add_parser("cluster", help="cluster a directory of HTML files")
    cluster.add_argument("directory")
    cluster.add_argument("--show", type=int, default=5)
    cluster.set_defaults(func=cmd_cluster)

    build = sub.add_parser("build", help="build rules interactively")
    build.add_argument("directory")
    build.add_argument("components", nargs="+")
    build.add_argument("--cluster", default="cluster")
    build.add_argument("--repository", default="rules.json")
    build.add_argument("--sample-size", type=int, default=10)
    build.set_defaults(func=cmd_build)

    extract = sub.add_parser("extract", help="apply saved rules, emit XML")
    extract.add_argument("directory")
    extract.add_argument("--cluster", default="cluster")
    extract.add_argument("--repository", default="rules.json")
    extract.add_argument("--output", default="")
    extract.add_argument("--schema", default="")
    extract.set_defaults(func=cmd_extract)

    batch = sub.add_parser(
        "batch",
        help="serve a directory through the parallel extraction engine",
    )
    batch.add_argument("directory")
    batch.add_argument("--repository", default="rules.json")
    batch.add_argument("--jsonl", default="",
                       help="write records to this JSONL file "
                            "(default: stdout)")
    batch.add_argument("--xml-dir", default="",
                       help="write per-cluster Figure-5 XML documents here")
    batch.add_argument("--workers", type=int, default=2)
    batch.add_argument("--executor", choices=["thread", "process"],
                       default="thread")
    batch.add_argument("--chunk-size", type=int, default=16)
    batch.add_argument("--no-automaton", dest="automaton",
                       action="store_false",
                       help="compile per-rule tries instead of the "
                            "single-pass extraction automaton "
                            "(output is identical either way)")
    batch.add_argument("--transport", choices=["auto", "shm", "pickle"],
                       default="auto",
                       help="process-executor page transport: shared "
                            "memory when available (auto), required "
                            "(shm) or legacy pickling (pickle)")
    batch.add_argument("--route", choices=["auto", "hint"], default="auto",
                       help="auto: fit a signature router from labelled "
                            "exemplars; hint: trust filename hints")
    batch.add_argument("--threshold", type=float, default=0.5,
                       help="router confidence threshold")
    batch.add_argument("--exemplars", type=int, default=8,
                       help="exemplar pages per cluster for router fitting")
    _observability_arguments(batch)
    _adaptation_arguments(batch)
    _registry_arguments(batch)
    batch.set_defaults(func=cmd_batch)

    shard = sub.add_parser(
        "shard",
        help="multi-host batch execution: plan / run / merge",
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)

    shard_plan = shard_sub.add_parser(
        "plan", help="split a corpus into N deterministic shards"
    )
    shard_plan.add_argument("directory")
    shard_plan.add_argument("--shards", type=int, default=2)
    shard_plan.add_argument("--strategy", choices=["hash", "range"],
                            default="hash",
                            help="hash: stable hash of the file name; "
                                 "range: contiguous index ranges")
    shard_plan.add_argument("--output", default="shard-plan.json")
    shard_plan.set_defaults(func=cmd_shard_plan)

    def shard_worker_arguments(shard_parser) -> None:
        """Engine/router knobs shared by ``shard run`` and ``resume``."""
        shard_parser.add_argument("--plan", default="shard-plan.json")
        shard_parser.add_argument("--repository", default="rules.json")
        shard_parser.add_argument("--output-dir", default="shards")
        shard_parser.add_argument("--format", choices=["jsonl", "xml"],
                                  default="jsonl",
                                  help="jsonl: one record file; xml: a "
                                       "directory of per-cluster Figure-5 "
                                       "documents + .index sidecars")
        shard_parser.add_argument("--workers", type=int, default=2)
        shard_parser.add_argument("--executor",
                                  choices=["thread", "process"],
                                  default="thread")
        shard_parser.add_argument("--chunk-size", type=int, default=16)
        shard_parser.add_argument("--no-automaton", dest="automaton",
                                  action="store_false",
                                  help="compile per-rule tries instead "
                                       "of the single-pass automaton")
        shard_parser.add_argument("--transport",
                                  choices=["auto", "shm", "pickle"],
                                  default="auto",
                                  help="process-executor page transport")
        shard_parser.add_argument("--route", choices=["auto", "hint"],
                                  default="auto")
        shard_parser.add_argument("--threshold", type=float, default=0.5)
        shard_parser.add_argument("--exemplars", type=int, default=8)
        _observability_arguments(shard_parser)
        _adaptation_arguments(shard_parser)
        _registry_arguments(shard_parser)

    shard_run = shard_sub.add_parser(
        "run", help="extract one shard (JSONL or XML output + manifest)"
    )
    shard_run.add_argument("directory")
    shard_run.add_argument("--shard", type=int, required=True)
    shard_worker_arguments(shard_run)
    shard_run.set_defaults(func=cmd_shard_run)

    shard_resume = shard_sub.add_parser(
        "resume",
        help="re-run only the failed/missing shards of an output directory",
    )
    shard_resume.add_argument("directory")
    shard_worker_arguments(shard_resume)
    shard_resume.add_argument("--no-verify", action="store_true",
                              help="trust existing outputs without "
                                   "re-checking content digests")
    shard_resume.set_defaults(func=cmd_shard_resume)

    shard_merge = shard_sub.add_parser(
        "merge",
        help="mergesort shard outputs into one deterministic stream",
    )
    shard_merge.add_argument(
        "inputs", nargs="+",
        help="shard output directories and/or manifest files",
    )
    shard_merge.add_argument("--format", choices=["jsonl", "xml"],
                             default="jsonl",
                             help="what the shards were run with; xml "
                                  "merges per-cluster documents by their "
                                  ".index sidecars")
    shard_merge.add_argument("--output", default="",
                             help="merged JSONL file (default: stdout) or, "
                                  "with --format xml, the output directory")
    shard_merge.add_argument("--no-verify", action="store_true",
                             help="skip shard content digest checks")
    shard_merge.set_defaults(func=cmd_shard_merge)

    serve = sub.add_parser(
        "serve",
        help='online loop: {"url","html"} JSON lines in, records out',
    )
    serve.add_argument("--repository", default="rules.json")
    serve.add_argument("--cluster", default="",
                       help="serve everything with this cluster's rules")
    serve.add_argument("--exemplars-dir", default="",
                       help="directory of hint-named pages to fit the router")
    serve.add_argument("--threshold", type=float, default=0.5)
    serve.add_argument("--exemplars", type=int, default=8)
    serve.add_argument("--sync", action="store_true",
                       help="one-line-at-a-time loop instead of the "
                            "async front-end")
    serve.add_argument("--http", default="", metavar="HOST:PORT",
                       help="serve over HTTP instead of stdin "
                            "(POST /extract, streaming POST /batch, "
                            "GET /healthz, GET /metrics; port 0 picks "
                            "a free port)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="pre-fork N HTTP ingress children behind one "
                            "port (needs --http; SO_REUSEPORT kernel "
                            "balancing where available, one inherited "
                            "listener elsewhere)")
    serve.add_argument("--gateway", action="store_true",
                       help="the supervisor owns the public port and fans "
                            "POST /batch across the workers in fixed-size "
                            "slices, merged back in input order (needs "
                            "--http)")
    serve.add_argument("--gateway-slice", type=int, default=64,
                       metavar="LINES",
                       help="lines per gateway batch slice — the unit of "
                            "fan-out and crash re-run")
    serve.add_argument("--status-port", type=int, default=0,
                       help="--workers without --gateway: port for the "
                            "supervisor's aggregated /healthz and "
                            "/metrics (0 picks a free port; gateway mode "
                            "serves them on the main port)")
    serve.add_argument("--http-drain-timeout", type=float, default=30.0,
                       help="graceful-shutdown window: seconds in-flight "
                            "HTTP requests get to finish before their "
                            "connections are force-closed (size it for "
                            "the largest legitimate batch)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="async front-ends: concurrent pages in flight "
                            "(the memory/backpressure bound)")
    serve.add_argument("--rate-limit", type=float, default=0.0,
                       help="admission control: sustained requests/second "
                            "allowed per client before 429 responses "
                            "(0 disables)")
    serve.add_argument("--rate-burst", type=int, default=None,
                       help="token-bucket burst size for --rate-limit "
                            "(default: ceil of the rate, at least 1)")
    serve.add_argument("--max-concurrent", type=int, default=0,
                       help="load shedding: in-flight request cap before "
                            "503 responses (0 disables)")
    serve.add_argument("--metrics", default="", metavar="PATH",
                       help="on exit, write the Prometheus text "
                            "exposition of this run's metrics here "
                            "(--http serves it live on GET /metrics)")
    serve.add_argument("--no-automaton", dest="automaton",
                       action="store_false",
                       help="compile per-rule tries instead of the "
                            "single-pass extraction automaton")
    _adaptation_arguments(serve)
    _registry_arguments(serve, canary=True)
    serve.set_defaults(func=cmd_serve, stdin=None, stdout=None)

    registry = sub.add_parser(
        "registry",
        help="inspect and manage a versioned artifact registry",
    )
    registry_sub = registry.add_subparsers(
        dest="registry_command", required=True
    )

    r_list = registry_sub.add_parser(
        "list", help="every version, oldest first (* marks the pin)"
    )
    r_list.add_argument("directory")
    r_list.set_defaults(func=cmd_registry_list)

    r_show = registry_sub.add_parser(
        "show", help="one version's manifest as JSON"
    )
    r_show.add_argument("directory")
    r_show.add_argument("version")
    r_show.add_argument("--stats", action="store_true",
                        help="compile the version's wrappers and "
                             "include per-cluster compiler stats "
                             "(trie sharing and automaton shape)")
    r_show.set_defaults(func=cmd_registry_show)

    r_diff = registry_sub.add_parser(
        "diff", help="structural diff between two versions"
    )
    r_diff.add_argument("directory")
    r_diff.add_argument("old")
    r_diff.add_argument("new")
    r_diff.set_defaults(func=cmd_registry_diff)

    r_pin = registry_sub.add_parser(
        "pin", help="atomically point CURRENT at a version"
    )
    r_pin.add_argument("directory")
    r_pin.add_argument("version")
    r_pin.set_defaults(func=cmd_registry_pin)

    r_rollback = registry_sub.add_parser(
        "rollback",
        help="re-pin the current version's parent (undo a promote)",
    )
    r_rollback.add_argument("directory")
    r_rollback.set_defaults(func=cmd_registry_rollback)

    lint = sub.add_parser(
        "lint",
        help="statically analyze rule-set artifacts (RW error codes)",
        description="Walk rule-set files, cluster directories and/or "
                    "registry versions and report findings with stable "
                    "RW codes (docs/lint.md). Exit 0 when clean at the "
                    "gate severity, 1 on gated findings, 2 on usage or "
                    "I/O errors.",
    )
    lint.add_argument("paths", nargs="*",
                      help="rule-set/artifact JSON files or directories "
                           "of them")
    lint.add_argument("--registry", default="",
                      help="also lint versions of this registry "
                           "directory (integrity included)")
    lint.add_argument("--version", action="append", dest="versions",
                      metavar="VERSION",
                      help="limit --registry linting to this version "
                           "(repeatable; default: all versions)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable findings report "
                           "instead of text")
    lint.add_argument("--severity", default="warning",
                      choices=["info", "warning", "error"],
                      help="findings at or above this severity fail "
                           "the lint (default: warning)")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed its end; exit quietly with the
        # conventional SIGPIPE status instead of a traceback.  stdout is
        # already unusable, so detach it before the interpreter's
        # shutdown flush can raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
