"""repro — reproduction of *Semi-Automated Extraction of Targeted Data
from Web Pages* (Estiévenart, Meurisse, Hainaut, Thiran; IEEE ICDE
Workshops 2006).

The library implements the paper's full stack, bottom-up:

* :mod:`repro.dom` / :mod:`repro.html` — a tolerant HTML parser and DOM
  (the role Mozilla's engine plays for the original Retrozilla);
* :mod:`repro.xpath` — an XPath 1.0 engine (location formalism);
* :mod:`repro.core` — the contribution: page components, mapping rules,
  the semi-automated candidate/check/refine/record scenario, oracles,
  and the rule repository;
* :mod:`repro.clustering` — the page-cluster heuristics of Section 2.1;
* :mod:`repro.extraction` — extraction towards XML + XML Schema;
* :mod:`repro.sites` — deterministic synthetic web sites (the offline
  stand-in for imdb.com and the motivating applications);
* :mod:`repro.baselines` — RoadRunner-, EXALG- and LR-style comparators;
* :mod:`repro.evaluation` — metrics, convergence/drift/depth studies,
  and the Table-4 feature audit;
* :mod:`repro.workbench` — the GUI-equivalent session API;
* :mod:`repro.cli` — the ``retrozilla`` command-line tool.

Quickstart:
    >>> from repro import WorkbenchSession, make_paper_sample
    >>> session = WorkbenchSession(make_paper_sample(), cluster_name="imdb-movies")
    >>> rule = session.define_component("runtime", 0, "108 min")
    >>> rule.component.name
    'runtime'
"""

from repro.core import (
    Format,
    MappingRule,
    MappingRuleBuilder,
    Multiplicity,
    Optionality,
    PageComponent,
    RuleRepository,
    ScriptedOracle,
)
from repro.extraction import (
    ExtractionPipeline,
    ExtractionProcessor,
    PostProcessor,
    generate_xml_schema,
    write_cluster_xml,
)
from repro.clustering import PageClusterer
from repro.html import parse_html
from repro.sites import (
    WebPage,
    WebSite,
    generate_imdb_site,
    make_paper_sample,
)
from repro.workbench import WorkbenchSession
from repro.xpath import select, select_one

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "PageComponent",
    "MappingRule",
    "MappingRuleBuilder",
    "RuleRepository",
    "ScriptedOracle",
    "Optionality",
    "Multiplicity",
    "Format",
    # substrates
    "parse_html",
    "select",
    "select_one",
    # clustering + extraction
    "PageClusterer",
    "ExtractionPipeline",
    "ExtractionProcessor",
    "PostProcessor",
    "write_cluster_xml",
    "generate_xml_schema",
    # sites
    "WebPage",
    "WebSite",
    "generate_imdb_site",
    "make_paper_sample",
    # workbench
    "WorkbenchSession",
]
