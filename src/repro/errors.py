"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystem-specific errors
derive from intermediate classes (``HtmlParseError``, ``XPathError``, ...)
to allow finer-grained handling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class HtmlParseError(ReproError):
    """Raised for unrecoverable HTML parsing problems.

    The parser is tolerant by design (it mimics browser error recovery),
    so this is only raised for conditions that make building a tree
    impossible, such as a non-string input.
    """


class XPathError(ReproError):
    """Base class for XPath engine errors."""


class XPathSyntaxError(XPathError):
    """Raised when an XPath expression cannot be parsed.

    Attributes:
        expression: the offending XPath source text.
        position: character offset at which parsing failed.
    """

    def __init__(self, message: str, expression: str = "", position: int = -1):
        super().__init__(message)
        self.expression = expression
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.expression:
            pointer = ""
            if self.position >= 0:
                pointer = f" at offset {self.position}"
            return f"{base}{pointer} in {self.expression!r}"
        return base


class XPathEvaluationError(XPathError):
    """Raised when a syntactically valid expression cannot be evaluated."""


class XPathTypeError(XPathEvaluationError):
    """Raised when an XPath operand has the wrong type for an operation."""


class RuleError(ReproError):
    """Base class for mapping-rule errors."""


class InvalidComponentNameError(RuleError):
    """Raised when a component name violates the paper's EBNF grammar.

    The grammar (Section 2.3) is::

        name ::= [a-zA-Z]([a-zA-Z] | [-_] | [0-9])*
    """


class RuleValidationError(RuleError):
    """Raised when a mapping rule is structurally invalid."""


class RepositoryError(ReproError):
    """Raised for rule-repository persistence problems."""


class RefinementError(ReproError):
    """Raised when no refinement strategy can fix a failing candidate rule."""


class ExtractionError(ReproError):
    """Raised when the extraction processor cannot apply a rule."""


class ClusteringError(ReproError):
    """Raised for page-clustering failures (e.g. empty site)."""


class OracleError(ReproError):
    """Raised when an oracle cannot answer a selection/judgement request."""


class SiteGenerationError(ReproError):
    """Raised when a synthetic site generator receives invalid parameters."""


class RegistryError(ReproError):
    """Base class for versioned-artifact registry errors."""


class RegistryNotFoundError(RegistryError):
    """Raised when a requested registry version (or its parent) is absent."""


class RegistryCorruptError(RegistryError):
    """Raised when a registry file fails its integrity checks.

    Covers truncated manifests, artifact payloads whose content hash
    no longer matches the manifest (tampering or partial writes), and
    files that are not the JSON shape the registry wrote.
    """


class RegistryFormatError(RegistryError):
    """Raised for registry files written by a foreign/unsupported format."""


class LintGateError(RegistryError):
    """Raised when the publish-time lint gate refuses an artifact.

    Carries the error-severity findings that triggered the refusal so
    callers (CLI, canary controller) can render or log them; pass
    ``allow_findings=True`` to publish anyway.
    """

    def __init__(self, message: str, findings: tuple = ()):
        super().__init__(message)
        self.findings = tuple(findings)


class ShardError(ReproError):
    """Base class for shard planning/execution/merge errors."""


class ShardPlanError(ShardError):
    """Raised for invalid shard plans (bad parameters, corrupt files)."""


class ShardMergeError(ShardError):
    """Raised when shard outputs cannot be merged into one stream.

    Covers missing/duplicate/overlapping shards, manifest/plan
    mismatches, digest failures, and out-of-order shard files.
    """
