"""The Retrozilla workbench: a session API standing in for the GUI.

Section 5 describes the tool: sample pages loaded in browser tabs
(square 1 of Figure 6), a selection dialog producing a candidate rule
(square 2), a check table for visual validation (square 3), and a
control panel for refinement and recording that "permanently displays
on the fly the values matched by the mapping rule" (square 4).

:class:`WorkbenchSession` reproduces that interaction model
programmatically: tabs are the working sample, ``select`` +
``interpret`` build the candidate, ``check_table`` renders square 3,
``refine`` runs the strategy engine, ``record`` persists the rule.
Every action appends to a transcript so the session can be replayed or
displayed (the Figure-6 benchmark prints one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import Node
from repro.dom.traversal import find_text_node
from repro.errors import RuleError
from repro.core.builder import MappingRuleBuilder
from repro.core.checking import CheckReport, check_rule, render_check_table
from repro.core.oracle import Oracle, ScriptedOracle, Selection
from repro.core.refinement import RefinementTrace
from repro.core.repository import RuleRepository
from repro.core.rule import MappingRule
from repro.sites.page import WebPage


@dataclass
class TranscriptEntry:
    action: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.action}] {self.detail}"


@dataclass
class WorkbenchSession:
    """One Retrozilla session over a working sample.

    Args:
        sample: the pages open "in tabs".
        oracle: judgement provider for check tables; defaults to the
            scripted oracle (ground truth), which is what an attentive
            human would conclude by visual inspection.
        cluster_name: cluster the session addresses.
    """

    sample: Sequence[WebPage]
    oracle: Oracle = field(default_factory=ScriptedOracle)
    cluster_name: str = "cluster"
    repository: RuleRepository = field(default_factory=RuleRepository)
    transcript: list[TranscriptEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.sample:
            raise ValueError("a session needs at least one tab/page")
        self._builder = MappingRuleBuilder(
            self.sample,
            self.oracle,
            repository=self.repository,
            cluster_name=self.cluster_name,
            seed=0,
        )
        self._current_rule: Optional[MappingRule] = None
        self._current_trace: Optional[RefinementTrace] = None
        self._log("open", f"{len(self.sample)} page(s) loaded in tabs")

    # -- square 1: tabs -------------------------------------------------- #

    @property
    def tabs(self) -> list[str]:
        return [page.url for page in self.sample]

    def page(self, tab_index: int) -> WebPage:
        return self.sample[tab_index]

    # -- square 2: selection + interpretation ----------------------------- #

    def select(self, tab_index: int, visible_text: str) -> Node:
        """Point at a value by its visible text in one tab.

        Raises:
            RuleError: when the text is not visible on that page.
        """
        page = self.page(tab_index)
        # Only BODY content is visible in a browser tab; never select
        # inside <head>.
        scope = page.root_element.find_first("BODY") or page.root_element
        node = find_text_node(scope, visible_text)
        if node is None:
            raise RuleError(
                f"text {visible_text!r} not visible in tab {tab_index} "
                f"({page.url})"
            )
        self._log("select", f"{visible_text!r} in tab {tab_index}")
        return node

    def interpret(self, node: Node, component_name: str) -> MappingRule:
        """Name the selected value; a candidate rule is computed."""
        page = self._page_of(node)
        selection = Selection(page=page, nodes=(node,))
        candidate = self._builder.candidate_from_selection(
            component_name, selection
        )
        self._current_rule = candidate
        self._current_trace = None
        self._log(
            "interpret",
            f"component {component_name!r} -> location "
            f"{candidate.primary_location}",
        )
        return candidate

    # -- square 3: check table --------------------------------------------- #

    def check(self) -> CheckReport:
        """Apply the current rule to every tab (the tabular view)."""
        rule = self._require_rule()
        report = check_rule(rule, self.sample, self.oracle)
        self._log(
            "check",
            f"{report.correct_count}/{len(report.rows)} page(s) consistent",
        )
        return report

    def check_table(self) -> str:
        return render_check_table(self.check())

    # -- square 4: refinement + recording ------------------------------------#

    def refine(self) -> MappingRule:
        """Run the refinement engine until the check table is clean."""
        rule = self._require_rule()
        refined, report, trace = self._builder.engine.refine(rule, self.sample)
        self._current_rule = refined
        self._current_trace = trace
        strategies = ", ".join(trace.strategies_used) or "none needed"
        self._log("refine", f"strategies applied: {strategies}")
        if not report.is_valid:
            self._log("refine", "WARNING: rule still fails on some tabs")
        return refined

    def record(self) -> MappingRule:
        """Record the current rule in the repository (Section 3.5).

        Raises:
            RuleError: when the rule still fails on some sample page.
        """
        rule = self._require_rule()
        report = check_rule(rule, self.sample, self.oracle)
        if not report.is_valid:
            raise RuleError(
                f"rule for {rule.name!r} is not valid on the working sample; "
                "refine before recording"
            )
        self.repository.record(self.cluster_name, rule)
        self._log("record", f"rule for {rule.name!r} recorded")
        return rule

    def define_component(self, component_name: str, tab_index: int,
                         visible_text: str) -> MappingRule:
        """Convenience: select, interpret, refine and record in one call."""
        node = self.select(tab_index, visible_text)
        self.interpret(node, component_name)
        self.refine()
        return self.record()

    # -- semi-automated error recovery (Section 7) -------------------------- #

    def repair_component(
        self,
        component_name: str,
        failing_pages: Sequence[WebPage],
    ) -> MappingRule:
        """Repair a recorded rule from negative examples.

        The failing pages join the session's tabs (enlarging the working
        sample) and the refinement loop re-runs; the repaired rule
        replaces the recorded one.

        Raises:
            RuleError: when no strategy fixes the rule.
        """
        rule = self.repository.rule(self.cluster_name, component_name)
        for page in failing_pages:
            if page not in self.sample:
                self.sample = [*self.sample, page]
        self._builder = MappingRuleBuilder(
            self.sample,
            self.oracle,
            repository=self.repository,
            cluster_name=self.cluster_name,
            seed=0,
        )
        outcome = self._builder.repair_rule(rule, failing_pages)
        self._log(
            "repair",
            f"{component_name!r} with {len(failing_pages)} negative "
            f"example(s): {'repaired' if outcome.recorded else 'FAILED'}",
        )
        if not outcome.recorded or outcome.rule is None:
            raise RuleError(
                f"rule for {component_name!r} could not be repaired from "
                "the given negative examples"
            )
        self._current_rule = outcome.rule
        return outcome.rule

    # -- transcript ------------------------------------------------------------#

    def render_transcript(self) -> str:
        return "\n".join(str(entry) for entry in self.transcript)

    # -- internals ---------------------------------------------------------- #

    def _require_rule(self) -> MappingRule:
        if self._current_rule is None:
            raise RuleError("no candidate rule; select and interpret first")
        return self._current_rule

    def _page_of(self, node: Node) -> WebPage:
        root = node.root
        for page in self.sample:
            if page.document is root:
                return page
        raise RuleError("selected node does not belong to any open tab")

    def _log(self, action: str, detail: str) -> None:
        self.transcript.append(TranscriptEntry(action, detail))
