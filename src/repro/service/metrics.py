"""Production observability: metrics, admission control, progress.

Three small, dependency-free layers every entry point shares:

* **Metrics** — monotonic counters, gauges and fixed-bucket latency
  histograms (:class:`MetricsRegistry`), rendered in the Prometheus
  text exposition format (``GET /metrics`` on the HTTP ingress,
  ``--metrics PATH`` for batch/shard runs).  Every series the service
  layer emits is declared once in :data:`METRIC_SPECS`, so the
  reference table in ``docs/metrics.md`` can be generated from the
  same source of truth the registries instantiate from
  (:func:`render_metrics_table`) and a test can hold the two in sync.
* **Admission control** — per-client :class:`TokenBucket` rate limits
  and in-flight load shedding (:class:`AdmissionController`), the
  policy behind HTTP 429/503 + ``Retry-After`` responses.  Shed
  decisions are themselves counted.
* **Progress & cancellation** — structured JSONL progress lines for
  long batch/shard runs (:class:`ProgressEmitter`) and a cooperative
  :class:`CancellationToken` the runtime checks at chunk boundaries,
  so SIGINT drains in-flight work and checkpoints shard manifests
  instead of tearing output mid-record.

Instrumentation must never change output bytes or add measurable
latency: instruments are plain attribute calls guarded by one lock
each, and any component can be built with :data:`NULL_METRICS` to run
fully uninstrumented (what ``bench_metrics_overhead.py`` compares
against — the CI gate keeps the instrumented serve path at >= 0.95x
the uninstrumented one).
"""

from __future__ import annotations

import bisect
import json
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "CancellationToken",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "METRIC_SPECS",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "ProgressEmitter",
    "TokenBucket",
    "default_registry",
    "render_metrics_table",
]

#: Default latency histogram buckets (seconds) — wide enough for a
#: serve request (sub-millisecond to tens of seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fine-grained buckets for the routing stage, which completes in
#: microseconds — the default buckets would collapse it into one bin.
FINE_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.05, 0.25, 1.0,
)


# --------------------------------------------------------------------- #
# The metric catalogue (single source of truth for docs/metrics.md)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class MetricSpec:
    """One declared series: name, kind, labels and meaning.

    Every instrument the service layer registers comes from this
    catalogue (:meth:`MetricsRegistry.from_spec`), which is also what
    :func:`render_metrics_table` renders into ``docs/metrics.md`` — so
    the documentation cannot drift from the registered series without
    the sync test failing.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    labels: Tuple[str, ...]
    help: str
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS


METRIC_SPECS: Tuple[MetricSpec, ...] = (
    MetricSpec(
        "repro_pages_routed_total", "counter", ("cluster",),
        "Pages the runtime routed to a cluster with compiled rules.",
    ),
    MetricSpec(
        "repro_pages_unroutable_total", "counter", (),
        "Pages no cluster profile (or hint) matched.",
    ),
    MetricSpec(
        "repro_pages_skipped_total", "counter", (),
        "Pages routed to a cluster the repository has no rules for.",
    ),
    MetricSpec(
        "repro_pages_failed_total", "counter", ("cluster",),
        "Pages whose extraction raised (contained as error records).",
    ),
    MetricSpec(
        "repro_route_seconds", "histogram", (),
        "Routing-stage latency per page (seconds).",
        buckets=FINE_BUCKETS,
    ),
    MetricSpec(
        "repro_extract_seconds", "histogram", ("cluster",),
        "Extraction-stage worker latency per page (seconds).",
    ),
    MetricSpec(
        "repro_automaton_pages_total", "counter", ("cluster",),
        "Pages extracted through the single-pass automaton scan.",
    ),
    MetricSpec(
        "repro_chunks_cold_total", "counter", ("cluster",),
        "Chunks that paid worker wrapper-compile (warm-up) cost.",
    ),
    MetricSpec(
        "repro_transport_chunks_total", "counter", ("kind",),
        "Process-executor chunks shipped, by transport kind "
        "(shm or pickle).",
    ),
    MetricSpec(
        "repro_transport_bytes_total", "counter", ("kind",),
        "Page payload bytes shipped to process workers, by transport "
        "kind.",
    ),
    MetricSpec(
        "repro_shm_segments_active", "gauge", (),
        "Shared-memory segments currently staged, not yet released.",
    ),
    MetricSpec(
        "repro_request_seconds", "histogram", (),
        "Serve request wall latency per line, every front-end (seconds).",
    ),
    MetricSpec(
        "repro_requests_total", "counter", ("outcome",),
        "Serve requests by outcome (served or error).",
    ),
    MetricSpec(
        "repro_inflight_pages", "gauge", (),
        "Pages admitted to an async serve pipeline, not yet emitted.",
    ),
    MetricSpec(
        "repro_inflight_requests", "gauge", (),
        "Requests currently holding an admission-control slot.",
    ),
    MetricSpec(
        "repro_admission_rejected_total", "counter", ("reason",),
        "Requests refused by admission control "
        "(rate-limited => 429, saturated => 503).",
    ),
    MetricSpec(
        "repro_http_requests_total", "counter", ("endpoint", "status"),
        "HTTP requests by endpoint and response status.",
    ),
    MetricSpec(
        "repro_http_open_connections", "gauge", (),
        "Currently open HTTP connections.",
    ),
    MetricSpec(
        "repro_http_drained_connections_total", "counter", (),
        "Connections closed by graceful shutdown's drain path.",
    ),
    MetricSpec(
        "repro_drift_events_total", "counter", ("kind",),
        "Drift events raised by the adaptive layer, by trigger kind.",
    ),
    MetricSpec(
        "repro_refits_total", "counter", (),
        "Router refits performed in answer to drift events.",
    ),
    MetricSpec(
        "repro_canary_shadow_pages_total", "counter", (),
        "Pages shadow-routed by a staged canary candidate.",
    ),
    MetricSpec(
        "repro_canary_promotions_total", "counter", (),
        "Canary candidates promoted to the live router.",
    ),
    MetricSpec(
        "repro_canary_rollbacks_total", "counter", (),
        "Canary candidates rolled back with a logged reason.",
    ),
    MetricSpec(
        "repro_serve_workers_active", "gauge", (),
        "Supervisor ingress children currently alive.",
    ),
    MetricSpec(
        "repro_worker_restarts_total", "counter", ("worker",),
        "Supervisor child restarts after unexpected exits, per slot.",
    ),
    MetricSpec(
        "repro_worker_requests_total", "counter", ("worker",),
        "HTTP requests answered, per supervisor child slot.",
    ),
    MetricSpec(
        "repro_gateway_slices_total", "counter", ("outcome",),
        "Gateway batch slices by outcome (ok or retried).",
    ),
    MetricSpec(
        "repro_lint_findings_total", "counter", ("code",),
        "Analyzer findings surfaced by publish-time lint gates, by "
        "RW code (see docs/lint.md).",
    ),
)

_SPEC_BY_NAME: Dict[str, MetricSpec] = {
    spec.name: spec for spec in METRIC_SPECS
}


def render_metrics_table() -> str:
    """The ``docs/metrics.md`` reference table, straight from the specs.

    Returns a GitHub-flavoured Markdown table with one row per
    declared series; ``docs/metrics.md`` embeds this text verbatim and
    a test regenerates it on every run, so the reference can never
    drift from :data:`METRIC_SPECS`.
    """
    lines = [
        "| Metric | Type | Labels | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for spec in METRIC_SPECS:
        labels = ", ".join(f"`{label}`" for label in spec.labels) or "-"
        lines.append(
            f"| `{spec.name}` | {spec.kind} | {labels} | {spec.help} |"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #


def _format_value(value: float) -> str:
    """Prometheus sample-value rendering (integers without the ``.0``)."""
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_pairs(names: Sequence[str], values: Sequence[str]) -> str:
    return ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )


class Counter:
    """A monotonically increasing counter (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value

    def _samples(self, series: str) -> list[str]:
        return [f"{series} {_format_value(self._value)}"]


class Gauge:
    """A value that goes up and down (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """The current gauge value."""
        return self._value

    def _samples(self, series: str) -> list[str]:
        return [f"{series} {_format_value(self._value)}"]


class Histogram:
    """Fixed-bucket latency histogram (one labelled child).

    Buckets are cumulative in the rendered exposition (per the
    Prometheus format): ``le`` labels carry each upper bound plus the
    implicit ``+Inf``, alongside ``_sum`` and ``_count`` series.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    def _samples(self, series: str) -> list[str]:
        name, _, labels = series.partition("{")
        labels = labels[:-1]  # strip the closing brace, if any
        lines = []
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            prefix = f"{labels}," if labels else ""
            lines.append(
                f'{name}_bucket{{{prefix}le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        prefix = f"{labels}," if labels else ""
        lines.append(f'{name}_bucket{{{prefix}le="+Inf"}} {total}')
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{name}_sum{suffix} {_format_value(total_sum)}")
        lines.append(f"{name}_count{suffix} {total}")
        return lines


_CHILD_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labelled children.

    Label-less families proxy the child interface directly (``inc`` /
    ``set`` / ``observe``), so call sites never branch on whether a
    series carries labels.
    """

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._children: "OrderedDict[tuple, object]" = OrderedDict()
        if not spec.labels:
            # Materialise the default child eagerly so an untouched
            # series still renders (operators see an explicit 0, and
            # the docs sync test sees the series exists).
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.spec.kind == "histogram":
            return Histogram(self.spec.buckets)
        return _CHILD_KINDS[self.spec.kind]()

    def labels(self, *values: str):
        """The child for one label-value tuple (created on first use)."""
        if len(values) != len(self.spec.labels):
            raise ValueError(
                f"{self.spec.name} takes labels {self.spec.labels}, "
                f"got {values!r}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
        return child

    # -- label-less convenience ----------------------------------------- #

    def inc(self, amount: float = 1.0) -> None:
        """``inc`` on the label-less child (counters and gauges)."""
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        """``dec`` on the label-less child (gauges)."""
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        """``set`` on the label-less child (gauges)."""
        self.labels().set(value)

    def observe(self, value: float) -> None:
        """``observe`` on the label-less child (histograms)."""
        self.labels().observe(value)

    @property
    def value(self) -> float:
        """The label-less child's current value."""
        return self.labels().value

    def render(self) -> list[str]:
        """This family's exposition lines (HELP, TYPE, every sample)."""
        spec = self.spec
        lines = [
            f"# HELP {spec.name} {spec.help}",
            f"# TYPE {spec.name} {spec.kind}",
        ]
        with self._lock:
            children = list(self._children.items())
        for key, child in sorted(children):
            if key:
                series = (
                    f"{spec.name}{{{_label_pairs(spec.labels, key)}}}"
                )
            else:
                series = spec.name
            lines.extend(child._samples(series))
        return lines


class MetricsRegistry:
    """A family registry rendering the Prometheus text format.

    Thread-safe; families are created once per name and shared by
    every component registering against the same registry.  The
    process-wide default registry (:func:`default_registry`) is what
    CLI entry points and ``GET /metrics`` expose; tests and benchmarks
    build private registries (or :data:`NULL_METRICS`) for isolation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def register(self, spec: MetricSpec) -> MetricFamily:
        """The family for ``spec`` (created on first registration).

        Raises:
            ValueError: when a family of the same name exists with a
                different kind or label set — two call sites
                disagreeing about a series is a bug, not a merge.
        """
        with self._lock:
            family = self._families.get(spec.name)
            if family is None:
                family = self._families[spec.name] = MetricFamily(spec)
            elif (
                family.spec.kind != spec.kind
                or family.spec.labels != spec.labels
            ):
                raise ValueError(
                    f"metric {spec.name} re-registered as {spec.kind}"
                    f"{spec.labels}, was {family.spec.kind}"
                    f"{family.spec.labels}"
                )
            return family

    def from_spec(self, name: str) -> MetricFamily:
        """The family for a catalogued series name.

        Raises:
            KeyError: when ``name`` is not in :data:`METRIC_SPECS` —
            every service-layer series must be declared (and therefore
            documented) before it can be registered.
        """
        try:
            spec = _SPEC_BY_NAME[name]
        except KeyError:
            raise KeyError(
                f"{name} is not a declared metric "
                "(see METRIC_SPECS in repro.service.metrics)"
            ) from None
        return self.register(spec)

    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) an ad-hoc counter family."""
        return self.register(MetricSpec(name, "counter", tuple(labels), help))

    def gauge(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) an ad-hoc gauge family."""
        return self.register(MetricSpec(name, "gauge", tuple(labels), help))

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) an ad-hoc histogram family."""
        return self.register(
            MetricSpec(name, "histogram", tuple(labels), help, tuple(buckets))
        )

    def families(self) -> list[MetricFamily]:
        """Every registered family, name-sorted."""
        with self._lock:
            return [
                self._families[name] for name in sorted(self._families)
            ]

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """A do-nothing child/family: the uninstrumented fast path."""

    __slots__ = ()

    def labels(self, *values: str) -> "_NullInstrument":
        """Return self — every label set maps to the same no-op."""
        return self

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""

    def dec(self, amount: float = 1.0) -> None:
        """Discard the decrement."""

    def set(self, value: float) -> None:
        """Discard the assignment."""

    def observe(self, value: float) -> None:
        """Discard the observation."""

    @property
    def value(self) -> float:
        """Always 0."""
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """A registry whose instruments do nothing.

    Pass this wherever a component takes ``metrics=`` to run it fully
    uninstrumented — the baseline ``bench_metrics_overhead.py``
    measures the instrumented path against.
    """

    def register(self, spec: MetricSpec) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def from_spec(self, name: str) -> _NullInstrument:
        """Return the shared no-op instrument (name must be declared)."""
        _SPEC_BY_NAME[name]  # same KeyError contract as the real one
        return _NULL_INSTRUMENT

    def counter(self, name, help, labels=()) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name, help, labels=()) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name, help, labels=(), buckets=()) -> _NullInstrument:
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def families(self) -> list:
        """Always empty."""
        return []

    def render(self) -> str:
        """Always empty."""
        return ""


#: The shared do-nothing registry (``metrics=NULL_METRICS`` disables
#: instrumentation on any component).
NULL_METRICS = NullMetricsRegistry()

_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every component defaults to.

    CLI entry points and ``GET /metrics`` expose this one; components
    built with an explicit ``metrics=`` argument use that instead.
    """
    return _DEFAULT_REGISTRY


# --------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------- #


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, cap ``burst``.

    The standard shape: the bucket starts full, each admitted request
    takes one token, and tokens accrue continuously at ``rate`` until
    the bucket holds ``burst`` again — so a client may burst up to
    ``burst`` requests instantly, then sustain ``rate`` per second.

    Args:
        rate: tokens added per second (> 0).
        burst: bucket capacity (>= 1).
        clock: monotonic-seconds source (injectable for tests).

    >>> now = [0.0]
    >>> bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: now[0])
    >>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
    (True, True, False)
    >>> now[0] = 1.0  # one second later: exactly one token accrued
    >>> bucket.try_acquire()
    True
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(
                float(self.burst), self._tokens + elapsed * self.rate
            )
        self._updated = now

    def try_acquire(self) -> bool:
        """Take one token if available; never blocks."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until one token will be available (0.0 if one is)."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                return 0.0
            return (1.0 - self._tokens) / self.rate


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict: admitted, or refused with retry advice."""

    admitted: bool
    #: HTTP status a refusal maps to (429 rate-limited, 503 saturated).
    status: int = 0
    #: ``"rate-limited"`` or ``"saturated"`` when refused.
    reason: str = ""
    #: Seconds the client should wait before retrying (the
    #: ``Retry-After`` header, rounded up to whole seconds on the wire).
    retry_after: float = 0.0

    @property
    def retry_after_seconds(self) -> int:
        """The on-the-wire ``Retry-After`` value: whole seconds, ceil.

        Sub-second waits must round *up*, never truncate: a 429 with
        ``Retry-After: 0`` invites an instant retry storm from clients
        that honour the header literally.  The floor is therefore 1
        even when the bucket reports a 0.0 wait.
        """
        return max(1, math.ceil(self.retry_after))


#: Per-client token buckets kept before the oldest is evicted (an
#: evicted client simply starts over with a full bucket).
DEFAULT_MAX_CLIENTS = 1024


class AdmissionController:
    """Per-client rate limiting plus in-flight load shedding.

    The decision order is deliberate: a client over its own rate gets
    the client-specific 429 even while the server is also saturated —
    429 tells *that* client to slow down, 503 tells *every* client the
    server is full.

    Args:
        rate_limit: per-client admitted requests/second (0 disables
            rate limiting).
        rate_burst: per-client burst capacity (default: ``rate_limit``
            rounded up, minimum 1).
        max_concurrent: in-flight request bound across all clients
            (0 disables shedding).
        shed_retry_after: ``Retry-After`` seconds suggested on a 503
            (a 429's comes from the client's own bucket).
        max_clients: token buckets kept (LRU-evicted beyond this, so
            an abusive client sweep cannot grow memory unboundedly).
        metrics: registry for the rejection counter and in-flight
            gauge (default: the process-wide registry).
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        rate_limit: float = 0.0,
        rate_burst: Optional[int] = None,
        max_concurrent: int = 0,
        shed_retry_after: float = 1.0,
        max_clients: int = DEFAULT_MAX_CLIENTS,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_limit < 0:
            raise ValueError("rate_limit must be >= 0 (0 disables)")
        if max_concurrent < 0:
            raise ValueError("max_concurrent must be >= 0 (0 disables)")
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.rate_limit = float(rate_limit)
        if rate_burst is None:
            rate_burst = max(1, math.ceil(rate_limit)) if rate_limit else 1
        if rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")
        self.rate_burst = int(rate_burst)
        self.max_concurrent = int(max_concurrent)
        self.shed_retry_after = float(shed_retry_after)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._inflight = 0
        self._lock = threading.Lock()
        metrics = metrics if metrics is not None else default_registry()
        self._m_rejected = metrics.from_spec("repro_admission_rejected_total")
        self._m_inflight = metrics.from_spec("repro_inflight_requests")

    @property
    def inflight(self) -> int:
        """Requests currently holding an admission slot."""
        return self._inflight

    def _bucket_for(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self.rate_limit, self.rate_burst, clock=self._clock
                )
                self._buckets[client] = bucket
                if len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            return bucket

    def admit(self, client: str = "") -> AdmissionDecision:
        """Decide one request; an admitted one must be :meth:`release`\\ d.

        Returns an :class:`AdmissionDecision`; when ``admitted`` the
        in-flight slot is already reserved (call :meth:`release` when
        the request finishes, success or not).
        """
        if self.rate_limit > 0:
            bucket = self._bucket_for(client)
            if not bucket.try_acquire():
                self._m_rejected.labels("rate-limited").inc()
                return AdmissionDecision(
                    admitted=False,
                    status=429,
                    reason="rate-limited",
                    retry_after=bucket.retry_after(),
                )
        with self._lock:
            if self.max_concurrent and self._inflight >= self.max_concurrent:
                saturated = True
            else:
                saturated = False
                self._inflight += 1
        if saturated:
            self._m_rejected.labels("saturated").inc()
            return AdmissionDecision(
                admitted=False,
                status=503,
                reason="saturated",
                retry_after=self.shed_retry_after,
            )
        self._m_inflight.inc()
        return AdmissionDecision(admitted=True)

    def release(self) -> None:
        """Give back the slot an admitted request held."""
        with self._lock:
            self._inflight -= 1
        self._m_inflight.dec()


# --------------------------------------------------------------------- #
# Progress events & cooperative cancellation
# --------------------------------------------------------------------- #


class CancellationToken:
    """A cooperative stop signal the runtime checks at chunk boundaries.

    Thread- and signal-safe (a plain :class:`threading.Event` under
    the hood): a SIGINT handler calls :meth:`cancel`, the runtime's
    source loop sees :meth:`is_set`, stops admitting pages, drains
    what is in flight and reports the run as cancelled — output stays
    line-complete and shard manifests are checkpointed, never torn.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request a cooperative stop (idempotent)."""
        self._event.set()

    def is_set(self) -> bool:
        """Whether a stop has been requested."""
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        """Alias of :meth:`is_set` for report-style call sites."""
        return self._event.is_set()


class ProgressEmitter:
    """Periodic structured progress lines for long batch/shard runs.

    Callable with a :class:`~repro.service.runtime.RuntimeReport`
    (what ``StreamingRuntime.run(on_progress=...)`` expects); emits
    one compact JSON object per line, throttled by page count *and*
    wall clock so both fast and slow corpora report at a readable
    cadence.

    Args:
        stream: where lines go (an ``stderr``-like text stream).
        label: run identity carried on every line (``"batch"``,
            ``"shard-0003"``, ...).
        every_pages: emit when this many new pages were seen (>= 1).
        every_seconds: also emit when this much wall time passed
            since the last line (0 disables the time trigger).
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        stream,
        label: str = "batch",
        every_pages: int = 1000,
        every_seconds: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if every_pages < 1:
            raise ValueError("every_pages must be >= 1")
        self.stream = stream
        self.label = label
        self.every_pages = every_pages
        self.every_seconds = every_seconds
        self._clock = clock
        self._started = clock()
        self._last_pages = 0
        self._last_time = self._started
        self.emitted = 0

    def _line(self, report, done: bool) -> dict:
        payload = {
            "event": "progress",
            "label": self.label,
            "pages": report.total_pages,
            "served": report.pages_served,
            "unroutable": report.unroutable_count,
            "errors": report.errors_count,
            "elapsed": round(self._clock() - self._started, 3),
        }
        if done:
            payload["done"] = True
        if getattr(report, "cancelled", False):
            payload["cancelled"] = True
        return payload

    def _emit(self, report, done: bool = False) -> None:
        try:
            self.stream.write(
                json.dumps(self._line(report, done), sort_keys=True) + "\n"
            )
            self.stream.flush()
        except (OSError, ValueError):
            return  # a dying stderr must never kill the run
        self.emitted += 1
        self._last_pages = report.total_pages
        self._last_time = self._clock()

    def __call__(self, report) -> None:
        """Maybe emit one progress line (the runtime's hook)."""
        if report.total_pages - self._last_pages >= self.every_pages:
            self._emit(report)
            return
        if (
            self.every_seconds > 0
            and self._clock() - self._last_time >= self.every_seconds
            and report.total_pages > self._last_pages
        ):
            self._emit(report)

    def finish(self, report) -> None:
        """Emit the final line unconditionally (``"done": true``)."""
        self._emit(report, done=True)

    def announce_compile(self, stats_by_cluster: Dict[str, object]) -> None:
        """Emit one ``"event": "compile"`` line with per-cluster stats.

        ``stats_by_cluster`` maps cluster name to a
        :class:`~repro.service.compiler.CompilerStats` (anything with
        an ``as_dict()``); entry points call this once after wrapper
        compilation so operators watching ``--progress`` see the
        automaton/trie sharing the run starts with.
        """
        payload = {
            "event": "compile",
            "label": self.label,
            "clusters": {
                cluster: stats.as_dict()
                for cluster, stats in sorted(stats_by_cluster.items())
            },
        }
        try:
            self.stream.write(json.dumps(payload, sort_keys=True) + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            return  # a dying stderr must never kill the run
        self.emitted += 1


def parse_exposition(text: str) -> Dict[str, Dict[str, float]]:
    """Parse Prometheus text exposition into ``{name: {series: value}}``.

    A deliberately strict reader used by tests (schema checking) and
    by operators' one-off scripts: every non-comment line must be
    ``series value``; ``# HELP``/``# TYPE`` comments are validated to
    refer to series that actually appear.

    Raises:
        ValueError: on any line that is not valid exposition syntax.
    """
    samples: Dict[str, Dict[str, float]] = {}
    typed: Dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {line_number}: bad comment {line!r}")
            if parts[1] == "TYPE":
                typed[parts[2]] = parts[3]
            continue
        series, _, value_text = line.rpartition(" ")
        if not series:
            raise ValueError(f"line {line_number}: bad sample {line!r}")
        name = series.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
        if base not in typed:
            raise ValueError(f"line {line_number}: untyped series {name!r}")
        try:
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {line_number}: bad value {value_text!r}"
            ) from None
        samples.setdefault(base, {})[series] = value
    return samples


def merge_expositions(texts: Sequence[str]) -> str:
    """Sum several expositions into one fleet-wide exposition.

    The supervisor's aggregated ``GET /metrics`` is built from this:
    each ingress child renders its own registry, the parent sums every
    series point-wise (counters add, gauges add — "open connections"
    across the fleet *is* the sum — and histogram ``_bucket``/``_sum``/
    ``_count`` lines add like counters) and re-renders one text body.
    ``HELP``/``TYPE`` come from :data:`METRIC_SPECS` when the series is
    declared there, else from the first input that carried them.

    Raises:
        ValueError: when any input is not valid exposition text.
    """
    merged: Dict[str, Dict[str, float]] = {}
    typed: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    order: list[str] = []
    for text in texts:
        for line in text.splitlines():
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) == 4 and parts[1] == "TYPE":
                    typed.setdefault(parts[2], parts[3])
                elif len(parts) == 4 and parts[1] == "HELP":
                    helps.setdefault(parts[2], parts[3])
        for base, series_map in parse_exposition(text).items():
            if base not in merged:
                merged[base] = {}
                order.append(base)
            totals = merged[base]
            for series, value in series_map.items():
                totals[series] = totals.get(series, 0.0) + value
    lines = []
    for base in order:
        spec = _SPEC_BY_NAME.get(base)
        help_text = spec.help if spec else helps.get(base, base)
        kind = spec.kind if spec else typed.get(base, "untyped")
        lines.append(f"# HELP {base} {help_text}")
        lines.append(f"# TYPE {base} {kind}")
        for series in sorted(merged[base]):
            lines.append(f"{series} {_format_value(merged[base][series])}")
    return "\n".join(lines) + "\n" if lines else ""


def documented_names(table: str) -> list[str]:
    """Metric names found in a ``docs/metrics.md``-style table."""
    names = []
    for line in table.splitlines():
        if line.startswith("| `repro_"):
            names.append(line.split("`")[1])
    return names


def iter_specs() -> Iterable[MetricSpec]:
    """Every declared series spec (the docs sync test's anchor)."""
    return METRIC_SPECS
