"""Pre-fork multi-worker supervisor for the HTTP serving tier.

``serve --http --workers N`` puts every core of one box behind one
port.  The parent process loads the repository and compiles the
wrapper artifact *once* (the pinned registry version is stamped into
the shared :class:`~repro.service.serve.ServeHandler`), then forks N
ingress children that inherit the compiled artifact for free —
copy-on-write, no per-worker compile, no version skew.

Socket strategy, in preference order:

* ``SO_REUSEPORT`` — each child binds its own listening socket on the
  shared address and the kernel load-balances accepted connections
  across them.  The parent holds a bound (never listening) probe
  socket on the same address, so ``--http :0`` resolves one concrete
  port that stays reserved across child restarts without the probe
  ever stealing a connection.
* fork-and-inherit fallback — where ``SO_REUSEPORT`` is unavailable
  the parent binds and listens once and every child serves the
  inherited socket (accept contention instead of kernel balancing,
  but the same address semantics).

The supervisor owns the lifecycle: a watcher reaps dead children and
restarts them under bounded exponential backoff
(:func:`restart_backoff`, giving up after
:data:`MAX_CONSECUTIVE_FAILURES` rapid deaths of one slot); one
SIGTERM fans out to every child and drains the fleet; the first SIGINT
does the same (stop admitting everywhere), a second SIGINT aborts —
the single-process contract, fleet-wide.  The parent also serves an
aggregation endpoint: ``GET /healthz`` sums every child's health
payload and ``GET /metrics`` merges the children's expositions with
the supervisor's own series (``repro_serve_workers_active``,
``repro_worker_restarts_total``, per-child
``repro_worker_requests_total``).

Gateway mode (``--gateway``) inverts who owns the public port: the
children bind loopback-only and the parent listens on the public
address, fanning ``POST /batch`` bodies across workers in fixed-size
line slices (:func:`slice_body`).  Slice outputs are buffered whole
and streamed back in input order; a slice whose worker dies
mid-response is re-run from its
:class:`~repro.service.shard.SliceCheckpoint` on another worker, so
the merged stream is byte-identical to a single-process ``batch`` run
even across a worker crash.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import socket
import sys
import time
from typing import Dict, Optional

from repro.service.http import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_MAX_BODY_BYTES,
    HttpFrontEnd,
    HttpProtocolError,
    _REASONS,
    _error_body,
    _framed_body,
    _read_request_head,
    _read_whole_body,
    _response_head,
    _write_payload_response,
)
from repro.service.metrics import (
    AdmissionController,
    MetricsRegistry,
    merge_expositions,
    parse_exposition,
)
from repro.service.shard import SliceCheckpoint
from repro.service.sink import make_error_record

__all__ = [
    "DEFAULT_SLICE_LINES",
    "GatewayError",
    "MAX_CONSECUTIVE_FAILURES",
    "ServeSupervisor",
    "SupervisorStats",
    "restart_backoff",
    "reuseport_available",
    "slice_body",
]

#: Lines per gateway batch slice — the unit of fan-out, ordering and
#: crash re-run.  Small enough to balance across workers, large enough
#: to amortise one HTTP round-trip per slice.
DEFAULT_SLICE_LINES = 64

#: Re-runs one slice gets before the whole batch is declared failed.
MAX_SLICE_ATTEMPTS = 5

#: First-restart delay; doubles per consecutive rapid death.
RESTART_BACKOFF_BASE = 0.1

#: Restart delay ceiling (seconds).
RESTART_BACKOFF_CAP = 5.0

#: Consecutive rapid deaths of one slot before the supervisor stops
#: restarting it (a child that cannot come up is a config bug, not a
#: transient — backoff must not mask it forever).
MAX_CONSECUTIVE_FAILURES = 8

#: A child that survived this long resets its slot's failure streak.
STABLE_SECONDS = 5.0

#: Parent poll interval for ``waitpid(WNOHANG)`` reaping.
_REAP_POLL_SECONDS = 0.1


def reuseport_available() -> bool:
    """Whether this platform accepts ``SO_REUSEPORT`` on TCP sockets.

    Linux >= 3.9 and the modern BSDs do; elsewhere the supervisor
    falls back to one inherited listening socket.
    """
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    except OSError:
        return False
    finally:
        probe.close()
    return True


def restart_backoff(failures: int) -> float:
    """Delay before restart attempt ``failures`` (1-based), capped.

    0.1s, 0.2s, 0.4s ... :data:`RESTART_BACKOFF_CAP`: fast enough that
    a transient crash barely dents capacity, slow enough that a
    crash-looping child cannot busy-spin the supervisor.
    """
    return min(
        RESTART_BACKOFF_CAP,
        RESTART_BACKOFF_BASE * (2 ** max(0, failures - 1)),
    )


def slice_body(data: bytes, slice_lines: int) -> list[SliceCheckpoint]:
    """Split one ``/batch`` body into line-aligned, re-runnable slices.

    The slices partition ``data`` exactly (raw bytes, newlines
    included; a final unterminated line rides in the last slice), so
    each worker sees precisely the lines a single-process run would
    have seen in that window — the foundation of the gateway's
    byte-identity guarantee.
    """
    if slice_lines < 1:
        raise ValueError("slice_lines must be >= 1")
    slices: list[SliceCheckpoint] = []
    start = 0
    line_start = 0
    while start < len(data):
        end = start
        lines = 0
        while lines < slice_lines and end < len(data):
            newline = data.find(b"\n", end)
            end = len(data) if newline < 0 else newline + 1
            lines += 1
        slices.append(SliceCheckpoint(
            index=len(slices), start_line=line_start, lines=lines,
            payload=data[start:end],
        ))
        line_start += lines
        start = end
    return slices


class GatewayError(Exception):
    """A gateway batch could not be completed (workers gone/failing)."""


@dataclasses.dataclass
class SupervisorStats:
    """What one supervised serve session did, fleet-wide."""

    workers: int = 0
    restarts: int = 0
    #: Summed from the children's exit reports (clean exits only — a
    #: SIGKILLed child takes its session counters with it).
    connections: int = 0
    requests: int = 0
    pages: int = 0
    served: int = 0
    protocol_errors: int = 0
    rate_limited: int = 0
    shed: int = 0
    drained_connections: int = 0
    gateway_slices: int = 0
    gateway_retries: int = 0


class _Child:
    """Parent-side book-keeping for one ingress child."""

    def __init__(self, slot: int, pid: int, read_fd: int,
                 failures: int = 0) -> None:
        self.slot = slot
        self.pid: Optional[int] = pid
        self.read_fd: Optional[int] = read_fd
        self.buffer = bytearray()
        self.started = time.monotonic()
        self.failures = failures
        self.given_up = False
        self.ready = False
        self.port: Optional[int] = None
        self.control_port: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.pid is not None


class ServeSupervisor:
    """The ``serve --http --workers N`` parent process.

    Args:
        handler: the pre-built, pre-compiled
            :class:`~repro.service.serve.ServeHandler` every child
            inherits through ``fork`` — compile once, serve N times.
        host, port: the public bind address (port 0 picks one).
        workers: ingress children to run.
        gateway: parent owns the public port and fans ``POST /batch``
            across workers in deterministic slices; children bind
            loopback-only.
        slice_lines: lines per gateway slice.
        status_port: non-gateway mode only — where the parent serves
            the aggregated ``/healthz`` and ``/metrics`` (0 picks a
            free port; gateway mode serves them on the public port).
        max_body_bytes, drain_timeout: per-child front-end knobs,
            mirroring :class:`~repro.service.http.HttpFrontEnd`.
        metrics: the supervisor's own registry (restart counters, the
            active-workers gauge, gateway slice counters).  Kept
            *separate* from the handler's registry on purpose: the
            children inherited a fork-time copy of that one, so the
            parent's aggregation must never render it twice.
    """

    def __init__(
        self,
        handler,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        gateway: bool = False,
        slice_lines: int = DEFAULT_SLICE_LINES,
        status_port: int = 0,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if slice_lines < 1:
            raise ValueError("slice_lines must be >= 1")
        self.handler = handler
        self.host = host
        self.port = port
        self.workers = workers
        self.gateway = gateway
        self.slice_lines = slice_lines
        self.status_port = status_port
        self.max_body_bytes = max_body_bytes
        self.drain_timeout = drain_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_workers = self.metrics.from_spec("repro_serve_workers_active")
        self._m_restarts = self.metrics.from_spec(
            "repro_worker_restarts_total"
        )
        self._m_slices = self.metrics.from_spec("repro_gateway_slices_total")
        policy = handler.policy
        # Gateway mode: admission is enforced here, at the public
        # ingress, with the handler's own policy — the children's
        # controllers are disabled so the parent's slice fan-out is
        # never rate-limited against itself.
        self._admission = AdmissionController(
            rate_limit=policy.rate_limit,
            rate_burst=policy.rate_burst,
            max_concurrent=policy.max_concurrent_requests,
            metrics=self.metrics,
        )
        self.stats = SupervisorStats(workers=workers)
        self.mode = ""  # "reuseport" | "inherit" | "gateway"
        self.failed = False
        self._children: Dict[int, _Child] = {}
        self._family = socket.AF_INET
        self._bind_addr: tuple = (host, port)
        self._probe_sock: Optional[socket.socket] = None
        self._shared_sock: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._watcher: Optional[asyncio.Task] = None
        self._restart_tasks: set[asyncio.Task] = set()
        #: fds of the parent's live connections (accepted clients and
        #: in-flight requests to children).  A restart fork would make
        #: the new child inherit copies of them, and a client waiting
        #: for the parent's FIN would then hang until that child died —
        #: every fresh child closes these first thing instead.
        self._client_fds: set[int] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._stopping = False
        self._aborted = False
        self._shut_down = False
        self._interrupts = 0
        self._rr = 0

    # ------------------------------------------------------------------ #
    # Sockets
    # ------------------------------------------------------------------ #

    def _resolve_bind(self) -> None:
        """Resolve the public address synchronously, pre-fork.

        Children re-bind the resolved numeric address; resolving once
        here keeps ``getaddrinfo`` (and the DNS executor threads
        asyncio would spawn for it) out of every fork path.
        """
        info = socket.getaddrinfo(
            self.host or None, self.port, type=socket.SOCK_STREAM,
            flags=socket.AI_PASSIVE,
        )
        self._family, _, _, _, sockaddr = info[0]
        self._bind_addr = sockaddr

    def _bind_sockets(self) -> None:
        self._resolve_bind()
        if self.gateway:
            self.mode = "gateway"
            self._listen_sock = self._make_listener(self._bind_addr)
            self.port = self._listen_sock.getsockname()[1]
            self.status_port = self.port
            return
        if reuseport_available():
            self.mode = "reuseport"
            # Bound but never listening: reserves the port (and keeps
            # it stable across child restarts) without ever joining
            # the accept distribution group.
            probe = socket.socket(self._family, socket.SOCK_STREAM)
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            probe.bind(self._bind_addr)
            self._probe_sock = probe
            self.port = probe.getsockname()[1]
            self._bind_addr = probe.getsockname()
        else:
            self.mode = "inherit"
            self._shared_sock = self._make_listener(self._bind_addr)
            self.port = self._shared_sock.getsockname()[1]
        status_addr = (self._bind_addr[0], self.status_port)
        self._listen_sock = self._make_listener(status_addr)
        self.status_port = self._listen_sock.getsockname()[1]

    def _make_listener(self, sockaddr) -> socket.socket:
        sock = socket.socket(self._family, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(sockaddr)
        sock.listen(128)
        sock.setblocking(False)
        return sock

    def _make_reuseport_socket(self) -> socket.socket:
        sock = socket.socket(self._family, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind(self._bind_addr)
        sock.listen(128)
        sock.setblocking(False)
        return sock

    # ------------------------------------------------------------------ #
    # Children
    # ------------------------------------------------------------------ #

    def _spawn(self, slot: int, failures: int = 0) -> None:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - runs in the forked child
            # -- child ------------------------------------------------- #
            os.close(read_fd)
            self._child_reset(write_fd)
            self._child_main(slot, write_fd)  # never returns
            os._exit(70)  # pragma: no cover - _child_main always exits
        # -- parent ---------------------------------------------------- #
        os.close(write_fd)
        os.set_blocking(read_fd, False)
        child = _Child(slot=slot, pid=pid, read_fd=read_fd,
                       failures=failures)
        self._children[slot] = child
        assert self._loop is not None
        self._loop.add_reader(read_fd, self._on_status_data, child)

    def _child_reset(self, write_fd: int) -> None:  # pragma: no cover
        """Strip the forked child of the parent's runtime plumbing.

        Runs only in the just-forked child, where the coverage
        tracer cannot report (``os._exit`` skips its atexit save)
        — exercised by the subprocess integration tests instead.
        """
        for other in self._children.values():
            if other.read_fd is not None:
                try:
                    os.close(other.read_fd)
                except OSError:  # pragma: no cover - already closed
                    pass
        for fd in self._client_fds:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
        self._client_fds = set()
        if self._listen_sock is not None:
            self._listen_sock.close()
        if self._probe_sock is not None:
            self._probe_sock.close()
        try:
            signal.set_wakeup_fd(-1)
        except (ValueError, OSError):  # pragma: no cover - no wakeup fd
            pass
        for signum in (signal.SIGINT, signal.SIGTERM, signal.SIGCHLD):
            signal.signal(signum, signal.SIG_DFL)
        # The fork happened inside the parent's running loop; clear the
        # inherited "a loop is running" marker so the child can run its
        # own fresh loop.
        try:
            asyncio.events._set_running_loop(None)
        except AttributeError:  # pragma: no cover - private API moved
            pass
        asyncio.set_event_loop(None)

    def _child_main(self, slot: int, write_fd: int) -> None:  # pragma: no cover
        status = os.fdopen(write_fd, "w", buffering=1)
        try:
            code = asyncio.run(self._child_serve(slot, status))
        except BaseException:  # noqa: BLE001 - child must never return
            import traceback

            traceback.print_exc(file=sys.stderr)
            os._exit(70)
        os._exit(code)

    async def _child_serve(self, slot: int, status) -> int:  # pragma: no cover
        host, port = self._bind_addr[0], self.port
        sock = None
        if self.mode == "inherit":
            sock = self._shared_sock
        elif self.mode == "reuseport":
            sock = self._make_reuseport_socket()
        else:  # gateway children are loopback-only; the parent fronts
            host, port = "127.0.0.1", 0
        if self.gateway:
            # Admission moved to the parent's public ingress; a child
            # must admit every slice the gateway sends it.
            self.handler.admission = AdmissionController(
                metrics=self.handler.metrics
            )
        front = HttpFrontEnd(
            self.handler,
            host=host,
            port=port,
            max_body_bytes=self.max_body_bytes,
            drain_timeout=self.drain_timeout,
            sock=sock,
            worker_id=str(slot),
        )
        await front.start()
        control_port = await front.add_listener("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, front.stop)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # pragma: no cover - platform without loop signals
        status.write(json.dumps({
            "event": "ready", "slot": slot, "pid": os.getpid(),
            "port": front.port, "control_port": control_port,
        }) + "\n")
        await front.wait_stopped()
        stats = await front.shutdown()
        status.write(json.dumps({
            "event": "exit", "slot": slot,
            "stats": dataclasses.asdict(stats),
        }) + "\n")
        status.close()
        return 0

    # ------------------------------------------------------------------ #
    # Status pipe + reaping
    # ------------------------------------------------------------------ #

    def _on_status_data(self, child: _Child) -> None:
        assert self._loop is not None
        if child.read_fd is None:  # pragma: no cover - late callback
            return
        try:
            data = os.read(child.read_fd, 65536)
        except BlockingIOError:  # pragma: no cover - spurious wakeup
            return
        except OSError:
            data = b""
        if not data:
            self._loop.remove_reader(child.read_fd)
            os.close(child.read_fd)
            child.read_fd = None
            return
        child.buffer.extend(data)
        while True:
            newline = child.buffer.find(b"\n")
            if newline < 0:
                break
            raw = bytes(child.buffer[:newline])
            del child.buffer[:newline + 1]
            try:
                event = json.loads(raw)
            except json.JSONDecodeError:  # pragma: no cover - noise
                continue
            self._on_child_event(child, event)

    def _on_child_event(self, child: _Child, event: dict) -> None:
        if event.get("event") == "ready":
            child.ready = True
            child.port = event.get("port")
            child.control_port = event.get("control_port")
            self._update_workers_gauge()
        elif event.get("event") == "exit":
            stats = event.get("stats") or {}
            for field in (
                "connections", "requests", "pages", "served",
                "protocol_errors", "rate_limited", "shed",
                "drained_connections",
            ):
                setattr(self.stats, field,
                        getattr(self.stats, field)
                        + int(stats.get(field, 0)))

    def _update_workers_gauge(self) -> None:
        self._m_workers.set(sum(
            1 for child in self._children.values()
            if child.ready and child.alive
        ))

    async def _watch(self) -> None:
        while True:
            await asyncio.sleep(_REAP_POLL_SECONDS)
            for child in list(self._children.values()):
                if child.pid is None:
                    continue
                try:
                    pid, _ = os.waitpid(  # sc: ok (WNOHANG)
                        child.pid, os.WNOHANG
                    )
                except ChildProcessError:  # pragma: no cover - raced
                    pid = child.pid
                if pid == 0:
                    continue
                self._reap(child)
            if self._stopping and not any(
                child.alive for child in self._children.values()
            ):
                assert self._stopped is not None
                self._stopped.set()
                return

    def _reap(self, child: _Child) -> None:
        child.pid = None
        child.ready = False
        self._update_workers_gauge()
        if self._stopping:
            return
        lived = time.monotonic() - child.started
        child.failures = 1 if lived >= STABLE_SECONDS else child.failures + 1
        if child.failures > MAX_CONSECUTIVE_FAILURES:
            child.given_up = True
            print(
                f"supervisor: worker {child.slot} crash-looping; "
                f"giving up after {MAX_CONSECUTIVE_FAILURES} restarts",
                file=sys.stderr,
            )
            if all(c.given_up for c in self._children.values()):
                self.failed = True
                self._begin_drain()
            return
        self.stats.restarts += 1
        self._m_restarts.labels(str(child.slot)).inc()
        task = asyncio.ensure_future(
            self._restart_later(child.slot, child.failures)
        )
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _restart_later(self, slot: int, failures: int) -> None:
        await asyncio.sleep(restart_backoff(failures))
        if not self._stopping:
            self._spawn(slot, failures=failures)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind, fork the fleet, and start aggregating (non-blocking)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._bind_sockets()
        for slot in range(self.workers):
            self._spawn(slot)
        self._watcher = asyncio.ensure_future(self._watch())
        self._server = await asyncio.start_server(
            self._on_connection, sock=self._listen_sock
        )
        await self._wait_ready()

    async def _wait_ready(self, timeout: float = 60.0) -> None:
        assert self._loop is not None
        deadline = self._loop.time() + timeout
        while self._loop.time() < deadline:
            children = self._children.values()
            if all(c.ready for c in children if c.alive) and any(
                c.ready for c in children
            ):
                return
            if self._stopping or self.failed:
                return
            await asyncio.sleep(0.05)
        raise TimeoutError("supervisor children failed to come up")

    def stop(self) -> None:
        """Begin a fleet-wide graceful drain (safe from any thread)."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:  # pragma: no cover - loop already gone
            pass

    def interrupt(self) -> None:
        """SIGINT contract: first call drains, the second aborts."""
        self._interrupts += 1
        if self._interrupts == 1:
            self._begin_drain()
        else:
            self._abort()

    def _begin_drain(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        for task in self._restart_tasks:
            task.cancel()
        for child in self._children.values():
            if child.alive:
                try:
                    os.kill(child.pid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover - raced
                    pass
        if not any(child.alive for child in self._children.values()):
            if self._stopped is not None:
                self._stopped.set()

    def _abort(self) -> None:
        self._aborted = True
        self._stopping = True
        for child in self._children.values():
            if child.alive:
                try:
                    os.kill(child.pid, signal.SIGKILL)
                except ProcessLookupError:  # pragma: no cover - raced
                    pass
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until the fleet has drained (the CLI's signal path)."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def shutdown(self) -> SupervisorStats:
        """Tear everything down and return the fleet-wide stats."""
        if self._shut_down:
            return self.stats
        self._shut_down = True
        self._begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Give the children the drain window, then force the issue.
        assert self._loop is not None
        deadline = self._loop.time() + self.drain_timeout + 5.0
        while any(c.alive for c in self._children.values()):
            if self._loop.time() > deadline:
                self._abort()
                deadline = self._loop.time() + 5.0
            await asyncio.sleep(_REAP_POLL_SECONDS)
            for child in list(self._children.values()):
                if child.pid is None:
                    continue
                try:
                    pid, _ = os.waitpid(  # sc: ok (WNOHANG)
                        child.pid, os.WNOHANG
                    )
                except ChildProcessError:
                    pid = child.pid
                if pid:
                    self._reap(child)
        if self._watcher is not None:
            self._watcher.cancel()
            try:
                await self._watcher
            except asyncio.CancelledError:
                pass
            self._watcher = None
        for task in list(self._restart_tasks):
            task.cancel()
        for child in self._children.values():
            if child.read_fd is not None:
                # Pull any final exit report still sitting in the pipe.
                self._on_status_data(child)
                if child.read_fd is not None:
                    self._loop.remove_reader(child.read_fd)
                    os.close(child.read_fd)
                    child.read_fd = None
        for sock in (self._probe_sock, self._shared_sock):
            if sock is not None:
                sock.close()
        self._probe_sock = None
        self._shared_sock = None
        if self._stopped is not None:
            self._stopped.set()
        return self.stats

    # ------------------------------------------------------------------ #
    # Parent HTTP surface (aggregation + gateway)
    # ------------------------------------------------------------------ #

    async def _on_connection(self, reader, writer) -> None:
        fd = self._track_fd(writer)
        try:
            while not self._stopping:
                request = await _read_request_head(reader)
                if request is None:
                    break
                try:
                    keep_alive = await self._dispatch(
                        request, reader, writer
                    )
                except HttpProtocolError as exc:
                    self._write_refusal(writer, exc)
                    break
                await writer.drain()
                if not keep_alive:
                    break
        except HttpProtocolError as exc:
            self._write_refusal(writer, exc)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client hung up mid-exchange
        finally:
            self._client_fds.discard(fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _track_fd(self, writer) -> int:
        sock = writer.get_extra_info("socket")
        try:
            fd = sock.fileno() if sock is not None else -1
        except OSError:  # pragma: no cover - already closed
            fd = -1
        if fd >= 0:
            self._client_fds.add(fd)
        return fd

    @staticmethod
    def _write_refusal(writer, exc: HttpProtocolError) -> None:
        body = _error_body(
            f"{exc.status} {_REASONS[exc.status]}: {exc.detail}"
        )
        writer.write(_response_head(exc.status, [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
        ]) + body)

    async def _dispatch(self, request, reader, writer) -> bool:
        route = (request.method, request.target)
        if route == ("GET", "/healthz"):
            return await self._handle_healthz(request, reader, writer)
        if route == ("GET", "/metrics"):
            return await self._handle_metrics(request, reader, writer)
        if self.gateway and route == ("POST", "/batch"):
            return await self._admitted(
                request, reader, writer, self._handle_batch
            )
        if self.gateway and route == ("POST", "/extract"):
            return await self._admitted(
                request, reader, writer, self._handle_extract
            )
        if request.target in ("/healthz", "/metrics"):
            raise HttpProtocolError(
                405, f"{request.target} accepts only GET"
            )
        if self.gateway and request.target in ("/extract", "/batch"):
            raise HttpProtocolError(
                405, f"{request.target} accepts only POST"
            )
        raise HttpProtocolError(404, f"no such endpoint {request.target!r}")

    @staticmethod
    def _client_of(writer) -> str:
        peername = writer.get_extra_info("peername")
        if isinstance(peername, (tuple, list)) and peername:
            return str(peername[0])
        return str(peername) if peername else "unknown"

    async def _admitted(self, request, reader, writer, endpoint) -> bool:
        decision = self._admission.admit(self._client_of(writer))
        if not decision.admitted:
            if decision.status == 429:
                self.stats.rate_limited += 1
            else:
                self.stats.shed += 1
            try:
                body = _framed_body(request, reader, self.max_body_bytes)
                await _read_whole_body(body, self.max_body_bytes)
            except HttpProtocolError:
                pass  # the refusal outranks the framing violation
            retry_after = decision.retry_after_seconds
            payload = _error_body(
                f"{decision.status} {_REASONS[decision.status]}: "
                f"{decision.reason}; retry after {retry_after}s"
            )
            _write_payload_response(
                writer, decision.status, payload, False,
                extra_headers=(("Retry-After", str(retry_after)),),
            )
            return False
        try:
            return await endpoint(request, reader, writer)
        finally:
            self._admission.release()

    async def _consume_stray_body(self, request, reader) -> None:
        if (
            "content-length" in request.headers
            or "transfer-encoding" in request.headers
        ):
            body = _framed_body(request, reader, self.max_body_bytes)
            await _read_whole_body(body, self.max_body_bytes)

    # -- aggregation --------------------------------------------------- #

    def _ready_children(self) -> list[_Child]:
        return [
            self._children[slot]
            for slot in sorted(self._children)
            if self._children[slot].ready and self._children[slot].alive
        ]

    async def _gather_children(self, path: str) -> Dict[int, bytes]:
        raw = (
            f"GET {path} HTTP/1.1\r\nHost: supervisor\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        bodies: Dict[int, bytes] = {}
        for child in self._ready_children():
            try:
                status, _, body = await asyncio.wait_for(
                    self._child_request(child, raw), timeout=5.0
                )
            except (OSError, ValueError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError):
                continue
            if status == 200:
                bodies[child.slot] = body
        return bodies

    async def _handle_healthz(self, request, reader, writer) -> bool:
        await self._consume_stray_body(request, reader)
        payloads: Dict[int, dict] = {}
        for slot, body in (await self._gather_children("/healthz")).items():
            try:
                payloads[slot] = json.loads(body)
            except json.JSONDecodeError:  # pragma: no cover - noise
                continue
        expected = [c for c in self._children.values() if not c.given_up]
        healthy = sum(
            1 for p in payloads.values() if p.get("status") == "ok"
        )
        if self._stopping:
            status = "closing"
        elif healthy == len(expected) and healthy == self.workers:
            status = "ok"
        else:
            status = "degraded"
        payload = {
            "status": status,
            "supervisor": True,
            "gateway": self.gateway,
            "mode": self.mode,
            "workers": self.workers,
            "workers_active": len(self._ready_children()),
            "restarts": self.stats.restarts,
            "registry_version": getattr(
                self.handler, "artifact_version", None
            ),
            "gateway_slices": self.stats.gateway_slices,
            "gateway_retries": self.stats.gateway_retries,
            "workers_detail": {
                str(slot): payloads[slot] for slot in sorted(payloads)
            },
        }
        for field in (
            "connections", "requests", "pages", "served",
            "protocol_errors", "rate_limited", "shed",
            "drained_connections",
        ):
            payload[field] = getattr(self.stats, field) + sum(
                int(p.get(field, 0)) for p in payloads.values()
            )
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        keep_alive = request.keep_alive and not self._stopping
        _write_payload_response(writer, 200, body, keep_alive)
        return keep_alive

    async def _handle_metrics(self, request, reader, writer) -> bool:
        await self._consume_stray_body(request, reader)
        texts = [self.metrics.render()]
        for text in (await self._gather_children("/metrics")).values():
            decoded = text.decode("utf-8", errors="replace")
            try:
                parse_exposition(decoded)
            except ValueError:  # pragma: no cover - corrupt child
                continue
            texts.append(decoded)
        requests_lines = ["# TYPE repro_worker_requests_total counter"]
        for slot, body in (await self._gather_children("/healthz")).items():
            try:
                health = json.loads(body)
            except json.JSONDecodeError:  # pragma: no cover - noise
                continue
            requests_lines.append(
                f'repro_worker_requests_total{{worker="{slot}"}} '
                f'{int(health.get("requests", 0))}'
            )
        if len(requests_lines) > 1:
            texts.append("\n".join(requests_lines) + "\n")
        body = merge_expositions(texts).encode("utf-8")
        keep_alive = request.keep_alive and not self._stopping
        _write_payload_response(
            writer, 200, body, keep_alive,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
        return keep_alive

    # -- gateway ------------------------------------------------------- #

    async def _pick_worker(self, timeout: float = 30.0) -> Optional[_Child]:
        assert self._loop is not None
        deadline = self._loop.time() + timeout
        while True:
            ready = self._ready_children()
            if ready:
                child = ready[self._rr % len(ready)]
                self._rr += 1
                return child
            if self._stopping or self._loop.time() > deadline:
                return None
            await asyncio.sleep(0.05)

    async def _child_request(self, child: _Child, raw: bytes):
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection("127.0.0.1", child.control_port),
            timeout=10.0,
        )
        fd = self._track_fd(writer)
        try:
            writer.write(raw)
            await writer.drain()
            return await _read_client_response(reader)
        finally:
            self._client_fds.discard(fd)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _run_slice(self, checkpoint: SliceCheckpoint) -> None:
        while checkpoint.attempts < MAX_SLICE_ATTEMPTS:
            child = await self._pick_worker()
            if child is None:
                raise GatewayError(
                    f"no live worker for slice {checkpoint.index}"
                )
            checkpoint.begin_attempt()
            head = (
                "POST /batch HTTP/1.1\r\nHost: gateway\r\n"
                f"Content-Length: {len(checkpoint.payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            try:
                status, _, body = await self._child_request(
                    child, head + checkpoint.payload
                )
            except (OSError, ValueError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError):
                # The worker died (or was killed) mid-slice: the
                # interrupted checkpoint drops partial output and the
                # slice re-runs, whole, on another worker.
                checkpoint.interrupt()
                self._m_slices.labels("retried").inc()
                self.stats.gateway_retries += 1
                await asyncio.sleep(0.05)
                continue
            if status != 200:
                raise GatewayError(
                    f"worker {child.slot} answered {status} for "
                    f"slice {checkpoint.index}"
                )
            records = body.split(b"\n")
            if records and records[-1] == b"":
                records.pop()
            checkpoint.complete(records)
            self._m_slices.labels("ok").inc()
            self.stats.gateway_slices += 1
            return
        raise GatewayError(
            f"slice {checkpoint.index} failed after "
            f"{checkpoint.attempts} attempts"
        )

    async def _handle_batch(self, request, reader, writer) -> bool:
        body_framer = _framed_body(request, reader, self.max_body_bytes)
        if request.headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        raw = await _read_whole_body(body_framer, self.max_body_bytes)
        slices = slice_body(raw, self.slice_lines)
        chunked = request.version == "HTTP/1.1"
        if chunked:
            writer.write(_response_head(200, [
                ("Content-Type", "application/x-ndjson; charset=utf-8"),
                ("Transfer-Encoding", "chunked"),
                ("Connection",
                 "keep-alive" if request.keep_alive else "close"),
            ]))
        else:
            writer.write(_response_head(200, [
                ("Content-Type", "application/x-ndjson; charset=utf-8"),
                ("Connection", "close"),
            ]))

        def _write_line(data: bytes) -> None:
            data += b"\n"
            if chunked:
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
            else:
                writer.write(data)

        semaphore = asyncio.Semaphore(max(2, 2 * self.workers))

        async def _bounded(checkpoint: SliceCheckpoint) -> None:
            async with semaphore:
                await self._run_slice(checkpoint)

        tasks = [
            asyncio.ensure_future(_bounded(checkpoint))
            for checkpoint in slices
        ]
        clean = True
        try:
            # Ordered emission: slice k's records go out only after
            # every earlier slice's did — the deterministic merge.
            for task, checkpoint in zip(tasks, slices):
                try:
                    await task
                except (GatewayError, asyncio.CancelledError) as exc:
                    clean = False
                    _write_line(json.dumps(
                        make_error_record(f"gateway: {exc}"),
                        sort_keys=True,
                    ).encode("utf-8"))
                    break
                for record in checkpoint.records:
                    _write_line(record)
                await writer.drain()
        finally:
            for task in tasks:
                task.cancel()
        if chunked:
            writer.write(b"0\r\n\r\n")
        await writer.drain()
        return (
            clean
            and chunked
            and request.keep_alive
            and not self._stopping
        )

    async def _handle_extract(self, request, reader, writer) -> bool:
        body_framer = _framed_body(request, reader, self.max_body_bytes)
        if request.headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
        raw = await _read_whole_body(body_framer, self.max_body_bytes)
        head = (
            "POST /extract HTTP/1.1\r\nHost: gateway\r\n"
            f"Content-Length: {len(raw)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        for _ in range(MAX_SLICE_ATTEMPTS):
            child = await self._pick_worker()
            if child is None:
                break
            try:
                status, _, body = await self._child_request(
                    child, head + raw
                )
            except (OSError, ValueError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError):
                await asyncio.sleep(0.05)
                continue
            keep_alive = request.keep_alive and not self._stopping
            _write_payload_response(writer, status, body, keep_alive)
            return keep_alive
        raise HttpProtocolError(503, "no live worker for /extract")


async def _read_client_response(reader) -> tuple:
    """Parse one child HTTP response fully: ``(status, headers, body)``.

    Raises :class:`asyncio.IncompleteReadError` when the connection
    dies before the response is complete — the gateway's mid-slice
    worker-death signal.
    """
    status_line = await reader.readline()
    if not status_line:
        raise asyncio.IncompleteReadError(b"", 1)
    status = int(status_line.split(None, 2)[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise asyncio.IncompleteReadError(b"", 1)
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if status == 100:
        # Interim response: the real one follows.
        return await _read_client_response(reader)
    if headers.get("transfer-encoding", "").lower() == "chunked":
        body = bytearray()
        while True:
            size_line = await reader.readline()
            if not size_line:
                raise asyncio.IncompleteReadError(b"", 1)
            size = int(size_line.decode("latin-1").strip().split(";")[0], 16)
            if size == 0:
                while True:
                    trailer = await reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                break
            chunk = await reader.readexactly(size + 2)
            body.extend(chunk[:-2])
        return status, headers, bytes(body)
    length = headers.get("content-length")
    if length is not None:
        return status, headers, await reader.readexactly(int(length))
    return status, headers, await reader.read()
