"""HTTP/1.1 ingress: the third ``serve`` front-end (socket transport).

The stdin front-ends make extraction scriptable; this module makes it
*reachable* — a minimal HTTP/1.1 layer on ``asyncio.start_server``
(stdlib only) in front of the same :class:`~repro.service.serve.
ServeHandler` the stdin loops drive, so a page POSTed over HTTP yields
a record **byte-identical** to what ``serve`` writes on stdout for the
same input line.

The record stream is the protocol: application-level failures
(malformed request JSON, unparseable HTML, unroutable pages, handler
crashes) come back as error *records* with HTTP 200, exactly as on
stdin.  4xx/5xx are reserved for HTTP-layer violations, and those
responses carry an error record body too, so a client can always parse
what it gets.

Endpoints:

* ``POST /extract`` — one ``{"url", "html"}`` JSON body in, one record
  line out (``Content-Length`` framed).
* ``POST /batch`` — an NDJSON body in (``Content-Length`` or
  ``Transfer-Encoding: chunked``), a **chunked NDJSON stream** out:
  one record line per input line, one HTTP chunk per record (a chunk
  boundary never splits a record), strictly in input order per
  connection.  The body is consumed incrementally through the same
  :class:`~repro.service.serve.AsyncLinePipeline` as the asyncio stdin
  front-end, so extraction overlaps both the arriving request body and
  the departing response — with the handler's
  :class:`~repro.service.serve.ServePolicy` supplying the in-flight
  bound and the consecutive-undecodable-line cap.
* ``GET /healthz`` — liveness plus session counters (served pages,
  requests, connections, drift events/refits).

Connections are persistent per HTTP/1.1 semantics (``Connection:
close`` honoured; HTTP/1.0 closes unless asked to keep alive).
Graceful shutdown (:meth:`HttpFrontEnd.shutdown`) closes the listener,
hangs up idle connections, lets every in-flight request finish and
drains the extraction pool — no response is ever truncated
mid-record.
"""

from __future__ import annotations

import asyncio
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.service.metrics import AdmissionController, AdmissionDecision
from repro.service.serve import (
    AsyncLinePipeline,
    ServeStats,
    contained_handle,
    _adopt_adapter_counts,
    _dumps,
    _metrics_of,
    _policy_of,
)
from repro.service.sink import make_error_record

#: Request-line / single-header length bound (DoS hygiene).
MAX_REQUEST_LINE_BYTES = 8192

#: Total header block bound per request.
MAX_HEADER_BYTES = 32768

#: Default request-body bound; ``HttpFrontEnd(max_body_bytes=...)``
#: overrides (a million-page corpus belongs on ``/batch`` streamed,
#: not in one ``/extract`` body).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Seconds a graceful shutdown waits for in-flight requests before
#: force-closing their connections.
DEFAULT_DRAIN_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Endpoint label values for ``repro_http_requests_total`` — a bounded
#: set, so an URL-scanning client cannot explode series cardinality.
_KNOWN_ENDPOINTS = ("/extract", "/batch", "/healthz", "/metrics")


class HttpProtocolError(Exception):
    """An HTTP-layer violation (maps to a 4xx/5xx and hangs up)."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class HttpStats:
    """What one HTTP serve session did (the front-end's report)."""

    connections: int = 0
    requests: int = 0
    #: Request lines answered with a record (served + error + gap).
    pages: int = 0
    #: Successfully extracted pages (the stdin loops' counter).
    served: int = 0
    #: Requests refused at the HTTP layer (4xx/5xx).
    protocol_errors: int = 0
    #: Requests refused 429 by a per-client rate limit.
    rate_limited: int = 0
    #: Requests shed 503 at the in-flight saturation bound.
    shed: int = 0
    #: Connections the graceful-shutdown drain path closed — kept in
    #: lockstep with ``repro_http_drained_connections_total`` so the
    #: drain log line and ``/metrics`` can never disagree.
    drained_connections: int = 0
    #: Drift events / refits the handler's adapter performed during
    #: this session (0 without ``--adapt``).
    drift_events: int = 0
    refits: int = 0
    #: Canary verdicts the adapter's deployer reached during this
    #: session (0 without ``--registry``/``--canary-fraction``).
    promotions: int = 0
    rollbacks: int = 0


# --------------------------------------------------------------------- #
# Request parsing
# --------------------------------------------------------------------- #


@dataclass
class _Request:
    method: str
    target: str
    version: str
    headers: dict[str, str]

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


async def _read_line(reader, limit: int, context: str) -> bytes:
    try:
        line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise HttpProtocolError(431, f"{context} too long") from exc
    if len(line) > limit:
        raise HttpProtocolError(431, f"{context} too long")
    return line


async def _read_request_head(reader) -> Optional[_Request]:
    """Parse one request line + headers; ``None`` on clean EOF."""
    request_line = b"\r\n"
    # RFC 9112 §2.2: tolerate stray CRLFs between pipelined requests —
    # a few of them, not a firehose that pins the connection forever.
    for _ in range(64):
        request_line = await _read_line(
            reader, MAX_REQUEST_LINE_BYTES, "request line"
        )
        if request_line not in (b"\r\n", b"\n"):
            break
    else:
        raise HttpProtocolError(400, "too many stray blank lines")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpProtocolError(400, "malformed request line")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpProtocolError(400, f"unsupported version {version}")
    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await _read_line(reader, MAX_REQUEST_LINE_BYTES, "header")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpProtocolError(400, "connection closed mid-headers")
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpProtocolError(431, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpProtocolError(400, f"malformed header {name!r}")
        headers[name.strip().lower()] = value.strip()
    return _Request(method, target, version, headers)


# --------------------------------------------------------------------- #
# Body framing (both request framings feed one incremental line reader)
# --------------------------------------------------------------------- #


class _LengthFramedBody:
    """Read exactly ``Content-Length`` bytes, never past the request."""

    def __init__(self, reader, remaining: int) -> None:
        self._reader = reader
        self._remaining = remaining

    async def read_some(self) -> bytes:
        """The next body chunk (``b""`` once the framed length is read)."""
        if self._remaining <= 0:
            return b""
        data = await self._reader.read(min(65536, self._remaining))
        if not data:
            raise HttpProtocolError(400, "connection closed mid-body")
        self._remaining -= len(data)
        return data


class _ChunkedBody:
    """Decode ``Transfer-Encoding: chunked`` request framing."""

    def __init__(self, reader, max_bytes: int) -> None:
        self._reader = reader
        self._max_bytes = max_bytes
        self._consumed = 0
        self._chunk_left = 0
        self._done = False

    async def read_some(self) -> bytes:
        """The next decoded chunk (``b""`` after the final chunk)."""
        if self._done:
            return b""
        if self._chunk_left == 0:
            size_line = await _read_line(
                self._reader, MAX_REQUEST_LINE_BYTES, "chunk size"
            )
            if not size_line:
                raise HttpProtocolError(400, "connection closed mid-body")
            # Chunk extensions (";...") are legal; ignore them.
            size_text = size_line.decode("latin-1").strip().split(";")[0]
            try:
                size = int(size_text, 16)
            except ValueError as exc:
                raise HttpProtocolError(
                    400, f"malformed chunk size {size_text!r}"
                ) from exc
            if size == 0:
                # Trailer section: skip until the blank line, within
                # the same budget that bounds a header block.
                trailer_bytes = 0
                while True:
                    trailer = await _read_line(
                        self._reader, MAX_REQUEST_LINE_BYTES, "trailer"
                    )
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                    trailer_bytes += len(trailer)
                    if trailer_bytes > MAX_HEADER_BYTES:
                        raise HttpProtocolError(
                            431, "trailer block too large"
                        )
                self._done = True
                return b""
            self._consumed += size
            if self._consumed > self._max_bytes:
                raise HttpProtocolError(413, "chunked body too large")
            self._chunk_left = size
        data = await self._reader.read(min(65536, self._chunk_left))
        if not data:
            raise HttpProtocolError(400, "connection closed mid-body")
        self._chunk_left -= len(data)
        if self._chunk_left == 0:
            crlf = await self._reader.readexactly(2)
            if crlf != b"\r\n":
                raise HttpProtocolError(400, "malformed chunk terminator")
        return data


def _framed_body(request: _Request, reader, max_bytes: int):
    """The request's body framer, or an :class:`HttpProtocolError`."""
    encoding = request.headers.get("transfer-encoding", "").lower()
    if encoding:
        if "content-length" in request.headers:
            # RFC 9112 §6.3: a message carrying both framings is a
            # request-smuggling vector (a proxy in front may frame by
            # the one this server ignores) — reject, never guess.
            raise HttpProtocolError(
                400, "both Transfer-Encoding and Content-Length given"
            )
        if encoding != "chunked":
            raise HttpProtocolError(
                501, f"unsupported transfer-encoding {encoding!r}"
            )
        return _ChunkedBody(reader, max_bytes)
    length_text = request.headers.get("content-length")
    if length_text is None:
        raise HttpProtocolError(411, "Content-Length required")
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError
    except ValueError:
        raise HttpProtocolError(
            400, f"malformed Content-Length {length_text!r}"
        ) from None
    if length > max_bytes:
        raise HttpProtocolError(
            413, f"body of {length} bytes exceeds the {max_bytes} cap"
        )
    return _LengthFramedBody(reader, length)


async def _body_lines(body):
    """Yield the body's NDJSON lines incrementally, as they arrive.

    Items are ``str`` lines (newline stripped; a final unterminated
    line included, exactly like the stdin loops' EOF handling) or, for
    a line that is not valid UTF-8, the ``UnicodeDecodeError`` itself
    — the caller turns those into error records under the shared
    consecutive-failure cap.
    """
    buffer = bytearray()
    while True:
        data = await body.read_some()
        if not data:
            break
        buffer.extend(data)
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            raw = bytes(buffer[:newline])
            del buffer[: newline + 1]
            yield _decode_line(raw)
    if buffer:
        yield _decode_line(bytes(buffer))


def _decode_line(raw: bytes):
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        return exc


async def _read_whole_body(body, max_bytes: int) -> bytes:
    parts = []
    total = 0
    while True:
        data = await body.read_some()
        if not data:
            return b"".join(parts)
        total += len(data)
        if total > max_bytes:
            raise HttpProtocolError(413, "body too large")
        parts.append(data)


# --------------------------------------------------------------------- #
# Response writing
# --------------------------------------------------------------------- #


def _response_head(
    status: int,
    headers: list[tuple[str, str]],
) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS[status]}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def _write_payload_response(
    writer,
    status: int,
    body: bytes,
    keep_alive: bool,
    content_type: str = "application/json; charset=utf-8",
    extra_headers: tuple = (),
) -> None:
    writer.write(_response_head(status, [
        ("Content-Type", content_type),
        ("Content-Length", str(len(body))),
        ("Connection", "keep-alive" if keep_alive else "close"),
        *extra_headers,
    ]) + body)


def _error_body(message: str) -> bytes:
    # serve._dumps is the one record serializer every front-end's
    # byte-identity rests on; error bodies go through it too.
    return (_dumps(make_error_record(message)) + "\n").encode("utf-8")


# --------------------------------------------------------------------- #
# The front-end
# --------------------------------------------------------------------- #


class _Connection:
    """Book-keeping for one open socket (shutdown needs the state)."""

    def __init__(self, writer) -> None:
        self.writer = writer
        self.busy = False


class HttpFrontEnd:
    """The ``serve --http`` ingress: sockets in, record lines out.

    Args:
        handler: the shared :class:`~repro.service.serve.ServeHandler`
            (its :class:`~repro.service.serve.ServePolicy` supplies
            the in-flight bound and decode-failure cap).
        host, port: bind address; port 0 picks a free port (the bound
            one is on :attr:`port` after :meth:`start`).
        max_inflight: per-request in-flight bound and extraction-pool
            size; defaults from the handler's policy.
        max_body_bytes: request-body cap (413 beyond it).
        drain_timeout: seconds :meth:`shutdown` waits for in-flight
            requests before force-closing their connections — a client
            that stops reading its response must not be able to wedge
            SIGTERM forever.

    Admission control: the handler's
    :class:`~repro.service.metrics.AdmissionController` (configured by
    its :class:`~repro.service.serve.ServePolicy`) guards ``/extract``
    and ``/batch`` — over-rate clients get 429, saturation sheds 503,
    both with ``Retry-After``.  ``/healthz`` and ``/metrics`` are
    exempt: an operator must be able to observe a saturated server.

    Lifecycle: ``await start()`` binds and serves in the background;
    :meth:`stop` (thread-safe) releases :meth:`wait_stopped`; ``await
    shutdown()`` closes the listener, finishes in-flight requests,
    hangs up idle connections, drains the pool and returns the final
    :class:`HttpStats`.
    """

    def __init__(
        self,
        handler,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        sock=None,
        worker_id: Optional[str] = None,
    ) -> None:
        policy = _policy_of(handler)
        self.handler = handler
        self.host = host
        self.port = port
        #: A pre-bound, already-listening socket to serve on instead of
        #: binding ``host:port`` — the supervisor's fork-and-inherit
        #: fallback hands each child the same listener this way.
        self._sock = sock
        #: Stamped by the supervisor so an operator hitting the shared
        #: REUSEPORT port can tell which child answered /healthz.
        self.worker_id = worker_id
        self.max_inflight = (
            max_inflight if max_inflight is not None else policy.max_inflight
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_body_bytes = max_body_bytes
        self.drain_timeout = drain_timeout
        self.stats = HttpStats()
        self._metrics = _metrics_of(handler)
        admission = getattr(handler, "admission", None)
        self._admission = (
            admission
            if admission is not None
            else AdmissionController(
                rate_limit=policy.rate_limit,
                rate_burst=policy.rate_burst,
                max_concurrent=policy.max_concurrent_requests,
                metrics=self._metrics,
            )
        )
        self._m_http_requests = self._metrics.from_spec(
            "repro_http_requests_total"
        )
        self._m_open_connections = self._metrics.from_spec(
            "repro_http_open_connections"
        )
        self._m_drained = self._metrics.from_spec(
            "repro_http_drained_connections_total"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._extra_servers: list[asyncio.AbstractServer] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._closing = False
        self._connections: dict[int, _Connection] = {}
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_inflight,
            thread_name_prefix="http-serve",
        )
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port
            )
        self.port = self._server.sockets[0].getsockname()[1]

    async def add_listener(self, host: str = "127.0.0.1",
                           port: int = 0) -> int:
        """Bind one extra listener answering on the same handler.

        The supervisor gives each child a private control listener this
        way (the parent's aggregation and gateway traffic must reach a
        *specific* child, which the shared REUSEPORT port cannot
        guarantee).  Returns the bound port; closed by :meth:`shutdown`
        alongside the primary listener.
        """
        server = await asyncio.start_server(self._on_connection, host, port)
        self._extra_servers.append(server)
        return server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        """Release :meth:`wait_stopped` (safe from any thread, any time
        — including after the session's event loop is already gone)."""
        if self._loop is None or self._stopped is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stopped.set)
        except RuntimeError:
            pass  # loop already closed: there is nothing left to stop

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` is called (the CLI's signal path)."""
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def shutdown(self) -> HttpStats:
        """Graceful teardown: drain in-flight work, then hang up.

        New connections are refused first (listener closed); idle
        keep-alive connections are hung up; requests already being
        answered get up to ``drain_timeout`` seconds to run to
        completion — within that window no response is ever truncated.
        A connection still unfinished after the window (a client that
        stopped reading its response, or a batch genuinely longer than
        the timeout — size ``drain_timeout`` for the deployment's
        largest legitimate batch) is force-closed mid-stream: the
        operator's SIGTERM must always win.  Idempotent.
        """
        # Every connection still open now is the drain path's to close
        # (idle hang-up, in-flight completion, or force-close below);
        # counted once, in both the session stats and the metrics
        # counter, so the drain log and /metrics always agree (a
        # repeated shutdown() call must not recount survivors).
        drained = 0 if self._closing else len(self._connections)
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for server in self._extra_servers:
            server.close()
            await server.wait_closed()
        self._extra_servers = []
        for connection in list(self._connections.values()):
            if not connection.busy:
                connection.writer.close()
        wedged = False
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=self.drain_timeout
            )
            if pending:
                # Flow-controlled writers (client gone deaf) wake with
                # a connection error once their transport aborts.
                for connection in list(self._connections.values()):
                    connection.writer.transport.abort()
                _, still = await asyncio.wait(pending, timeout=5.0)
                # Anything left is wedged inside the handler itself;
                # leave it behind rather than hang the shutdown.
                wedged = bool(still)
        if self._pool is not None:
            self._pool.shutdown(wait=not wedged)
            self._pool = None
        if drained:
            self.stats.drained_connections += drained
            self._m_drained.inc(drained)
        _adopt_adapter_counts(self.handler, self.stats)
        if self._stopped is not None:
            self._stopped.set()
        return self.stats

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        connection = _Connection(writer)
        self._connections[id(connection)] = connection
        self.stats.connections += 1
        self._m_open_connections.inc()
        try:
            await self._serve_connection(reader, writer, connection)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client hung up mid-exchange; nothing to answer
        finally:
            del self._connections[id(connection)]
            self._m_open_connections.dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_connection(self, reader, writer, connection) -> None:
        while not self._closing:
            try:
                request = await _read_request_head(reader)
            except HttpProtocolError as exc:
                await self._refuse(reader, writer, exc)
                break
            if request is None:
                break  # client closed the idle connection
            connection.busy = True
            self.stats.requests += 1
            try:
                keep_alive = await self._dispatch(request, reader, writer)
            except HttpProtocolError as exc:
                await self._refuse(reader, writer, exc, request.target)
                break
            finally:
                connection.busy = False
            await writer.drain()
            if not keep_alive:
                break

    def _count_request(self, endpoint: str, status: int) -> None:
        """One ``repro_http_requests_total`` tick, cardinality-bounded."""
        if endpoint not in _KNOWN_ENDPOINTS:
            endpoint = "other"
        self._m_http_requests.labels(endpoint, str(status)).inc()

    @staticmethod
    def _client_of(writer) -> str:
        """The peer's address, the admission controller's client key."""
        peername = writer.get_extra_info("peername")
        if isinstance(peername, (tuple, list)) and peername:
            return str(peername[0])
        return str(peername) if peername else "unknown"

    async def _refuse(
        self, reader, writer, exc: HttpProtocolError, target: str = "other"
    ) -> None:
        """One HTTP-layer rejection; the connection closes after it.

        The body is still an error record, so even a client that hits
        a framing bug gets a parseable line back.  Unread request
        bytes are drained (bounded) before the close: closing a socket
        with inbound data pending makes the kernel RST it, which would
        destroy the very response the client needs to see.
        """
        self.stats.protocol_errors += 1
        self._count_request(target, exc.status)
        extra = []
        if exc.status == 405:
            extra = [("Allow", exc.detail.rsplit(" ", 1)[-1])]
        body = _error_body(f"{exc.status} {_REASONS[exc.status]}: "
                           f"{exc.detail}")
        writer.write(_response_head(exc.status, [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
            *extra,
        ]) + body)
        await self._drain_unread(reader, writer)

    async def _drain_unread(self, reader, writer) -> None:
        """Discard unread inbound bytes so close() cannot RST us.

        Best-effort and bounded in bytes *and* wall-clock: a refused
        client gets a few seconds, total, to finish sending — a
        trickler cannot pin the connection task by keeping each
        individual read just under a per-read timeout.
        """
        try:
            await writer.drain()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 5.0
            remaining = self.max_body_bytes
            while remaining > 0:
                timeout = min(1.0, deadline - loop.time())
                if timeout <= 0:
                    break
                data = await asyncio.wait_for(
                    reader.read(min(65536, remaining)), timeout=timeout
                )
                if not data:
                    break
                remaining -= len(data)
        except (asyncio.TimeoutError, OSError):
            pass  # slow or vanished client: best effort is spent

    async def _dispatch(self, request: _Request, reader, writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        route = (request.method, request.target)
        if route == ("POST", "/extract"):
            return await self._handle_extract(request, reader, writer)
        if route == ("POST", "/batch"):
            return await self._handle_batch(request, reader, writer)
        if route == ("GET", "/healthz"):
            return await self._handle_healthz(request, reader, writer)
        if route == ("GET", "/metrics"):
            return await self._handle_metrics(request, reader, writer)
        if request.target in ("/extract", "/batch"):
            raise HttpProtocolError(
                405, f"{request.target} accepts only POST"
            )
        if request.target in ("/healthz", "/metrics"):
            raise HttpProtocolError(
                405, f"{request.target} accepts only GET"
            )
        raise HttpProtocolError(404, f"no such endpoint {request.target!r}")

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    def _answer_expect(self, request, writer) -> None:
        """Honour ``Expect: 100-continue`` once the body is wanted.

        curl adds the expectation to any large POST and waits a full
        second for the interim response before sending the body; not
        answering stalls every big request by that second.  Sent only
        after :func:`_framed_body` validated the framing, so a request
        refused outright (411/413) gets its final status instead.
        """
        if request.headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")

    async def _reject(
        self, request, reader, writer, decision: AdmissionDecision
    ) -> bool:
        """Answer a refused ``POST`` without losing the connection.

        The framed request body is consumed first (its bytes would
        otherwise prefix the next request line on this keep-alive
        connection), then the 429/503 goes out with a whole-second
        ``Retry-After`` and an error-record body — so even a refusal
        is a parseable line.  No ``100 Continue`` is sent: a client
        holding its body on ``Expect`` sees the final status instead.
        """
        if decision.status == 429:
            self.stats.rate_limited += 1
        else:
            self.stats.shed += 1
        # Counted at decision time, before the first await: a shutdown
        # (or client reset) racing the refusal mid-body must not leave
        # the stderr summary and HttpStats claiming a rejection the
        # /metrics series never saw.
        self._count_request(request.target, decision.status)
        framing_ok = True
        try:
            body_framer = _framed_body(request, reader, self.max_body_bytes)
            await _read_whole_body(body_framer, self.max_body_bytes)
        except HttpProtocolError:
            # The refusal outranks the framing violation — and this
            # request is already counted, so routing it through
            # _refuse would tick the series twice.  Answer 429/503
            # and stop reusing the connection.
            framing_ok = False
        retry_after = decision.retry_after_seconds
        payload = _error_body(
            f"{decision.status} {_REASONS[decision.status]}: "
            f"{decision.reason}; retry after {retry_after}s"
        )
        keep_alive = framing_ok and request.keep_alive and not self._closing
        _write_payload_response(
            writer,
            decision.status,
            payload,
            keep_alive,
            extra_headers=(("Retry-After", str(retry_after)),),
        )
        return keep_alive

    async def _handle_extract(self, request, reader, writer) -> bool:
        decision = self._admission.admit(self._client_of(writer))
        if not decision.admitted:
            return await self._reject(request, reader, writer, decision)
        try:
            return await self._extract_admitted(request, reader, writer)
        finally:
            self._admission.release()

    async def _extract_admitted(self, request, reader, writer) -> bool:
        body = _framed_body(request, reader, self.max_body_bytes)
        self._answer_expect(request, writer)
        raw = await _read_whole_body(body, self.max_body_bytes)
        decoded = _decode_line(raw)
        if isinstance(decoded, UnicodeDecodeError):
            payload = _error_body(f"undecodable input: {decoded}")
            served = False
        else:
            assert self._loop is not None and self._pool is not None
            line, served = await self._loop.run_in_executor(
                self._pool, contained_handle, self.handler, decoded.strip()
            )
            payload = (line + "\n").encode("utf-8")
        self.stats.pages += 1
        self.stats.served += served
        keep_alive = request.keep_alive and not self._closing
        _write_payload_response(writer, 200, payload, keep_alive)
        self._count_request("/extract", 200)
        return keep_alive

    async def _handle_batch(self, request, reader, writer) -> bool:
        decision = self._admission.admit(self._client_of(writer))
        if not decision.admitted:
            return await self._reject(request, reader, writer, decision)
        try:
            return await self._batch_admitted(request, reader, writer)
        finally:
            self._admission.release()

    async def _batch_admitted(self, request, reader, writer) -> bool:
        body = _framed_body(request, reader, self.max_body_bytes)
        self._answer_expect(request, writer)
        # The response head goes out before the body has fully arrived:
        # from here on, failures are records in the stream, not status
        # codes (the client already has its 200).  HTTP/1.1 clients
        # get chunked framing (and may keep the connection); HTTP/1.0
        # predates chunked (RFC 9112 §7.1), so it gets the raw NDJSON
        # stream delimited by connection close.
        chunked = request.version == "HTTP/1.1"
        if chunked:
            writer.write(_response_head(200, [
                ("Content-Type", "application/x-ndjson; charset=utf-8"),
                ("Transfer-Encoding", "chunked"),
                ("Connection",
                 "keep-alive" if request.keep_alive else "close"),
            ]))
        else:
            writer.write(_response_head(200, [
                ("Content-Type", "application/x-ndjson; charset=utf-8"),
                ("Connection", "close"),
            ]))

        def _write_chunk(line: str) -> bool:
            data = (line + "\n").encode("utf-8")
            if chunked:
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
            else:
                writer.write(data)
            return not writer.is_closing()

        request_stats = ServeStats()
        pipeline = AsyncLinePipeline(
            self.handler, self._pool, _write_chunk, request_stats,
            max_inflight=self.max_inflight,
        )
        clean = True
        abort_message = None
        try:
            async for item in _body_lines(body):
                if isinstance(item, UnicodeDecodeError):
                    if await pipeline.submit_decode_failure(item):
                        break
                    continue
                pipeline.note_read_ok()
                line = item.strip()
                if not line:
                    continue
                await pipeline.submit(line)
                # Socket-level backpressure: the in-flight window bounds
                # memory; draining here bounds the kernel send queue.
                await writer.drain()
        except HttpProtocolError as exc:
            # Mid-stream framing failure (body lies about its chunks,
            # or outgrows the cap): the 200 is gone, so surface it as
            # a final error record — written after the drain below, so
            # it lands *after* every in-flight page record and really
            # is the terminal line — and hang up.
            self.stats.protocol_errors += 1
            clean = False
            abort_message = (
                f"{exc.status} {_REASONS[exc.status]}: {exc.detail}"
            )
        finally:
            # Pages extracted before a client abort (a drain above may
            # raise ConnectionResetError) must still be accounted.
            await pipeline.drain()
            self.stats.pages += pipeline.admitted
            self.stats.served += request_stats.served
        if abort_message is not None:
            _write_chunk(_dumps(make_error_record(abort_message)))
        if request_stats.gave_up:
            # The stdin loops signal this on stderr + exit code; an
            # HTTP client only has the stream, so say it there — a
            # truncated batch must never look fully processed.
            clean = False
            _write_chunk(_dumps(make_error_record(
                "too many undecodable input lines; giving up"
            )))
        if chunked:
            writer.write(b"0\r\n\r\n")
        self._count_request("/batch", 200)
        if not clean:
            # Aborted with body bytes still unread (the cap tripped,
            # or the framing lied): drain them before the close, or
            # the kernel's RST would destroy the very records — the
            # give-up marker above included — that explain the abort.
            await self._drain_unread(reader, writer)
        await writer.drain()
        return (
            clean
            and chunked
            and request.keep_alive
            and not self._closing
        )

    async def _handle_healthz(self, request, reader, writer) -> bool:
        if (
            "content-length" in request.headers
            or "transfer-encoding" in request.headers
        ):
            # A GET that nonetheless ships a body (curl -d with -X
            # GET): consume it, or its bytes would prefix the next
            # request line on this keep-alive connection.
            body = _framed_body(request, reader, self.max_body_bytes)
            await _read_whole_body(body, self.max_body_bytes)
        adapter = getattr(self.handler, "adapter", None)
        deployer = getattr(adapter, "deployer", None)
        canary = deployer.status() if deployer is not None else {}
        payload = {
            "status": "closing" if self._closing else "ok",
            "connections": self.stats.connections,
            "requests": self.stats.requests,
            "pages": self.stats.pages,
            "served": self.stats.served,
            "protocol_errors": self.stats.protocol_errors,
            "rate_limited": self.stats.rate_limited,
            "shed": self.stats.shed,
            "drained_connections": self.stats.drained_connections,
            "drift_events": 0 if adapter is None else adapter.drift_events,
            "refits": 0 if adapter is None else adapter.refits,
            "max_inflight": self.max_inflight,
            "registry_version": canary.get("registry_version")
            or getattr(self.handler, "artifact_version", None),
            "shadow_version": canary.get("shadow_version"),
            "canary_promotions": canary.get("canary_promotions", 0),
            "canary_rollbacks": canary.get("canary_rollbacks", 0),
            "canary_shadow_pages": canary.get("canary_shadow_pages", 0),
        }
        if self.worker_id is not None:
            payload["worker_id"] = self.worker_id
            payload["pid"] = os.getpid()
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        keep_alive = request.keep_alive and not self._closing
        _write_payload_response(writer, 200, body, keep_alive)
        self._count_request("/healthz", 200)
        return keep_alive

    async def _handle_metrics(self, request, reader, writer) -> bool:
        """``GET /metrics``: the registry in Prometheus text format.

        Renders the handler's registry (the process-wide one, for CLI
        deployments), so one scrape covers the runtime, router,
        adaptive layer, canary controller and this ingress.  Exempt
        from admission control — observability of a saturated server
        is the whole point.
        """
        if (
            "content-length" in request.headers
            or "transfer-encoding" in request.headers
        ):
            # Same stray-body hygiene as /healthz.
            body_framer = _framed_body(request, reader, self.max_body_bytes)
            await _read_whole_body(body_framer, self.max_body_bytes)
        body = self._metrics.render().encode("utf-8")
        keep_alive = request.keep_alive and not self._closing
        _write_payload_response(
            writer,
            200,
            body,
            keep_alive,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
        self._count_request("/metrics", 200)
        return keep_alive
