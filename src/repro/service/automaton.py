"""Single-pass extraction automaton: one DOM walk feeds every rule.

The PR-1 compiler factors *primary* locations into a prefix trie, but
each trie branch still materialises its own node lists and every
alternative location re-traverses the tree from scratch through the
generic evaluator.  This module compiles **all** automaton-eligible
locations of a cluster — primaries *and* alternatives, across every
rule — into one deterministic tree automaton:

* **States** form a trie over location steps: locations sharing a
  step prefix share the states for that prefix, so the shared work is
  done once per page no matter how many rules ride on it.
* **Transitions** are per-state dispatch tables keyed by what the DOM
  offers cheaply during a scan: a ``tag -> targets`` dict for named
  element tests plus optional ``*``/``text()``/``comment()``/
  ``node()`` target lists.  Each target carries the step's positional
  constraint (``TR[2]``-style) or ``None`` for "every match".
* **Accepting states** emit into *slots*: each compiled location owns
  one slot, and :meth:`ExtractionAutomaton.scan` returns the matched
  nodes per slot after a single preorder traversal.

Eligibility covers the paper's canonical rule shapes: a location
joins the automaton when it is a *relative* location path whose steps
are all ``child``-axis with at most one *positional* predicate —
either a number literal (``TR[2]``) or a ``position()`` comparison
against one (``LI[position() >= 1]``, the builder's multi-valued
range form).  Every such constraint compiles to ``(lo, hi, ne)``
index bounds checked against per-parent sibling counters.  Anything
else (absolute paths, filter expressions, descendant axes, value
predicates) stays on the generic evaluator, selected lazily per rule.

Byte-identity argument: every automaton step is a ``child`` step, so
a slot's matches all sit at one fixed depth and their parents are
*disjoint* (no node an ancestor of another).  A preorder scan visits
those parents in document order and emits each parent's matching
children in child-list order; the concatenation is therefore exactly
the document-ordered, duplicate-free node list the specialised
:func:`~repro.service.compiler._apply_fast_child_step` cascade
produces — which is itself proven identical to the generic evaluator.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.dom.node import Element, Text
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    NameTest,
    NumberLiteral,
    Step,
)
from repro.xpath.engine import XPath

__all__ = [
    "AutomatonStats",
    "ExtractionAutomaton",
    "automaton_steps",
    "child_step_eligible",
    "location_ineligibility",
    "step_constraint",
    "step_ineligibility",
]

#: "No upper bound" for a positional constraint (sibling counts are
#: tiny; any unreachable integer works).
_UNBOUNDED = sys.maxsize

#: Flipped comparison for ``literal op position()`` operand order.
_FLIP = {">=": "<=", ">": "<", "<=": ">=", "<": ">", "=": "=", "!=": "!="}


def child_step_eligible(step: Step) -> bool:
    """True for ``child`` steps with at most one positional predicate."""
    if step.axis != "child":
        return False
    if not step.predicates:
        return True
    return len(step.predicates) == 1 and isinstance(
        step.predicates[0], NumberLiteral
    )


def _is_position(expr) -> bool:
    return (
        isinstance(expr, FunctionCall)
        and expr.name == "position"
        and not expr.args
    )


def _range_constraint(op: str, value: float) -> Optional[Tuple[int, int, int]]:
    """Bounds for ``position() op value``, or ``None`` when unsupported."""
    if value != value:  # NaN: every comparison but != is false
        if op == "!=":
            return (1, _UNBOUNDED, 0)
        return (1, 0, 0)
    if op == ">=":
        return (max(1, math.ceil(value)), _UNBOUNDED, 0)
    if op == ">":
        return (max(1, math.floor(value) + 1), _UNBOUNDED, 0)
    if op == "<=":
        return (1, math.floor(value), 0)
    if op == "<":
        return (1, math.ceil(value) - 1, 0)
    if op == "=":
        if value != int(value) or value < 1:
            return (1, 0, 0)
        return (int(value), int(value), 0)
    if op == "!=":
        if value != int(value):
            return (1, _UNBOUNDED, 0)
        return (1, _UNBOUNDED, int(value))
    return None


def step_constraint(step: Step) -> Optional[Tuple[int, int, int]]:
    """A step's positional constraint as ``(lo, hi, ne)``, or ``None``.

    ``None`` means the step cannot ride the automaton.  Otherwise a
    child node at 1-based position ``i`` among its test-matching
    siblings matches iff ``lo <= i <= hi and i != ne`` (``ne`` is 0 —
    never a real position — when there is no exclusion).  Provably
    void constraints (``TD[0]``, ``position() = 1.5``) come back with
    ``hi < lo`` and compile to no transition at all, mirroring the
    generic evaluator selecting nothing.
    """
    if step.axis != "child":
        return None
    if not step.predicates:
        return (1, _UNBOUNDED, 0)
    if len(step.predicates) != 1:
        return None
    predicate = step.predicates[0]
    if isinstance(predicate, NumberLiteral):
        return _range_constraint("=", predicate.value)
    if isinstance(predicate, BinaryOp):
        if _is_position(predicate.left) and isinstance(
            predicate.right, NumberLiteral
        ):
            return _range_constraint(predicate.op, predicate.right.value)
        if _is_position(predicate.right) and isinstance(
            predicate.left, NumberLiteral
        ):
            flipped = _FLIP.get(predicate.op)
            if flipped is None:
                return None
            return _range_constraint(flipped, predicate.left.value)
    return None


#: Comparison operators :func:`_range_constraint` can turn into index
#: bounds; anything else on a ``position()`` predicate is ineligible.
_SUPPORTED_OPS = frozenset(_FLIP)


def step_ineligibility(step: Step) -> Optional[str]:
    """Why ``step`` cannot ride the automaton, or ``None`` if it can.

    The exact complement of :func:`step_constraint`: returns ``None``
    precisely when the step yields a constraint, and otherwise a
    one-line human reason (surfaced verbatim by the ``RW301`` analyzer
    finding in :mod:`repro.analysis`).
    """
    if step.axis != "child":
        return (
            f"axis {step.axis}:: re-anchors the scan and needs the "
            "generic evaluator"
        )
    if len(step.predicates) > 1:
        return "more than one predicate on a single step"
    if not step.predicates:
        return None
    predicate = step.predicates[0]
    if isinstance(predicate, NumberLiteral):
        return None
    if isinstance(predicate, BinaryOp):
        sides = (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        )
        for position_side, literal_side in sides:
            if _is_position(position_side):
                if not isinstance(literal_side, NumberLiteral):
                    return (
                        "position() compared against a non-literal "
                        "expression"
                    )
                if predicate.op not in _SUPPORTED_OPS:
                    return (
                        f"operator {predicate.op!r} on position() has no "
                        "index-bound form"
                    )
                return None
    return (
        "predicate is not positional (value tests need the generic "
        "evaluator)"
    )


def location_ineligibility(xpath: XPath) -> Optional[str]:
    """Why a location cannot ride the automaton, or ``None`` if it can.

    The exact complement of :func:`automaton_steps`: ``None`` is
    returned precisely for the locations that compile into the
    single-pass scan.
    """
    ast = xpath.ast
    if not isinstance(ast, LocationPath):
        return "not a location path (filter expressions re-anchor the context)"
    if ast.absolute:
        return "absolute path re-anchors at the document root"
    if not ast.steps:
        return "empty location path selects only the context node"
    for index, step in enumerate(ast.steps, start=1):
        reason = step_ineligibility(step)
        if reason is not None:
            return f"step {index} ({step}): {reason}"
    return None


def automaton_steps(xpath: XPath) -> Optional[Tuple[Step, ...]]:
    """The step tuple of an automaton-eligible location, or ``None``.

    Only relative location paths whose every step yields a
    :func:`step_constraint` can ride the single-pass scan; other
    shapes re-anchor the context or need the generic evaluator.
    :func:`location_ineligibility` names the disqualifying shape.
    """
    ast = xpath.ast
    if not isinstance(ast, LocationPath) or ast.absolute or not ast.steps:
        return None
    if all(step_constraint(step) is not None for step in ast.steps):
        return ast.steps
    return None


class _State:
    """One automaton state: dispatch tables plus emitted slots.

    Transition lists hold ``(lo, hi, ne, target)`` entries — the
    :func:`step_constraint` bounds on the child's 1-based position
    among *test-matching* siblings, exactly the semantics of the
    generic evaluator's per-parent predicate filtering.
    """

    __slots__ = (
        "by_tag", "star", "text", "comment", "node",
        "emits", "alive", "children",
    )

    def __init__(self) -> None:
        self.by_tag: dict = {}
        self.star: Optional[list] = None
        self.text: Optional[list] = None
        self.comment: Optional[list] = None
        self.node: Optional[list] = None
        self.emits: list = []
        self.alive = False
        #: step -> child state (trie structure, build time only).
        self.children: dict = {}


@dataclass(frozen=True)
class AutomatonStats:
    """Sharing accounting for one compiled automaton."""

    slots: int           # locations riding the single-pass scan
    states: int          # distinct states (excluding the root)
    transitions: int     # transition entries across all dispatch tables
    location_steps: int  # total steps across the compiled locations

    @property
    def steps_saved(self) -> int:
        """Steps per page deduplicated versus per-location evaluation."""
        return self.location_steps - self.transitions


class ExtractionAutomaton:
    """A cluster's eligible locations compiled for one-pass scanning.

    Built from ``(slot, steps)`` pairs — one slot per location — and
    immutable afterwards; :meth:`scan` mutates no automaton state, so
    a compiled instance is thread-safe to share across workers.
    """

    __slots__ = ("_root", "slot_count", "stats")

    def __init__(
        self, locations: Iterable[Tuple[int, Tuple[Step, ...]]]
    ) -> None:
        root = _State()
        slot_count = 0
        location_steps = 0
        for slot, steps in locations:
            if slot >= slot_count:
                slot_count = slot + 1
            location_steps += len(steps)
            state = root
            for step in steps:
                state = self._extend(state, step)
            state.emits.append(slot)
        states = 0
        transitions = 0
        stack = [root]
        while stack:
            state = stack.pop()
            for table in (state.star, state.text, state.comment, state.node):
                if table is not None:
                    transitions += len(table)
            for targets in state.by_tag.values():
                transitions += len(targets)
            state.alive = bool(
                state.by_tag or state.star is not None
                or state.text is not None or state.comment is not None
                or state.node is not None
            )
            children = list(state.children.values())
            states += len(children)
            stack.extend(children)
        self._root = root
        self.slot_count = slot_count
        self.stats = AutomatonStats(
            slots=slot_count,
            states=states,
            transitions=transitions,
            location_steps=location_steps,
        )

    @staticmethod
    def _extend(state: _State, step: Step) -> _State:
        """The child state for ``step``, wiring its transition once."""
        child = state.children.get(step)
        if child is not None:
            return child
        child = _State()
        state.children[step] = child
        lo, hi, ne = step_constraint(step)
        if hi < lo:
            # Provably void (``TD[0]``, ``position() = 1.5``): the
            # state exists for trie sharing but no transition ever
            # reaches it, same as the evaluator selecting nothing.
            return child
        test = step.node_test
        entry = (lo, hi, ne, child)
        if isinstance(test, NameTest):
            if test.name == "*":
                if state.star is None:
                    state.star = []
                state.star.append(entry)
            else:
                # Interned to match the DOM arena: the scan's dict
                # lookups then hit on pointer identity.
                tag = sys.intern(test.name.upper())
                state.by_tag.setdefault(tag, []).append(entry)
        elif test.node_type == "text":
            if state.text is None:
                state.text = []
            state.text.append(entry)
        elif test.node_type == "comment":
            if state.comment is None:
                state.comment = []
            state.comment.append(entry)
        elif test.node_type == "node":
            if state.node is None:
                state.node = []
            state.node.append(entry)
        # Any other node test (processing-instruction) matches nothing
        # in this DOM, mirroring the fast child step.
        return child

    # -- hot path -------------------------------------------------------- #

    def scan(self, context: Element) -> list:
        """One preorder traversal; returns matched nodes per slot.

        Per-parent counters track position among test-matching
        siblings (per tag for named tests, elements for ``*``, node
        kinds for the type tests), so positional constraints are
        direct integer comparisons.  Descent only follows children
        with a live next-state set.
        """
        results: list = [[] for _ in range(self.slot_count)]
        root = self._root
        if not root.alive:
            return results
        stack = [(context, (root,))]
        pop = stack.pop
        while stack:
            element, states = pop()
            children = element.children
            if not children:
                continue
            tag_counts: dict = {}
            elem_count = 0
            text_count = 0
            comment_count = 0
            node_count = 0
            descend = None
            for child in children:
                node_count += 1
                if isinstance(child, Element):
                    elem_count += 1
                    tag = child.tag
                    count = tag_counts.get(tag, 0) + 1
                    tag_counts[tag] = count
                    nxt = None
                    for state in states:
                        targets = state.by_tag.get(tag)
                        if targets is not None:
                            for lo, hi, ne, target in targets:
                                if lo <= count <= hi and count != ne:
                                    for slot in target.emits:
                                        results[slot].append(child)
                                    if target.alive:
                                        if nxt is None:
                                            nxt = [target]
                                        else:
                                            nxt.append(target)
                        if state.star is not None:
                            for lo, hi, ne, target in state.star:
                                if lo <= elem_count <= hi and (
                                    elem_count != ne
                                ):
                                    for slot in target.emits:
                                        results[slot].append(child)
                                    if target.alive:
                                        if nxt is None:
                                            nxt = [target]
                                        else:
                                            nxt.append(target)
                        if state.node is not None:
                            for lo, hi, ne, target in state.node:
                                if lo <= node_count <= hi and (
                                    node_count != ne
                                ):
                                    for slot in target.emits:
                                        results[slot].append(child)
                                    if target.alive:
                                        if nxt is None:
                                            nxt = [target]
                                        else:
                                            nxt.append(target)
                    if nxt is not None and child.children:
                        if descend is None:
                            descend = [(child, nxt)]
                        else:
                            descend.append((child, nxt))
                elif isinstance(child, Text):
                    text_count += 1
                    for state in states:
                        if state.text is not None:
                            for lo, hi, ne, target in state.text:
                                if lo <= text_count <= hi and (
                                    text_count != ne
                                ):
                                    for slot in target.emits:
                                        results[slot].append(child)
                        if state.node is not None:
                            for lo, hi, ne, target in state.node:
                                if lo <= node_count <= hi and (
                                    node_count != ne
                                ):
                                    for slot in target.emits:
                                        results[slot].append(child)
                else:
                    comment_count += 1
                    for state in states:
                        if state.comment is not None:
                            for lo, hi, ne, target in state.comment:
                                if lo <= comment_count <= hi and (
                                    comment_count != ne
                                ):
                                    for slot in target.emits:
                                        results[slot].append(child)
                        if state.node is not None:
                            for lo, hi, ne, target in state.node:
                                if lo <= node_count <= hi and (
                                    node_count != ne
                                ):
                                    for slot in target.emits:
                                        results[slot].append(child)
            if descend is not None:
                if len(descend) > 1:
                    descend.reverse()
                stack.extend(descend)
        return results
