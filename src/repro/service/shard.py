"""Multi-host sharded batch execution with a deterministic merge.

The :class:`~repro.service.engine.BatchExtractionEngine` stamps every
record with its **global submission index** (stream position) and, in
``ordered`` mode, emits records in index order.  That makes scaling a
batch run over many hosts a three-step protocol with *no coordinator
process*:

1. **plan** — :class:`ShardPlanner` splits the corpus (a sorted list
   of page ids) into N deterministic shards, either by stable hash of
   the page id (balanced, order-free) or by contiguous index ranges
   (locality-friendly).  The plan is a small JSON file every host can
   share.
2. **run** — :class:`ShardWorker` executes one shard through an
   ordered :class:`~repro.service.runtime.StreamingRuntime` (a
   :class:`~repro.service.runtime.LoadingPageSource` carries the
   plan's global indices straight onto the records), writing a JSONL
   or per-cluster XML output plus a self-describing
   :class:`ShardManifest` (shard id, submission-index range,
   per-cluster stats, content digest) next to it.
3. **merge** — :class:`ShardMerger` mergesorts any set of JSONL shard
   outputs by global submission index into a single stream that is
   byte-identical to an unsharded ordered run over the same corpus,
   verifying manifests and detecting missing, duplicate and
   overlapping shards along the way.  :class:`XmlShardMerger` does the
   same for XML outputs, fed by the XML sink's ``.index`` sidecars.

A failed or lost host never forces a full re-run:
:func:`incomplete_shards` inspects an output directory against the
plan and names exactly the shards whose manifests are missing, stale
or corrupt — ``shard resume`` re-executes only those.

Because every worker routes with the same deterministically fitted
router and extracts with the same compiled wrappers, shard outputs are
a pure partition of the unsharded output — the merge is a k-way
mergesort, nothing more.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, IO, Iterable, Iterator, Optional, Union

from repro.core.repository import RuleRepository
from repro.errors import ShardMergeError, ShardPlanError
from repro.extraction.postprocess import PostProcessor
from repro.extraction.xml_writer import page_element_name
from repro.service.router import ClusterRouter
from repro.service.runtime import (
    EngineReport,
    LoadingPageSource,
    StreamingRuntime,
)
from repro.service.sink import JsonlSink, XmlDirectorySink
from repro.sites.page import WebPage

PLAN_FORMAT = 1
MANIFEST_FORMAT = 1

STRATEGIES = ("hash", "range")
OUTPUT_FORMATS = ("jsonl", "xml")


def stable_shard(page_id: str, shards: int) -> int:
    """Deterministic shard for a page id (stable across hosts/runs).

    Uses the first 8 bytes of SHA-256 — unlike :func:`hash`, identical
    on every Python process regardless of ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(page_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _corpus_digest(page_ids: list[str]) -> str:
    hasher = hashlib.sha256()
    for page_id in page_ids:
        hasher.update(page_id.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _file_sha256(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1 << 16), b""):
            hasher.update(block)
    return hasher.hexdigest()


def _tree_sha256(directory: Path) -> str:
    """Content digest of a directory: every file, name-keyed, sorted.

    The XML output of one shard is a *directory* (per-cluster document
    + ``.index`` sidecar); this is its manifest digest, stable across
    hosts and filesystems because iteration is name-sorted.
    """
    hasher = hashlib.sha256()
    for path in sorted(directory.rglob("*")):
        if not path.is_file():
            continue
        hasher.update(path.relative_to(directory).as_posix().encode("utf-8"))
        hasher.update(b"\x00")
        with open(path, "rb") as stream:
            for block in iter(lambda: stream.read(1 << 16), b""):
                hasher.update(block)
        hasher.update(b"\x00")
    return hasher.hexdigest()


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #


@dataclass
class ShardPlan:
    """A deterministic corpus split: page id -> (index, shard).

    ``page_ids`` is the corpus in submission order — position *is* the
    global submission index; ``assignments[i]`` is the shard that
    serves index ``i``.
    """

    shards: int
    strategy: str
    page_ids: list[str]
    assignments: list[int]

    @property
    def corpus_digest(self) -> str:
        """Fingerprint of the ordered corpus (shared by manifests)."""
        return _corpus_digest(self.page_ids)

    def pages_for(self, shard: int) -> list[tuple[int, str]]:
        """This shard's ``(global index, page id)`` pairs, index order."""
        if not 0 <= shard < self.shards:
            raise ShardPlanError(
                f"shard {shard} out of range for a {self.shards}-shard plan"
            )
        return [
            (index, page_id)
            for index, page_id in enumerate(self.page_ids)
            if self.assignments[index] == shard
        ]

    def shard_sizes(self) -> list[int]:
        """Pages assigned to each shard, indexed by shard number."""
        sizes = [0] * self.shards
        for shard in self.assignments:
            sizes[shard] += 1
        return sizes

    def to_dict(self) -> dict:
        """The JSON object ``save`` writes."""
        return {
            "format": PLAN_FORMAT,
            "shards": self.shards,
            "strategy": self.strategy,
            "corpus_digest": self.corpus_digest,
            "page_ids": self.page_ids,
            "assignments": self.assignments,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        """Parse a plan object (raises ``ShardPlanError``)."""
        try:
            plan = cls(
                shards=data["shards"],
                strategy=data["strategy"],
                page_ids=list(data["page_ids"]),
                assignments=list(data["assignments"]),
            )
        except (KeyError, TypeError) as exc:
            raise ShardPlanError(f"malformed shard plan: {exc}") from exc
        if data.get("format") != PLAN_FORMAT:
            raise ShardPlanError(
                f"unsupported shard plan format {data.get('format')!r}"
            )
        if len(plan.page_ids) != len(plan.assignments):
            raise ShardPlanError(
                "shard plan page_ids/assignments length mismatch"
            )
        if plan.assignments and not all(
            0 <= shard < plan.shards for shard in plan.assignments
        ):
            raise ShardPlanError("shard plan assignment out of range")
        recorded = data.get("corpus_digest")
        if recorded is not None and recorded != plan.corpus_digest:
            raise ShardPlanError(
                "shard plan corpus digest mismatch (corrupt or edited plan)"
            )
        return plan

    def save(self, path: Union[str, Path]) -> None:
        """Write the plan as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardPlan":
        """Read a plan written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardPlanError(
                f"cannot load shard plan {path}: {exc}"
            ) from exc
        return cls.from_dict(data)


class ShardPlanner:
    """Split a corpus into N deterministic shards.

    Strategies:

    * ``"hash"`` — shard by stable hash of the page id.  Balanced in
      expectation, independent of corpus order: adding pages never
      moves existing ones between shards (mod churn aside).
    * ``"range"`` — contiguous index ranges of near-equal size.  Best
      locality for workers that stream neighbouring files.
    """

    def __init__(self, shards: int, strategy: str = "hash") -> None:
        if shards < 1:
            raise ShardPlanError("shards must be >= 1")
        if strategy not in STRATEGIES:
            raise ShardPlanError(
                f"unknown shard strategy {strategy!r} "
                f"(expected one of {', '.join(STRATEGIES)})"
            )
        self.shards = shards
        self.strategy = strategy

    def plan(self, page_ids: Iterable[str]) -> ShardPlan:
        """Assign ``page_ids`` to shards deterministically."""
        ids = list(page_ids)
        if len(set(ids)) != len(ids):
            raise ShardPlanError("corpus contains duplicate page ids")
        if self.strategy == "hash":
            assignments = [
                stable_shard(page_id, self.shards) for page_id in ids
            ]
        else:
            assignments = []
            if ids:
                per_shard, extra = divmod(len(ids), self.shards)
                for shard in range(self.shards):
                    size = per_shard + (1 if shard < extra else 0)
                    assignments.extend([shard] * size)
        return ShardPlan(
            shards=self.shards, strategy=self.strategy,
            page_ids=ids, assignments=assignments,
        )


# --------------------------------------------------------------------- #
# Workers
# --------------------------------------------------------------------- #


@dataclass
class ShardManifest:
    """Self-describing metadata written next to one shard's output."""

    shard: int
    shards: int
    strategy: str
    corpus_digest: str
    output: str
    sha256: str
    #: ``"jsonl"`` (one file) or ``"xml"`` (a directory of per-cluster
    #: documents + ``.index`` sidecars); absent in pre-format-field
    #: manifests, which were always JSONL.
    output_format: str = "jsonl"
    pages: int = 0
    records: int = 0
    index_min: Optional[int] = None
    index_max: Optional[int] = None
    unroutable: int = 0
    skipped: int = 0
    unreadable: int = 0
    #: Drift events / refits this shard's adaptive router performed
    #: (0 for non-adaptive runs; pre-adaptation manifests omit them).
    drift_events: int = 0
    refits: int = 0
    #: Registry version id of the artifact this shard ran against
    #: (``None`` for registry-less runs; pre-registry manifests omit
    #: it).  Merge/resume refuse to mix shards across versions.
    artifact_version: Optional[str] = None
    #: ``True`` for a cooperative-cancellation checkpoint (SIGINT mid
    #: run): the output is valid, line-complete, and digest-matched,
    #: but covers only a prefix of the slice.  ``shard resume`` re-runs
    #: the shard; merge refuses it.  Pre-cancellation manifests omit
    #: the field (they were always complete).
    interrupted: bool = False
    wall_seconds: float = 0.0
    per_cluster: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON object ``save`` writes."""
        return {"format": MANIFEST_FORMAT, **self.__dict__}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardManifest":
        # Valid JSON need not be an object: a half-written manifest
        # holding `null`/a number/a list must read as malformed, not
        # crash the resume audit whose job is to catch exactly that.
        """Parse a manifest object (raises ``ShardMergeError``)."""
        try:
            payload = dict(data)
        except (TypeError, ValueError) as exc:
            raise ShardMergeError(f"malformed shard manifest: {exc}") from exc
        recorded = payload.pop("format", None)
        if recorded != MANIFEST_FORMAT:
            raise ShardMergeError(
                f"unsupported shard manifest format {recorded!r}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ShardMergeError(f"malformed shard manifest: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        """Write the manifest as pretty-printed JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        """Read a manifest written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardMergeError(
                f"cannot load shard manifest {path}: {exc}"
            ) from exc
        return cls.from_dict(data)


@dataclass
class SliceCheckpoint:
    """In-memory manifest for one gateway batch slice.

    The multi-worker gateway's re-run contract is this layer's
    interrupted checkpoint scaled down to one request: a slice whose
    worker died mid-stream is marked interrupted — its partial records
    dropped, because a retried slice must never half-emit — and
    re-posted elsewhere from the recorded payload.  Extraction is
    deterministic per line, so the re-run reproduces the original
    slice byte for byte and the merged stream stays identical to a
    single-process ``batch`` run.
    """

    index: int
    start_line: int
    lines: int
    #: The slice's raw request bytes: everything a re-run needs.
    payload: bytes = b""
    attempts: int = 0
    interrupted: bool = False
    records: list = field(default_factory=list)

    def begin_attempt(self) -> int:
        """Mark one (re-)run starting; returns the attempt ordinal."""
        self.attempts += 1
        self.interrupted = False
        return self.attempts

    def interrupt(self) -> None:
        """The serving worker died mid-slice: drop partial output."""
        self.records.clear()
        self.interrupted = True

    def complete(self, records) -> None:
        """One full, ordered record set for the slice."""
        self.records = list(records)
        self.interrupted = False

    def to_manifest_dict(self) -> dict:
        """The checkpoint as a manifest-shaped JSON object (logs)."""
        return {
            "slice": self.index,
            "start_line": self.start_line,
            "lines": self.lines,
            "attempts": self.attempts,
            "interrupted": self.interrupted,
            "records": len(self.records),
        }


def shard_basename(shard: int) -> str:
    """The canonical file stem for ``shard`` (``shard-0007``)."""
    return f"shard-{shard:04d}"


class ShardWorker:
    """Run one shard of a plan through an ordered streaming runtime.

    Pages are materialised lazily through ``load_page`` (a
    :class:`~repro.service.runtime.LoadingPageSource` over the plan
    slice) so a worker holds only its in-flight window in memory,
    exactly like ``batch``.  Runtime parameters mirror
    :class:`~repro.service.engine.BatchExtractionEngine`; every worker
    of a run should use identical ones (and an identically fitted
    router) so the shard outputs partition the unsharded output.
    """

    def __init__(
        self,
        repository: RuleRepository,
        plan: ShardPlan,
        shard: int,
        router: Optional[ClusterRouter] = None,
        postprocessor: Optional[PostProcessor] = None,
        workers: int = 2,
        executor: str = "thread",
        chunk_size: int = 16,
        skip_unreadable: bool = False,
        adapter=None,
        metrics=None,
        automaton: bool = True,
        transport: str = "auto",
    ) -> None:
        if not 0 <= shard < plan.shards:
            raise ShardPlanError(
                f"shard {shard} out of range for a {plan.shards}-shard plan"
            )
        self.repository = repository
        self.plan = plan
        self.shard = shard
        self.skip_unreadable = skip_unreadable
        # Adaptive shards refit from their own slice only; outputs then
        # depend on slice-local traffic, so byte-identity with an
        # unsharded run holds only while no refit fires (manifests
        # record the counts for exactly this audit).
        self.runtime = StreamingRuntime(
            repository,
            router=router,
            postprocessor=postprocessor,
            workers=workers,
            executor=executor,
            chunk_size=chunk_size,
            ordered=True,
            adapter=adapter,
            metrics=metrics,
            automaton=automaton,
            transport=transport,
        )

    def run(
        self,
        load_page: Callable[[str], WebPage],
        output_dir: Union[str, Path],
        output_format: str = "jsonl",
        artifact_version: Optional[str] = None,
        cancel=None,
        on_progress=None,
    ) -> tuple[ShardManifest, EngineReport]:
        """Extract this shard; write output + manifest into ``output_dir``.

        ``output_format="jsonl"`` writes one ``shard-NNNN.jsonl`` file;
        ``"xml"`` writes a ``shard-NNNN.xml.d`` directory of per-cluster
        Figure-5 documents with ``.index`` sidecars (what
        :class:`XmlShardMerger` consumes).  Returns the saved manifest
        and the runtime's run report.

        ``cancel`` (a :class:`~repro.service.metrics.CancellationToken`)
        checkpoints the shard cooperatively: in-flight pages drain, the
        partial output is digested and its manifest saved with
        ``interrupted=True`` — the resume audit re-runs exactly those
        shards.  ``on_progress`` is the runtime's progress callback.
        """
        if output_format not in OUTPUT_FORMATS:
            raise ShardPlanError(
                f"unknown shard output format {output_format!r} "
                f"(expected one of {', '.join(OUTPUT_FORMATS)})"
            )
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        base = shard_basename(self.shard)
        assigned = self.plan.pages_for(self.shard)
        source = LoadingPageSource(
            assigned, load_page, skip_unreadable=self.skip_unreadable
        )
        started = time.perf_counter()
        if output_format == "xml":
            output_path = directory / f"{base}.xml.d"
            with XmlDirectorySink(
                output_path, self.repository, record_indices=True
            ) as sink:
                report = self.runtime.run(
                    source, sink, cancel=cancel, on_progress=on_progress
                )
            records = report.pages_served
            digest = _tree_sha256(output_path)
        else:
            output_path = directory / f"{base}.jsonl"
            with JsonlSink(output_path) as jsonl:
                report = self.runtime.run(
                    source, jsonl, cancel=cancel, on_progress=on_progress
                )
                records = jsonl.count
            digest = _file_sha256(output_path)
        manifest = ShardManifest(
            shard=self.shard,
            shards=self.plan.shards,
            strategy=self.plan.strategy,
            corpus_digest=self.plan.corpus_digest,
            output=output_path.name,
            sha256=digest,
            output_format=output_format,
            pages=len(assigned),
            records=records,
            index_min=source.index_min,
            index_max=source.index_max,
            unroutable=report.unroutable_count,
            skipped=report.skipped_count,
            unreadable=len(source.unreadable),
            drift_events=report.drift_events,
            refits=report.refits,
            artifact_version=artifact_version,
            interrupted=report.cancelled,
            wall_seconds=time.perf_counter() - started,
            per_cluster={
                cluster: {
                    "pages": stats.pages,
                    "values": stats.values,
                    "failures": stats.failures,
                    "chunks": stats.chunks,
                    "worker_seconds": stats.worker_seconds,
                }
                for cluster, stats in sorted(report.per_cluster.items())
            },
        )
        manifest.save(directory / f"{base}.manifest.json")
        return manifest, report


# --------------------------------------------------------------------- #
# Merging
# --------------------------------------------------------------------- #


@dataclass
class MergeReport:
    """What one merge saw: shard accounting plus aggregated stats."""

    shards: int = 0
    records: int = 0
    unroutable: int = 0
    skipped: int = 0
    unreadable: int = 0
    drift_events: int = 0
    refits: int = 0
    worker_wall_seconds: float = 0.0
    per_cluster: Dict[str, dict] = field(default_factory=dict)

    def summary(self) -> str:
        """The human-readable multi-line merge summary."""
        lines = [
            f"shards merged   : {self.shards}",
            f"records         : {self.records}",
            f"unroutable      : {self.unroutable}",
            f"no-rules skipped: {self.skipped}",
            f"unreadable      : {self.unreadable}",
            f"worker wall     : {self.worker_wall_seconds:.2f}s total",
        ]
        if self.drift_events or self.refits:
            lines.append(
                f"drift events    : {self.drift_events} "
                f"({self.refits} refit(s))"
            )
        for cluster in sorted(self.per_cluster):
            stats = self.per_cluster[cluster]
            lines.append(
                f"  {cluster}: {stats['pages']} page(s), "
                f"{stats['values']} value(s), {stats['failures']} failure(s)"
            )
        return "\n".join(lines)


def _validate_manifests(
    manifests: list[tuple[Path, ShardManifest]], output_format: str
) -> list[tuple[Path, ShardManifest]]:
    """Shared pre-merge validation (JSONL and XML paths alike).

    Every manifest must describe the same corpus/plan and carry the
    expected output format; shard ids must be exactly ``0..shards-1``.
    Returns the manifests sorted by shard id.
    """
    if not manifests:
        raise ShardMergeError("no shard manifests to merge")
    _, first = manifests[0]
    for path, manifest in manifests[1:]:
        for attribute in (
            "corpus_digest", "shards", "strategy", "artifact_version",
        ):
            if getattr(manifest, attribute) != getattr(first, attribute):
                raise ShardMergeError(
                    f"{path}: {attribute} differs from "
                    f"{manifests[0][0]} — outputs are from "
                    "different runs or plans"
                )
    for path, manifest in manifests:
        if manifest.output_format != output_format:
            raise ShardMergeError(
                f"{path}: {manifest.output_format} shard output cannot "
                f"join a {output_format} merge"
            )
        if manifest.interrupted:
            raise ShardMergeError(
                f"{path}: shard {manifest.shard} is an interrupted "
                "checkpoint (covers only a prefix of its slice); "
                "run `shard resume` to finish it before merging"
            )
    seen: Dict[int, Path] = {}
    for path, manifest in manifests:
        if manifest.shard in seen:
            raise ShardMergeError(
                f"duplicate shard {manifest.shard}: "
                f"{seen[manifest.shard]} and {path}"
            )
        seen[manifest.shard] = path
    missing = sorted(set(range(first.shards)) - set(seen))
    if missing:
        raise ShardMergeError(
            f"missing shard(s) {', '.join(map(str, missing))} "
            f"of {first.shards}"
        )
    return sorted(manifests, key=lambda item: item[1].shard)


def _accumulate_manifest_stats(
    report: "MergeReport", manifest: ShardManifest
) -> None:
    """Fold one shard manifest's accounting into a merge report."""
    report.unroutable += manifest.unroutable
    report.skipped += manifest.skipped
    report.unreadable += manifest.unreadable
    report.drift_events += manifest.drift_events
    report.refits += manifest.refits
    report.worker_wall_seconds += manifest.wall_seconds
    for cluster, stats in manifest.per_cluster.items():
        merged = report.per_cluster.setdefault(
            cluster,
            {"pages": 0, "values": 0, "failures": 0, "chunks": 0,
             "worker_seconds": 0.0},
        )
        for key in merged:
            merged[key] += stats.get(key, 0)


class ShardMerger:
    """Mergesort shard outputs back into one deterministic stream.

    Validation before any output is written:

    * every manifest must describe the same corpus (digest), shard
      count and strategy;
    * shard ids must be exactly ``0..shards-1`` — duplicates and gaps
      are reported by id;
    * each output file must match its manifest's content digest and
      record count (disable with ``verify_digests=False`` for e.g.
      still-compressed transports).

    During the merge, global indices must be strictly increasing —
    a repeated index means overlapping shard outputs, a backwards jump
    within one file means a corrupt (out-of-order) shard file; both
    abort with :class:`ShardMergeError`.  Manifest *files* may be
    passed in any order.
    """

    def __init__(self, verify_digests: bool = True) -> None:
        self.verify_digests = verify_digests

    # -- manifest collection ------------------------------------------- #

    @staticmethod
    def discover(inputs: Iterable[Union[str, Path]]) -> list[Path]:
        """Expand directories to their ``*.manifest.json`` files."""
        paths: list[Path] = []
        for item in inputs:
            path = Path(item)
            if path.is_dir():
                found = sorted(path.glob("*.manifest.json"))
                if not found:
                    raise ShardMergeError(f"no shard manifests in {path}")
                paths.extend(found)
            else:
                paths.append(path)
        return paths

    #: The manifest ``output_format`` this merger consumes.
    output_format = "jsonl"

    def _validate(
        self, manifests: list[tuple[Path, ShardManifest]]
    ) -> list[tuple[Path, ShardManifest]]:
        return _validate_manifests(manifests, self.output_format)

    # -- record streaming ---------------------------------------------- #

    @staticmethod
    def _records(
        path: Path, manifest: ShardManifest
    ) -> Iterator[tuple[int, str]]:
        """Yield ``(global index, raw line)`` with monotonicity checks."""
        previous = -1
        count = 0
        with open(path, "r", encoding="utf-8") as stream:
            for line_number, line in enumerate(stream, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                try:
                    index = json.loads(line)["index"]
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise ShardMergeError(
                        f"{path}:{line_number}: not a shard record: {exc}"
                    ) from exc
                if not isinstance(index, int) or index < 0:
                    raise ShardMergeError(
                        f"{path}:{line_number}: bad submission index "
                        f"{index!r}"
                    )
                if index <= previous:
                    raise ShardMergeError(
                        f"{path}:{line_number}: out-of-order shard file "
                        f"(index {index} after {previous})"
                    )
                previous = index
                count += 1
                yield index, line
        if count != manifest.records:
            raise ShardMergeError(
                f"{path}: {count} record(s) but manifest declares "
                f"{manifest.records}"
            )

    def merge(
        self,
        inputs: Iterable[Union[str, Path]],
        output: Union[str, Path, IO[str]],
    ) -> MergeReport:
        """Merge shard outputs (manifest files or directories) into one
        JSONL stream, byte-identical to an unsharded ordered run."""
        manifest_paths = self.discover(inputs)
        manifests = [
            (path, ShardManifest.load(path)) for path in manifest_paths
        ]
        manifests = self._validate(manifests)
        report = MergeReport(shards=len(manifests))
        streams = []
        for path, manifest in manifests:
            output_path = path.parent / manifest.output
            if not output_path.exists():
                raise ShardMergeError(f"shard output missing: {output_path}")
            if self.verify_digests:
                actual = _file_sha256(output_path)
                if actual != manifest.sha256:
                    raise ShardMergeError(
                        f"{output_path}: content digest mismatch "
                        "(corrupt or regenerated shard output)"
                    )
            streams.append(self._records(output_path, manifest))
            _accumulate_manifest_stats(report, manifest)
        if isinstance(output, (str, Path)):
            stream: IO[str] = open(output, "w", encoding="utf-8")
            owns_stream = True
        else:
            stream = output
            owns_stream = False
        try:
            previous = -1
            for index, line in heapq.merge(*streams):
                if index == previous:
                    raise ShardMergeError(
                        f"overlapping shards: index {index} emitted twice"
                    )
                previous = index
                stream.write(line)
                stream.write("\n")
                report.records += 1
        finally:
            if owns_stream:
                stream.close()
        return report


# --------------------------------------------------------------------- #
# XML merging
# --------------------------------------------------------------------- #

#: Marker strings (indents, element names) become bytes through
#: latin-1; the documents themselves are streamed as raw bytes, split
#: on ``\n`` only, so extracted values containing exotic line-boundary
#: characters (NEL, VT, FF, a lone CR) survive the merge byte-exactly.
_BYTE_CODEC = "latin-1"


class XmlShardMerger:
    """Merge per-cluster XML shard outputs into unsharded documents.

    Each XML-mode shard output is a directory of ``<cluster>.xml``
    documents plus ``<cluster>.index`` sidecars (one decimal global
    submission index per page element, in element order — written by
    :class:`~repro.service.sink.XmlDirectorySink` with
    ``record_indices=True``).  The merge k-way-mergesorts every
    cluster's page elements across shards by sidecar index into
    ``<output_dir>/<cluster>.xml`` — byte-identical to what one
    unsharded ordered ``batch --xml-dir`` run over the same corpus
    writes, with no sidecars.  Documents are streamed element by
    element (like the JSONL merger streams records), so peak memory is
    one in-flight element per shard, not the corpus.

    Validation matches the JSONL path: shared manifest checks
    (:func:`_validate_manifests`, including the output format), an
    optional content digest over each shard directory, strictly
    increasing sidecar indices per shard, sidecar/element count
    agreement per document, per-shard totals against the manifest's
    record count, and duplicate indices across shards (overlap)
    during the merge.
    """

    output_format = "xml"

    def __init__(self, verify_digests: bool = True, indent: str = "  ") -> None:
        self.verify_digests = verify_digests
        self.indent = indent

    def merge(
        self,
        inputs: Iterable[Union[str, Path]],
        output_dir: Union[str, Path],
    ) -> MergeReport:
        """Merge XML shard outputs (manifest files or directories)."""
        manifest_paths = ShardMerger.discover(inputs)
        manifests = _validate_manifests(
            [(path, ShardManifest.load(path)) for path in manifest_paths],
            self.output_format,
        )
        report = MergeReport(shards=len(manifests))
        shard_dirs: list[tuple[Path, ShardManifest]] = []
        for path, manifest in manifests:
            directory = path.parent / manifest.output
            if not directory.is_dir():
                raise ShardMergeError(f"shard output missing: {directory}")
            if self.verify_digests:
                if _tree_sha256(directory) != manifest.sha256:
                    raise ShardMergeError(
                        f"{directory}: content digest mismatch "
                        "(corrupt or regenerated shard output)"
                    )
            shard_dirs.append((directory, manifest))
            _accumulate_manifest_stats(report, manifest)
        clusters = sorted({
            document.stem
            for directory, _ in shard_dirs
            for document in directory.glob("*.xml")
        })
        target = Path(output_dir)
        target.mkdir(parents=True, exist_ok=True)
        elements_per_shard = [0] * len(shard_dirs)
        for cluster in clusters:
            report.records += self._merge_cluster(
                cluster, shard_dirs, target / f"{cluster}.xml",
                elements_per_shard,
            )
        for position, (directory, manifest) in enumerate(shard_dirs):
            if elements_per_shard[position] != manifest.records:
                raise ShardMergeError(
                    f"{directory}: {elements_per_shard[position]} page "
                    f"element(s) but manifest declares {manifest.records}"
                )
        return report

    # -- one cluster --------------------------------------------------- #

    def _merge_cluster(
        self,
        cluster: str,
        shard_dirs: list[tuple[Path, ShardManifest]],
        output_path: Path,
        elements_per_shard: list[int],
    ) -> int:
        streams = []
        header: Optional[list[bytes]] = None
        header_origin: Optional[Path] = None
        for position, (directory, _) in enumerate(shard_dirs):
            document = directory / f"{cluster}.xml"
            if not document.exists():
                continue  # this shard served no page of the cluster
            indices = self._read_sidecar(directory / f"{cluster}.index")
            with open(document, "rb") as stream:
                first_two = [stream.readline(), stream.readline()]
            if not first_two[1].endswith(b"\n"):
                raise ShardMergeError(
                    f"{document}: truncated cluster document"
                )
            if header is None:
                header, header_origin = first_two, document
            elif first_two != header:
                raise ShardMergeError(
                    f"{document}: document header differs from "
                    f"{header_origin} — shards written with different "
                    "sink settings"
                )
            elements_per_shard[position] += len(indices)
            streams.append(self._indexed_elements(document, indices, cluster))
        count = 0
        with open(output_path, "wb") as stream:
            assert header is not None  # clusters come from *.xml globs
            stream.write(header[0])
            stream.write(header[1])
            previous = -1
            for index, element in heapq.merge(*streams):
                if index == previous:
                    raise ShardMergeError(
                        f"overlapping shards: index {index} emitted twice"
                    )
                previous = index
                for line in element:
                    stream.write(line)
                count += 1
            stream.write(f"</{cluster}>\n".encode(_BYTE_CODEC))
        return count

    @staticmethod
    def _read_sidecar(path: Path) -> list[int]:
        """Sidecar indices, checked strictly increasing (JSONL parity)."""
        if not path.exists():
            raise ShardMergeError(
                f"index sidecar missing: {path} (was the shard run with "
                "record_indices enabled?)"
            )
        indices: list[int] = []
        previous = -1
        for line_number, line in enumerate(
            path.read_text(encoding="ascii").splitlines(), start=1
        ):
            try:
                index = int(line)
            except ValueError as exc:
                raise ShardMergeError(
                    f"{path}:{line_number}: not a submission index: {exc}"
                ) from exc
            if index <= previous:
                raise ShardMergeError(
                    f"{path}:{line_number}: out-of-order shard sidecar "
                    f"(index {index} after {previous})"
                )
            previous = index
            indices.append(index)
        return indices

    def _indexed_elements(
        self, document: Path, indices: list[int], cluster: str
    ) -> Iterator[tuple[int, list[bytes]]]:
        """Stream ``(global index, page-element lines)`` from a document.

        Operates on raw bytes split at ``\\n`` only (the sink terminates
        every line with it), so value bytes — including characters
        ``str.splitlines`` would treat as line boundaries — pass through
        untouched.  The sink renders every page as ``<child uri="...">``
        ... ``</child>`` at one indent level; value text is escaped, so
        no content line can collide with the close tag.  Raises when the
        element count disagrees with the sidecar, when stray lines
        appear between elements, or when the document ends before its
        closing root tag.
        """
        child = page_element_name(cluster)
        open_prefix = f"{self.indent}<{child} uri=".encode(_BYTE_CODEC)
        close_line = f"{self.indent}</{child}>\n".encode(_BYTE_CODEC)
        footer = f"</{cluster}>\n".encode(_BYTE_CODEC)
        count = 0
        current: Optional[list[bytes]] = None
        closed = False
        with open(document, "rb") as stream:
            stream.readline()  # header, validated by _merge_cluster
            stream.readline()
            for line in stream:
                if current is None:
                    if line == footer:
                        closed = True
                        break
                    if not line.startswith(open_prefix):
                        raise ShardMergeError(
                            f"{document}: unexpected line between page "
                            f"elements: {line!r}"
                        )
                    current = [line]
                else:
                    current.append(line)
                if line == close_line:
                    if count >= len(indices):
                        raise ShardMergeError(
                            f"{document}: more page elements than its "
                            f"{len(indices)} sidecar index(es)"
                        )
                    yield indices[count], current
                    count += 1
                    current = None
            if current is not None or not closed:
                raise ShardMergeError(
                    f"{document}: truncated cluster document"
                )
        if count != len(indices):
            raise ShardMergeError(
                f"{document}: {count} page element(s) but "
                f"{len(indices)} sidecar index(es)"
            )


# --------------------------------------------------------------------- #
# Resume
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardStatus:
    """One shard's health in an output directory, against a plan."""

    shard: int
    complete: bool
    reason: str = ""
    #: The complete shard's manifest ``output_format`` (``None`` while
    #: incomplete) — resume checks re-runs against it so one forgotten
    #: ``--format`` flag cannot produce an unmergeable mixed directory.
    output_format: Optional[str] = None
    #: The complete shard's registry artifact version (``None`` while
    #: incomplete or for registry-less runs) — resume refuses to mix
    #: re-runs against a different pinned version into the directory.
    artifact_version: Optional[str] = None


def shard_statuses(
    plan: ShardPlan,
    output_dir: Union[str, Path],
    verify_digests: bool = True,
) -> list[ShardStatus]:
    """Audit every shard of a plan against an output directory.

    A shard is complete when its manifest exists, parses, describes
    this plan (corpus digest, shard count, strategy, shard id), and
    its output exists with a matching content digest.  Anything else —
    a host that never ran, died mid-write, ran a different plan, or
    left a corrupt file — yields an explanatory reason, and ``shard
    resume`` re-runs exactly those shards.
    """
    directory = Path(output_dir)
    statuses: list[ShardStatus] = []

    def incomplete(shard: int, reason: str) -> ShardStatus:
        """A not-complete status for ``shard`` with ``reason``."""
        return ShardStatus(shard=shard, complete=False, reason=reason)

    for shard in range(plan.shards):
        manifest_path = directory / f"{shard_basename(shard)}.manifest.json"
        if not manifest_path.exists():
            statuses.append(incomplete(shard, "manifest missing"))
            continue
        try:
            manifest = ShardManifest.load(manifest_path)
        except ShardMergeError as exc:
            statuses.append(incomplete(shard, f"manifest unreadable: {exc}"))
            continue
        if manifest.shard != shard:
            statuses.append(incomplete(
                shard, f"manifest describes shard {manifest.shard}"
            ))
            continue
        if (
            manifest.corpus_digest != plan.corpus_digest
            or manifest.shards != plan.shards
            or manifest.strategy != plan.strategy
        ):
            statuses.append(incomplete(shard, "manifest from another plan"))
            continue
        if manifest.interrupted:
            # The checkpoint is internally consistent (digest matches
            # the partial output) but covers only a prefix — re-run.
            statuses.append(incomplete(shard, "interrupted checkpoint"))
            continue
        output_path = directory / manifest.output
        if manifest.output_format == "xml":
            if not output_path.is_dir():
                statuses.append(incomplete(shard, "output missing"))
                continue
            digest = _tree_sha256(output_path) if verify_digests else None
        else:
            if not output_path.is_file():
                statuses.append(incomplete(shard, "output missing"))
                continue
            digest = _file_sha256(output_path) if verify_digests else None
        if digest is not None and digest != manifest.sha256:
            statuses.append(incomplete(shard, "output digest mismatch"))
            continue
        statuses.append(ShardStatus(
            shard=shard, complete=True,
            output_format=manifest.output_format,
            artifact_version=manifest.artifact_version,
        ))
    return statuses


def incomplete_shards(
    plan: ShardPlan,
    output_dir: Union[str, Path],
    verify_digests: bool = True,
) -> list[ShardStatus]:
    """The shards ``shard resume`` must re-run, with reasons."""
    return [
        status
        for status in shard_statuses(plan, output_dir, verify_digests)
        if not status.complete
    ]
