"""Multi-host sharded batch execution with a deterministic merge.

The :class:`~repro.service.engine.BatchExtractionEngine` stamps every
record with its **global submission index** (stream position) and, in
``ordered`` mode, emits records in index order.  That makes scaling a
batch run over many hosts a three-step protocol with *no coordinator
process*:

1. **plan** — :class:`ShardPlanner` splits the corpus (a sorted list
   of page ids) into N deterministic shards, either by stable hash of
   the page id (balanced, order-free) or by contiguous index ranges
   (locality-friendly).  The plan is a small JSON file every host can
   share.
2. **run** — :class:`ShardWorker` executes one shard through an
   ordered engine, writing a JSONL sink output plus a self-describing
   :class:`ShardManifest` (shard id, submission-index range,
   per-cluster stats, content digest) next to it.
3. **merge** — :class:`ShardMerger` mergesorts any set of shard
   outputs by global submission index into a single stream that is
   byte-identical to an unsharded ordered run over the same corpus,
   verifying manifests and detecting missing, duplicate and
   overlapping shards along the way.

Because every worker routes with the same deterministically fitted
router and extracts with the same compiled wrappers, shard outputs are
a pure partition of the unsharded output — the merge is a k-way
mergesort, nothing more.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, IO, Iterable, Iterator, Optional, Union

from repro.core.repository import RuleRepository
from repro.errors import ShardMergeError, ShardPlanError
from repro.extraction.postprocess import PostProcessor
from repro.service.engine import BatchExtractionEngine, EngineReport
from repro.service.router import ClusterRouter
from repro.service.sink import JsonlSink, PageRecord, ResultSink
from repro.sites.page import WebPage

PLAN_FORMAT = 1
MANIFEST_FORMAT = 1

STRATEGIES = ("hash", "range")


def stable_shard(page_id: str, shards: int) -> int:
    """Deterministic shard for a page id (stable across hosts/runs).

    Uses the first 8 bytes of SHA-256 — unlike :func:`hash`, identical
    on every Python process regardless of ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(page_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _corpus_digest(page_ids: list[str]) -> str:
    hasher = hashlib.sha256()
    for page_id in page_ids:
        hasher.update(page_id.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


def _file_sha256(path: Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as stream:
        for block in iter(lambda: stream.read(1 << 16), b""):
            hasher.update(block)
    return hasher.hexdigest()


# --------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------- #


@dataclass
class ShardPlan:
    """A deterministic corpus split: page id -> (index, shard).

    ``page_ids`` is the corpus in submission order — position *is* the
    global submission index; ``assignments[i]`` is the shard that
    serves index ``i``.
    """

    shards: int
    strategy: str
    page_ids: list[str]
    assignments: list[int]

    @property
    def corpus_digest(self) -> str:
        """Fingerprint of the ordered corpus (shared by manifests)."""
        return _corpus_digest(self.page_ids)

    def pages_for(self, shard: int) -> list[tuple[int, str]]:
        """This shard's ``(global index, page id)`` pairs, index order."""
        if not 0 <= shard < self.shards:
            raise ShardPlanError(
                f"shard {shard} out of range for a {self.shards}-shard plan"
            )
        return [
            (index, page_id)
            for index, page_id in enumerate(self.page_ids)
            if self.assignments[index] == shard
        ]

    def shard_sizes(self) -> list[int]:
        sizes = [0] * self.shards
        for shard in self.assignments:
            sizes[shard] += 1
        return sizes

    def to_dict(self) -> dict:
        return {
            "format": PLAN_FORMAT,
            "shards": self.shards,
            "strategy": self.strategy,
            "corpus_digest": self.corpus_digest,
            "page_ids": self.page_ids,
            "assignments": self.assignments,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        try:
            plan = cls(
                shards=data["shards"],
                strategy=data["strategy"],
                page_ids=list(data["page_ids"]),
                assignments=list(data["assignments"]),
            )
        except (KeyError, TypeError) as exc:
            raise ShardPlanError(f"malformed shard plan: {exc}") from exc
        if data.get("format") != PLAN_FORMAT:
            raise ShardPlanError(
                f"unsupported shard plan format {data.get('format')!r}"
            )
        if len(plan.page_ids) != len(plan.assignments):
            raise ShardPlanError(
                "shard plan page_ids/assignments length mismatch"
            )
        if plan.assignments and not all(
            0 <= shard < plan.shards for shard in plan.assignments
        ):
            raise ShardPlanError("shard plan assignment out of range")
        recorded = data.get("corpus_digest")
        if recorded is not None and recorded != plan.corpus_digest:
            raise ShardPlanError(
                "shard plan corpus digest mismatch (corrupt or edited plan)"
            )
        return plan

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardPlan":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardPlanError(f"cannot load shard plan {path}: {exc}")
        return cls.from_dict(data)


class ShardPlanner:
    """Split a corpus into N deterministic shards.

    Strategies:

    * ``"hash"`` — shard by stable hash of the page id.  Balanced in
      expectation, independent of corpus order: adding pages never
      moves existing ones between shards (mod churn aside).
    * ``"range"`` — contiguous index ranges of near-equal size.  Best
      locality for workers that stream neighbouring files.
    """

    def __init__(self, shards: int, strategy: str = "hash") -> None:
        if shards < 1:
            raise ShardPlanError("shards must be >= 1")
        if strategy not in STRATEGIES:
            raise ShardPlanError(
                f"unknown shard strategy {strategy!r} "
                f"(expected one of {', '.join(STRATEGIES)})"
            )
        self.shards = shards
        self.strategy = strategy

    def plan(self, page_ids: Iterable[str]) -> ShardPlan:
        ids = list(page_ids)
        if len(set(ids)) != len(ids):
            raise ShardPlanError("corpus contains duplicate page ids")
        if self.strategy == "hash":
            assignments = [
                stable_shard(page_id, self.shards) for page_id in ids
            ]
        else:
            assignments = []
            if ids:
                per_shard, extra = divmod(len(ids), self.shards)
                for shard in range(self.shards):
                    size = per_shard + (1 if shard < extra else 0)
                    assignments.extend([shard] * size)
        return ShardPlan(
            shards=self.shards, strategy=self.strategy,
            page_ids=ids, assignments=assignments,
        )


# --------------------------------------------------------------------- #
# Workers
# --------------------------------------------------------------------- #


@dataclass
class ShardManifest:
    """Self-describing metadata written next to one shard's output."""

    shard: int
    shards: int
    strategy: str
    corpus_digest: str
    output: str
    sha256: str
    pages: int = 0
    records: int = 0
    index_min: Optional[int] = None
    index_max: Optional[int] = None
    unroutable: int = 0
    skipped: int = 0
    unreadable: int = 0
    wall_seconds: float = 0.0
    per_cluster: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"format": MANIFEST_FORMAT, **self.__dict__}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardManifest":
        payload = dict(data)
        if payload.pop("format", None) != MANIFEST_FORMAT:
            raise ShardMergeError(
                f"unsupported shard manifest format {data.get('format')!r}"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ShardMergeError(f"malformed shard manifest: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ShardManifest":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardMergeError(f"cannot load shard manifest {path}: {exc}")
        return cls.from_dict(data)


def shard_basename(shard: int) -> str:
    return f"shard-{shard:04d}"


class GlobalIndexSink(ResultSink):
    """Rewrite engine-local submission indices to corpus-global ones.

    The producer feeds the engine pages in global-index order while
    appending each yielded page's global index to ``global_indices``;
    the engine numbers pages locally 0..k-1, so the k-th record
    drained belongs to the k-th yielded page — a positional remap.
    Used by shard workers (plan-global indices) and by ``batch`` when
    unreadable files are skipped (so indices stay corpus positions and
    sharded/unsharded outputs agree).
    """

    def __init__(self, inner: ResultSink, global_indices: list[int]) -> None:
        self.inner = inner
        self._globals = global_indices

    def write(self, record: PageRecord) -> None:
        record.index = self._globals[record.index]
        self.inner.write(record)

    def close(self) -> None:
        self.inner.close()


class ShardWorker:
    """Run one shard of a plan through an ordered extraction engine.

    Pages are materialised lazily through ``load_page`` so a worker
    holds only its in-flight window in memory, exactly like ``batch``.
    Engine parameters mirror :class:`BatchExtractionEngine`; every
    worker of a run should use identical ones (and an identically
    fitted router) so the shard outputs partition the unsharded output.
    """

    def __init__(
        self,
        repository: RuleRepository,
        plan: ShardPlan,
        shard: int,
        router: Optional[ClusterRouter] = None,
        postprocessor: Optional[PostProcessor] = None,
        workers: int = 2,
        executor: str = "thread",
        chunk_size: int = 16,
        skip_unreadable: bool = False,
    ) -> None:
        if not 0 <= shard < plan.shards:
            raise ShardPlanError(
                f"shard {shard} out of range for a {plan.shards}-shard plan"
            )
        self.repository = repository
        self.plan = plan
        self.shard = shard
        self.skip_unreadable = skip_unreadable
        self._unreadable = 0
        self.engine = BatchExtractionEngine(
            repository,
            router=router,
            postprocessor=postprocessor,
            workers=workers,
            executor=executor,
            chunk_size=chunk_size,
            ordered=True,
        )

    def _pages(
        self,
        assigned: list[tuple[int, str]],
        load_page: Callable[[str], WebPage],
        global_indices: list[int],
    ) -> Iterator[WebPage]:
        for index, page_id in assigned:
            try:
                page = load_page(page_id)
            except (OSError, UnicodeDecodeError):
                if not self.skip_unreadable:
                    raise
                self._unreadable += 1
                continue
            global_indices.append(index)
            yield page

    def run(
        self,
        load_page: Callable[[str], WebPage],
        output_dir: Union[str, Path],
    ) -> tuple[ShardManifest, EngineReport]:
        """Extract this shard; write JSONL + manifest into ``output_dir``.

        Returns the saved manifest and the engine's run report.
        """
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        base = shard_basename(self.shard)
        output_path = directory / f"{base}.jsonl"
        assigned = self.plan.pages_for(self.shard)
        global_indices: list[int] = []
        self._unreadable = 0
        started = time.perf_counter()
        with JsonlSink(output_path) as jsonl:
            sink = GlobalIndexSink(jsonl, global_indices)
            report = self.engine.run(
                self._pages(assigned, load_page, global_indices), sink
            )
            records = jsonl.count
        manifest = ShardManifest(
            shard=self.shard,
            shards=self.plan.shards,
            strategy=self.plan.strategy,
            corpus_digest=self.plan.corpus_digest,
            output=output_path.name,
            sha256=_file_sha256(output_path),
            pages=len(assigned),
            records=records,
            index_min=global_indices[0] if global_indices else None,
            index_max=global_indices[-1] if global_indices else None,
            unroutable=report.unroutable_count,
            skipped=report.skipped_count,
            unreadable=self._unreadable,
            wall_seconds=time.perf_counter() - started,
            per_cluster={
                cluster: {
                    "pages": stats.pages,
                    "values": stats.values,
                    "failures": stats.failures,
                    "chunks": stats.chunks,
                    "worker_seconds": stats.worker_seconds,
                }
                for cluster, stats in sorted(report.per_cluster.items())
            },
        )
        manifest.save(directory / f"{base}.manifest.json")
        return manifest, report


# --------------------------------------------------------------------- #
# Merging
# --------------------------------------------------------------------- #


@dataclass
class MergeReport:
    """What one merge saw: shard accounting plus aggregated stats."""

    shards: int = 0
    records: int = 0
    unroutable: int = 0
    skipped: int = 0
    unreadable: int = 0
    worker_wall_seconds: float = 0.0
    per_cluster: Dict[str, dict] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"shards merged   : {self.shards}",
            f"records         : {self.records}",
            f"unroutable      : {self.unroutable}",
            f"no-rules skipped: {self.skipped}",
            f"unreadable      : {self.unreadable}",
            f"worker wall     : {self.worker_wall_seconds:.2f}s total",
        ]
        for cluster in sorted(self.per_cluster):
            stats = self.per_cluster[cluster]
            lines.append(
                f"  {cluster}: {stats['pages']} page(s), "
                f"{stats['values']} value(s), {stats['failures']} failure(s)"
            )
        return "\n".join(lines)


class ShardMerger:
    """Mergesort shard outputs back into one deterministic stream.

    Validation before any output is written:

    * every manifest must describe the same corpus (digest), shard
      count and strategy;
    * shard ids must be exactly ``0..shards-1`` — duplicates and gaps
      are reported by id;
    * each output file must match its manifest's content digest and
      record count (disable with ``verify_digests=False`` for e.g.
      still-compressed transports).

    During the merge, global indices must be strictly increasing —
    a repeated index means overlapping shard outputs, a backwards jump
    within one file means a corrupt (out-of-order) shard file; both
    abort with :class:`ShardMergeError`.  Manifest *files* may be
    passed in any order.
    """

    def __init__(self, verify_digests: bool = True) -> None:
        self.verify_digests = verify_digests

    # -- manifest collection ------------------------------------------- #

    @staticmethod
    def discover(inputs: Iterable[Union[str, Path]]) -> list[Path]:
        """Expand directories to their ``*.manifest.json`` files."""
        paths: list[Path] = []
        for item in inputs:
            path = Path(item)
            if path.is_dir():
                found = sorted(path.glob("*.manifest.json"))
                if not found:
                    raise ShardMergeError(f"no shard manifests in {path}")
                paths.extend(found)
            else:
                paths.append(path)
        return paths

    def _validate(
        self, manifests: list[tuple[Path, ShardManifest]]
    ) -> list[tuple[Path, ShardManifest]]:
        if not manifests:
            raise ShardMergeError("no shard manifests to merge")
        _, first = manifests[0]
        for path, manifest in manifests[1:]:
            for attribute in ("corpus_digest", "shards", "strategy"):
                if getattr(manifest, attribute) != getattr(first, attribute):
                    raise ShardMergeError(
                        f"{path}: {attribute} differs from "
                        f"{manifests[0][0]} — outputs are from "
                        "different runs or plans"
                    )
        seen: Dict[int, Path] = {}
        for path, manifest in manifests:
            if manifest.shard in seen:
                raise ShardMergeError(
                    f"duplicate shard {manifest.shard}: "
                    f"{seen[manifest.shard]} and {path}"
                )
            seen[manifest.shard] = path
        missing = sorted(set(range(first.shards)) - set(seen))
        if missing:
            raise ShardMergeError(
                f"missing shard(s) {', '.join(map(str, missing))} "
                f"of {first.shards}"
            )
        return sorted(manifests, key=lambda item: item[1].shard)

    # -- record streaming ---------------------------------------------- #

    @staticmethod
    def _records(
        path: Path, manifest: ShardManifest
    ) -> Iterator[tuple[int, str]]:
        """Yield ``(global index, raw line)`` with monotonicity checks."""
        previous = -1
        count = 0
        with open(path, "r", encoding="utf-8") as stream:
            for line_number, line in enumerate(stream, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                try:
                    index = json.loads(line)["index"]
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise ShardMergeError(
                        f"{path}:{line_number}: not a shard record: {exc}"
                    )
                if not isinstance(index, int) or index < 0:
                    raise ShardMergeError(
                        f"{path}:{line_number}: bad submission index "
                        f"{index!r}"
                    )
                if index <= previous:
                    raise ShardMergeError(
                        f"{path}:{line_number}: out-of-order shard file "
                        f"(index {index} after {previous})"
                    )
                previous = index
                count += 1
                yield index, line
        if count != manifest.records:
            raise ShardMergeError(
                f"{path}: {count} record(s) but manifest declares "
                f"{manifest.records}"
            )

    def merge(
        self,
        inputs: Iterable[Union[str, Path]],
        output: Union[str, Path, IO[str]],
    ) -> MergeReport:
        """Merge shard outputs (manifest files or directories) into one
        JSONL stream, byte-identical to an unsharded ordered run."""
        manifest_paths = self.discover(inputs)
        manifests = [
            (path, ShardManifest.load(path)) for path in manifest_paths
        ]
        manifests = self._validate(manifests)
        report = MergeReport(shards=len(manifests))
        streams = []
        for path, manifest in manifests:
            output_path = path.parent / manifest.output
            if not output_path.exists():
                raise ShardMergeError(f"shard output missing: {output_path}")
            if self.verify_digests:
                actual = _file_sha256(output_path)
                if actual != manifest.sha256:
                    raise ShardMergeError(
                        f"{output_path}: content digest mismatch "
                        "(corrupt or regenerated shard output)"
                    )
            streams.append(self._records(output_path, manifest))
            report.unroutable += manifest.unroutable
            report.skipped += manifest.skipped
            report.unreadable += manifest.unreadable
            report.worker_wall_seconds += manifest.wall_seconds
            for cluster, stats in manifest.per_cluster.items():
                merged = report.per_cluster.setdefault(
                    cluster,
                    {"pages": 0, "values": 0, "failures": 0, "chunks": 0,
                     "worker_seconds": 0.0},
                )
                for key in merged:
                    merged[key] += stats.get(key, 0)
        if isinstance(output, (str, Path)):
            stream: IO[str] = open(output, "w", encoding="utf-8")
            owns_stream = True
        else:
            stream = output
            owns_stream = False
        try:
            previous = -1
            for index, line in heapq.merge(*streams):
                if index == previous:
                    raise ShardMergeError(
                        f"overlapping shards: index {index} emitted twice"
                    )
                previous = index
                stream.write(line)
                stream.write("\n")
                report.records += 1
        finally:
            if owns_stream:
                stream.close()
        return report
