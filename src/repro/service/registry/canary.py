"""Canary rollout of router refits: shadow, compare, promote or roll back.

:class:`~repro.service.adapt.AdaptiveRouter` hands every refit product
here instead of installing it directly.  The controller

1. **publishes** the candidate to the :class:`~repro.service.registry.
   store.ArtifactRegistry` (parent = the incumbent version, trigger =
   the drift event that forced the refit),
2. **shadows** it: a configurable fraction of served pages is routed by
   *both* incumbent and candidate (the incumbent's decision always
   wins; the candidate only observes), and where the two disagree the
   candidate's extraction is dry-run against the already-compiled
   wrappers to estimate its failure rate,
3. **verdicts** once the sliding window holds enough paired samples:
   the candidate must not lose routed fraction, gain extraction
   failures, or gain low-margin routes beyond ``tolerance`` — otherwise
   it is rolled back with the losing comparisons as the logged reason,
4. **promotes** atomically on a pass: one assignment swaps the profile
   list inside the live router (the same lock-free install
   ``ClusterRouter.refit`` relies on) and the registry pin moves to the
   candidate version, making rollback a one-command operation.

Lock ordering: the adapter calls :meth:`CanaryController.stage` while
holding its own lock, and the controller takes only its *own* lock and
never calls back into the adapter — so adapter-lock > canary-lock is
acyclic and deadlock-free.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import LintGateError
from repro.service.metrics import default_registry
from repro.service.registry.store import ArtifactRegistry
from repro.service.router import ClusterRouter, RouteDecision, UNROUTABLE


@dataclass(frozen=True)
class ShadowEvent:
    """A candidate version entered shadow routing."""

    version: str
    parent: Optional[str]
    trigger_kind: str
    trigger_key: str
    fraction: float
    window: int

    def to_dict(self) -> dict:
        """The JSON payload recorded in the audit log."""
        return {"event": "shadow", **self.__dict__}


@dataclass(frozen=True)
class PromoteEvent:
    """A shadowed candidate won its comparison and went live."""

    version: str
    parent: Optional[str]
    samples: int
    incumbent: dict
    candidate: dict
    reason: str

    def to_dict(self) -> dict:
        """The JSON payload recorded in the audit log."""
        return {"event": "promote", **self.__dict__}


@dataclass(frozen=True)
class RollbackEvent:
    """A shadowed candidate lost its comparison and was discarded."""

    version: str
    parent: Optional[str]
    samples: int
    incumbent: dict
    candidate: dict
    reason: str

    def to_dict(self) -> dict:
        """The JSON payload recorded in the audit log."""
        return {"event": "rollback", **self.__dict__}


@dataclass(frozen=True)
class LintRefusalEvent:
    """The lint gate refused to publish a refit candidate."""

    parent: Optional[str]
    trigger_kind: str
    trigger_key: str
    codes: tuple
    findings: int
    reason: str

    def to_dict(self) -> dict:
        """The JSON payload recorded in the audit log."""
        data = dict(self.__dict__)
        data["codes"] = list(self.codes)
        return {"event": "lint_refusal", **data}


class CanaryController:
    """Stages refit candidates as shadows and promotes or rolls back.

    Args:
        router: the **live** router whose profile list a promotion
            swaps (the adapter and runtime keep routing through it).
        repository: the rule repository published alongside routers.
        registry: artifact store for versioning; ``None`` runs the
            canary loop in memory only (no persistence, no pin moves).
        fraction: fraction of served pages shadow-routed by the
            candidate; ``0`` promotes immediately on stage (canary
            disabled, registry versioning still applies).
        window: sliding-window size for outcome comparison.
        min_samples: paired samples required before a verdict
            (defaults to ``window``).
        tolerance: how much worse the candidate may score on any
            metric before the verdict flips to rollback.
        low_margin: margins below this count as low-margin routes
            (mirrors the adapter's ``--drift-margin``).
        extract: optional ``(cluster, page) -> failed`` dry-run used to
            estimate the candidate's extraction-failure rate where it
            disagrees with the incumbent (:func:`wrapper_extractor`).
        log: optional :class:`~repro.service.adapt.AdaptationLog`;
            shadow/promote/rollback events are recorded beside the
            adapter's drift/refit events.
        metrics: a :class:`~repro.service.metrics.MetricsRegistry`
            receiving the shadow-page/promotion/rollback counters
            (default: the process-wide registry).
        allow_findings: forward error-severity analyzer findings past
            the registry's publish-time lint gate (the CLI's
            ``--allow-findings``).  Off by default: a refit candidate
            with error findings is *refused* — the refusal is recorded
            in the adaptation log and the incumbent keeps serving.
    """

    def __init__(
        self,
        router: ClusterRouter,
        repository,
        registry: Optional[ArtifactRegistry] = None,
        fraction: float = 0.1,
        window: int = 64,
        min_samples: Optional[int] = None,
        tolerance: float = 0.05,
        low_margin: float = 0.0,
        extract: Optional[Callable] = None,
        log=None,
        metrics=None,
        allow_findings: bool = False,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"canary fraction must be in [0, 1]: {fraction}")
        if window <= 0:
            raise ValueError(f"canary window must be positive: {window}")
        self.router = router
        self.repository = repository
        self.registry = registry
        self.fraction = fraction
        self.window = window
        self.min_samples = window if min_samples is None else min_samples
        self.tolerance = tolerance
        self.low_margin = low_margin
        self.extract = extract
        self.log = log
        self.allow_findings = allow_findings
        self.active_version: Optional[str] = None
        self.candidate: Optional[ClusterRouter] = None
        self.candidate_version: Optional[str] = None
        self.promotions = 0
        self.rollbacks = 0
        self.lint_refusals = 0
        self.shadow_pages = 0
        self.shadow_extractions = 0
        registry_m = metrics if metrics is not None else default_registry()
        self._m_shadow = registry_m.from_spec("repro_canary_shadow_pages_total")
        self._m_promotions = registry_m.from_spec(
            "repro_canary_promotions_total"
        )
        self._m_rollbacks = registry_m.from_spec(
            "repro_canary_rollbacks_total"
        )
        self._acc = 0.0
        # paired (inc_routed, inc_low, cand_routed, cand_low, cand_failed)
        self._pairs: deque = deque(maxlen=window)
        self._incumbent_failures: deque = deque(maxlen=window)
        self._lock = threading.Lock()

    # -- registry adoption ---------------------------------------------- #

    @property
    def staged(self) -> bool:
        """Whether a candidate is currently shadow-routing."""
        return self.candidate is not None

    def ensure_baseline(self, source: str = "initial", fit_pages: int = 0):
        """Adopt the registry pin, or publish+pin the live artifact.

        Returns the active :class:`~repro.service.registry.store.
        VersionManifest` (``None`` without a registry), so serve starts
        with a rollback target before the first refit ever happens.
        """
        if self.registry is None:
            return None
        with self._lock:
            pinned = self.registry.pinned()
            if pinned is not None:
                manifest = self.registry.manifest(pinned)
                self.active_version = pinned
                return manifest
            manifest = self.registry.publish(
                self.repository,
                self.router,
                source=source,
                fit_pages=fit_pages,
                allow_findings=self.allow_findings,
            )
            self.registry.pin(manifest.version)
            self.active_version = manifest.version
            return manifest

    # -- the rollout loop ----------------------------------------------- #

    def stage(self, candidate: ClusterRouter, trigger, refit) -> None:
        """Install a refit product as the shadow candidate.

        Called by the adapter with its lock held; publishes the
        candidate (parent = incumbent version, trigger = the drift
        event) and opens a fresh comparison window.  Staging over an
        unresolved candidate replaces it — the newest refit reflects
        the most data, so the older shadow is simply superseded.

        Publishing runs the registry's lint gate: a candidate with
        error-severity analyzer findings is refused (unless the
        controller was built with ``allow_findings``) — the refusal is
        logged to the adaptation log, the incumbent keeps serving, and
        no shadow window opens for the defective candidate.
        """
        with self._lock:
            version = None
            if self.registry is not None:
                try:
                    manifest = self.registry.publish(
                        self.repository,
                        candidate,
                        parent=self.active_version,
                        source="refit",
                        fit_pages=(
                            refit.reservoir_pages + refit.unroutable_pages
                        ),
                        trigger=trigger.to_dict(),
                        allow_findings=self.allow_findings,
                    )
                except LintGateError as exc:
                    self.lint_refusals += 1
                    self._record(
                        LintRefusalEvent(
                            parent=self.active_version,
                            trigger_kind=trigger.kind,
                            trigger_key=trigger.key,
                            codes=tuple(sorted(
                                {f.code for f in exc.findings}
                            )),
                            findings=len(exc.findings),
                            reason=str(exc),
                        )
                    )
                    return
                version = manifest.version
            self.candidate = candidate
            self.candidate_version = version
            self._pairs.clear()
            self._acc = 0.0
            if self.fraction <= 0.0:
                self._promote_locked("no canary traffic configured")
                return
            self._record(
                ShadowEvent(
                    version=version or "",
                    parent=self.active_version,
                    trigger_kind=trigger.kind,
                    trigger_key=trigger.key,
                    fraction=self.fraction,
                    window=self.window,
                )
            )

    def observe(
        self, page, signature: dict, incumbent: RouteDecision
    ) -> None:
        """Shadow-route one served page (called outside the adapter lock).

        A deterministic accumulator samples exactly ``fraction`` of
        pages (no RNG: replays are reproducible).  Where incumbent and
        candidate route a sampled page to *different* clusters and a
        dry-run extractor is available, the candidate's choice is
        extracted to score its failure rate; where they agree, the
        candidate inherits the incumbent's live outcome.
        """
        with self._lock:
            candidate = self.candidate
            if candidate is None:
                return
            self._acc += self.fraction
            if self._acc < 1.0:
                return
            self._acc -= 1.0
            decision = candidate.route_signature(signature)
            self.shadow_pages += 1
            self._m_shadow.inc()
            inc_routed = incumbent.cluster != UNROUTABLE
            cand_routed = decision.cluster != UNROUTABLE
            cand_failed = None
            if (
                cand_routed
                and decision.cluster != incumbent.cluster
                and self.extract is not None
            ):
                self.shadow_extractions += 1
                cand_failed = bool(self.extract(decision.cluster, page))
            self._pairs.append(
                (
                    inc_routed,
                    inc_routed and incumbent.margin < self.low_margin,
                    cand_routed,
                    cand_routed and decision.margin < self.low_margin,
                    cand_failed,
                )
            )
            if len(self._pairs) >= self.min_samples:
                self._verdict_locked()

    def note_result(self, cluster: str, failed: bool) -> None:
        """Record a live extraction outcome (the incumbent's record)."""
        with self._lock:
            if self.candidate is not None and cluster != UNROUTABLE:
                self._incumbent_failures.append(bool(failed))

    # -- verdicts (lock held) ------------------------------------------- #

    def _rates(self) -> tuple:
        """Windowed outcome rates for both routers, per sampled page.

        ``failure_rate`` is per *routed* page; the verdict's extraction
        axis compares ``clean`` — the fraction of all sampled pages
        routed AND extracted failure-free — because an incumbent that
        routes nothing has a flawless failure rate while serving
        nobody, and a candidate must never lose to that.
        """
        pairs = list(self._pairs)
        n = len(pairs)
        inc_routed = sum(1 for p in pairs if p[0]) / n
        inc_low = sum(1 for p in pairs if p[1]) / n
        cand_routed = sum(1 for p in pairs if p[2]) / n
        cand_low = sum(1 for p in pairs if p[3]) / n
        failures = list(self._incumbent_failures)
        inc_fail = (
            sum(1 for f in failures if f) / len(failures) if failures else 0.0
        )
        # Candidate failure rate: decided dry-runs where the routes
        # diverged, plus the incumbent's own live rate where they
        # agreed (same cluster -> same wrapper -> same outcome).
        decided = [p[4] for p in pairs if p[4] is not None]
        shared = sum(1 for p in pairs if p[2] and p[4] is None)
        scored = len(decided) + shared
        cand_fail = (
            (sum(1 for f in decided if f) + shared * inc_fail) / scored
            if scored
            else 0.0
        )
        incumbent = {
            "routed": inc_routed,
            "failure_rate": inc_fail,
            "low_margin": inc_low,
            "clean": inc_routed * (1.0 - inc_fail),
        }
        candidate = {
            "routed": cand_routed,
            "failure_rate": cand_fail,
            "low_margin": cand_low,
            "clean": cand_routed * (1.0 - cand_fail),
        }
        return incumbent, candidate

    def _verdict_locked(self) -> None:
        incumbent, candidate = self._rates()
        reasons = []
        if candidate["routed"] + self.tolerance < incumbent["routed"]:
            reasons.append(
                f"routed fraction dropped "
                f"{incumbent['routed']:.3f} -> {candidate['routed']:.3f}"
            )
        if candidate["clean"] + self.tolerance < incumbent["clean"]:
            reasons.append(
                f"clean-serve fraction dropped "
                f"{incumbent['clean']:.3f} -> {candidate['clean']:.3f} "
                f"(extraction failure rate "
                f"{incumbent['failure_rate']:.3f} -> "
                f"{candidate['failure_rate']:.3f})"
            )
        if candidate["low_margin"] > incumbent["low_margin"] + self.tolerance:
            reasons.append(
                f"low-margin routes rose "
                f"{incumbent['low_margin']:.3f} -> {candidate['low_margin']:.3f}"
            )
        if reasons:
            self._rollback_locked("; ".join(reasons), incumbent, candidate)
        else:
            self._promote_locked(
                "candidate matched or beat incumbent over the window",
                incumbent,
                candidate,
            )

    def _promote_locked(
        self,
        reason: str,
        incumbent: Optional[dict] = None,
        candidate: Optional[dict] = None,
    ) -> None:
        parent = self.active_version
        # Single-assignment swap into the live router: the same atomic
        # install path ClusterRouter.refit uses, so in-flight routes see
        # either the old or the new profile list, never a mix.
        self.router.profiles = self.candidate.profiles
        if self.registry is not None and self.candidate_version is not None:
            self.registry.pin(self.candidate_version)
        self.active_version = self.candidate_version
        self.promotions += 1
        self._m_promotions.inc()
        self._record(
            PromoteEvent(
                version=self.candidate_version or "",
                parent=parent,
                samples=len(self._pairs),
                incumbent=incumbent or {},
                candidate=candidate or {},
                reason=reason,
            )
        )
        self._clear_candidate_locked()

    def _rollback_locked(
        self, reason: str, incumbent: dict, candidate: dict
    ) -> None:
        self.rollbacks += 1
        self._m_rollbacks.inc()
        self._record(
            RollbackEvent(
                version=self.candidate_version or "",
                parent=self.active_version,
                samples=len(self._pairs),
                incumbent=incumbent,
                candidate=candidate,
                reason=reason,
            )
        )
        self._clear_candidate_locked()

    def _clear_candidate_locked(self) -> None:
        self.candidate = None
        self.candidate_version = None
        self._pairs.clear()
        self._incumbent_failures.clear()

    def _record(self, event) -> None:
        if self.log is not None:
            self.log.record(event)

    # -- reporting ------------------------------------------------------ #

    def status(self) -> dict:
        """Counters for ``/healthz`` and the stderr drift summary."""
        with self._lock:
            return {
                "registry_version": self.active_version,
                "shadow_version": self.candidate_version,
                "canary_promotions": self.promotions,
                "canary_rollbacks": self.rollbacks,
                "canary_shadow_pages": self.shadow_pages,
                "canary_staged": self.candidate is not None,
                "lint_refusals": self.lint_refusals,
            }


def wrapper_extractor(runtime) -> Callable:
    """A ``(cluster, page) -> failed`` dry-run over compiled wrappers.

    Routes the candidate's cluster choice through the serving runtime's
    already-compiled wrappers; an unknown cluster or an extraction
    exception counts as a failure, as does any per-component failure
    the wrapper reports.
    """

    def extract(cluster: str, page) -> bool:
        """Shadow-extract ``page`` with ``cluster``'s wrapper; ``True`` = clean."""
        wrapper = runtime.wrapper_for(cluster)
        if wrapper is None:
            return True
        failures: list = []
        try:
            wrapper.extract_page(page, failures=failures)
        except Exception:
            return True
        return bool(failures)

    return extract
