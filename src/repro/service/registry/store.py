"""The on-disk versioned artifact registry.

Directory layout (everything JSON, everything written atomically)::

    <root>/
      CURRENT                      # the pinned version id (one line)
      versions/
        <version-id>/
          artifact.json            # canonical payload; its bytes hash
                                   # to the version id (content address)
          manifest.json            # provenance: parent, trigger, dates

Versions are **immutable**: the id is the content hash of the
canonical payload (:mod:`repro.service.registry.artifacts`), so a
version can never be edited in place — a new payload is a new version,
and re-publishing identical content is an idempotent no-op.  The only
mutable state is the ``CURRENT`` pin, moved atomically by
:meth:`ArtifactRegistry.pin` / :meth:`ArtifactRegistry.rollback`.

Every write goes through a temp file + ``os.replace`` in the target
directory, so a crashed writer can never leave a half-written artifact
where a reader finds it; concurrent writers racing on the same version
write byte-identical artifact files, so last-rename-wins is safe.
Reads distrust the disk: manifests must parse and describe their own
directory, artifact bytes must hash back to the recorded digest, and
foreign formats are rejected — each failure with its typed
:class:`~repro.errors.RegistryError` subclass.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Union

from repro.core.repository import RuleRepository
from repro.errors import (
    LintGateError,
    RegistryCorruptError,
    RegistryError,
    RegistryFormatError,
    RegistryNotFoundError,
    RepositoryError,
)
from repro.service.registry.artifacts import (
    VERSION_ID_LENGTH,
    artifact_payload,
    canonical_json,
    payload_diff,
    repository_from_payload,
    router_from_payload,
)
from repro.service.router import ClusterRouter

#: Format tag of manifests written by this module.
MANIFEST_FORMAT = 1

_VERSIONS_DIR = "versions"
_CURRENT_FILE = "CURRENT"
_ARTIFACT_FILE = "artifact.json"
_MANIFEST_FILE = "manifest.json"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _lint_gate(
    repository: RuleRepository,
    router: Optional[ClusterRouter],
    allow_findings: bool,
) -> None:
    """Run the static analyzer over a publish candidate.

    Counts every finding in ``repro_lint_findings_total{code}`` and
    raises :class:`LintGateError` when error-severity findings exist
    and ``allow_findings`` is not set.  Imports lazily: the analyzer
    depends on registry serialization, so a top-level import would be
    a cycle — and non-publishing registry readers never pay for it.
    """
    from repro.analysis import analyze_artifact
    from repro.service.metrics import default_registry

    findings = analyze_artifact(repository, router)
    if findings:
        counter = default_registry().from_spec("repro_lint_findings_total")
        for finding in findings:
            counter.labels(finding.code).inc()
    errors = [f for f in findings if f.severity == "error"]
    if errors and not allow_findings:
        raise LintGateError(
            f"lint gate: {len(errors)} error-severity finding(s) "
            f"({', '.join(sorted({f.code for f in errors}))}); "
            "fix the artifact or publish with allow_findings",
            findings=tuple(errors),
        )


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-whole-then-rename: readers see old bytes or new, never half."""
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class VersionManifest:
    """Provenance of one immutable registry version."""

    version: str                 # short content hash (the directory name)
    sha256: str                  # full digest of the canonical payload
    parent: Optional[str]        # version this one was refit from
    created: str                 # ISO-8601 UTC creation time
    source: str                  # "initial" | "refit" | "import"
    fit_pages: int               # sample size the fit/refit consumed
    #: The recorded ``DriftEvent``/``RefitEvent`` dict that triggered a
    #: refit-published version (``None`` for initial/imported ones).
    trigger: Optional[dict]
    clusters: tuple = ()         # cluster names in the artifact (sorted)
    routed: bool = False         # whether the artifact carries a router
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSON object persisted as the version's manifest."""
        data = dict(self.__dict__)
        data["clusters"] = list(self.clusters)
        return {"format": MANIFEST_FORMAT, **data}

    @classmethod
    def from_dict(cls, data: dict) -> "VersionManifest":
        """Parse a manifest object (raises ``RegistryCorruptError``)."""
        if not isinstance(data, dict):
            raise RegistryCorruptError(
                f"manifest must be a JSON object, got {type(data).__name__}"
            )
        payload = dict(data)
        recorded = payload.pop("format", None)
        if recorded != MANIFEST_FORMAT:
            raise RegistryFormatError(
                f"unsupported registry manifest format {recorded!r}"
            )
        try:
            payload["clusters"] = tuple(payload.get("clusters", ()))
            return cls(**payload)
        except (TypeError, ValueError) as exc:
            raise RegistryCorruptError(
                f"malformed registry manifest: {exc}"
            ) from exc


class ArtifactRegistry:
    """Content-addressed, immutable versions of deployable artifacts.

    Args:
        root: registry directory; created (with ``versions/``) if
            absent.

    Thread-/process-safe by construction rather than by locking:
    artifact files are content-addressed (racing writers of one
    version write identical bytes), all writes are atomic renames, and
    the pin is a single small file replaced atomically.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            (self.root / _VERSIONS_DIR).mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise RegistryError(
                f"cannot create registry at {self.root}: {exc}"
            ) from exc

    # -- paths ---------------------------------------------------------- #

    def _version_dir(self, version: str) -> Path:
        return self.root / _VERSIONS_DIR / version

    def exists(self, version: str) -> bool:
        """Whether ``version`` is present in the store."""
        return (self._version_dir(version) / _MANIFEST_FILE).is_file()

    def version_ids(self) -> list:
        """Every version directory name, sorted (health unverified)."""
        return sorted(
            entry.name
            for entry in (self.root / _VERSIONS_DIR).iterdir()
            if entry.is_dir()
        )

    # -- publishing ----------------------------------------------------- #

    def publish(
        self,
        repository: RuleRepository,
        router: Optional[ClusterRouter] = None,
        parent: Optional[str] = None,
        source: str = "import",
        fit_pages: int = 0,
        trigger: Optional[dict] = None,
        lint: bool = True,
        allow_findings: bool = False,
    ) -> VersionManifest:
        """Store one artifact; returns its (possibly pre-existing) manifest.

        Idempotent on content: publishing a payload that already exists
        verifies the stored bytes against the content hash and returns
        the existing manifest — metadata of the first publisher wins.
        The artifact file lands before the manifest, so a reader that
        can see a manifest can always load its artifact.

        Publishing runs the rule-set static analyzer first (``lint``
        disables it for trusted import paths like shard merges).
        Error-severity findings refuse the publish with a
        :class:`~repro.errors.LintGateError` carrying them, unless
        ``allow_findings`` overrides the gate; every finding — allowed
        or not — is counted in ``repro_lint_findings_total{code}``.
        """
        if lint:
            _lint_gate(repository, router, allow_findings)
        payload = artifact_payload(repository, router)
        text = canonical_json(payload)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        version = digest[:VERSION_ID_LENGTH]
        directory = self._version_dir(version)
        artifact_path = directory / _ARTIFACT_FILE
        manifest_path = directory / _MANIFEST_FILE
        if manifest_path.is_file() and artifact_path.is_file():
            stored = artifact_path.read_text(encoding="utf-8")
            if hashlib.sha256(stored.encode("utf-8")).hexdigest() != digest:
                raise RegistryCorruptError(
                    f"version {version} exists with different content "
                    "(tampered artifact or hash collision)"
                )
            return self.manifest(version)
        manifest = VersionManifest(
            version=version,
            sha256=digest,
            parent=parent,
            created=_utc_now(),
            source=source,
            fit_pages=fit_pages,
            trigger=trigger,
            clusters=tuple(sorted(repository.clusters())),
            routed=router is not None,
        )
        try:
            directory.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(artifact_path, text)
            _atomic_write_text(
                manifest_path,
                json.dumps(manifest.to_dict(), indent=2, sort_keys=True)
                + "\n",
            )
        except OSError as exc:
            raise RegistryError(
                f"cannot publish version {version}: {exc}"
            ) from exc
        return manifest

    # -- reading -------------------------------------------------------- #

    def manifest(self, version: str) -> VersionManifest:
        """Load one version's manifest, verified to describe itself."""
        path = self._version_dir(version) / _MANIFEST_FILE
        if not path.is_file():
            raise RegistryNotFoundError(
                f"no version {version!r} in registry {self.root}"
            )
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryCorruptError(
                f"truncated or unreadable manifest for version "
                f"{version}: {exc}"
            ) from exc
        manifest = VersionManifest.from_dict(data)
        if manifest.version != version:
            raise RegistryCorruptError(
                f"manifest in {version}/ describes version "
                f"{manifest.version!r}"
            )
        return manifest

    def versions(self) -> list:
        """Manifests of every *healthy* version, oldest first.

        Corrupt or foreign entries are skipped (``registry list``
        reports them per-id via :meth:`manifest`); sorting is by
        creation time with the version id as tiebreak.
        """
        manifests = []
        for version in self.version_ids():
            try:
                manifests.append(self.manifest(version))
            except RegistryError:
                continue
        return sorted(manifests, key=lambda m: (m.created, m.version))

    def _payload(self, version: str, manifest: VersionManifest) -> dict:
        path = self._version_dir(version) / _ARTIFACT_FILE
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise RegistryNotFoundError(
                f"version {version} has no readable artifact: {exc}"
            ) from exc
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if digest != manifest.sha256:
            raise RegistryCorruptError(
                f"artifact for version {version} fails its content hash "
                "(tampered or truncated)"
            )
        # The hash matched, so this is exactly what was published —
        # but what was published may predate/postdate this code.
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:  # pragma: no cover - hash-matched
            raise RegistryCorruptError(
                f"artifact for version {version} is not JSON: {exc}"
            ) from exc

    def load(
        self, version: str
    ) -> tuple:
        """Load one version: ``(repository, router-or-None, manifest)``.

        Raises:
            RegistryNotFoundError: unknown version / missing artifact.
            RegistryCorruptError: content-hash or shape failures.
            RegistryFormatError: a foreign artifact format.
        """
        manifest = self.manifest(version)
        payload = self._payload(version, manifest)
        try:
            repository = repository_from_payload(payload)
        except RepositoryError as exc:
            raise RegistryCorruptError(
                f"version {version}: {exc}"
            ) from exc
        return repository, router_from_payload(payload), manifest

    def compile(self, version: str, postprocessor=None) -> dict:
        """Compile one version's clusters into version-stamped wrappers.

        The deploy path: ``cluster name ->`` :class:`~repro.service.
        compiler.CompiledWrapper` with :attr:`~repro.service.compiler.
        CompiledWrapper.version` recording the provenance.  Each
        wrapper's stats carry the analyzer's finding count for its
        cluster (``lint_findings``), so ``registry show --stats`` and
        progress compile events surface analyzer results next to
        ``automaton_slots``/``steps_saved``.
        """
        from repro.analysis import analyze_artifact
        from repro.service.compiler import compile_wrapper

        repository, router, manifest = self.load(version)
        findings = analyze_artifact(repository, router, target=version)
        per_cluster: dict = {}
        for finding in findings:
            if finding.cluster:
                per_cluster[finding.cluster] = (
                    per_cluster.get(finding.cluster, 0) + 1
                )
        return {
            cluster: compile_wrapper(
                repository, cluster,
                postprocessor=postprocessor,
                version=manifest.version,
                lint_findings=per_cluster.get(cluster, 0),
            )
            for cluster in repository.clusters()
        }

    # -- the pin -------------------------------------------------------- #

    def pinned(self) -> Optional[str]:
        """The currently pinned version id (``None`` when unpinned)."""
        path = self.root / _CURRENT_FILE
        try:
            text = path.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise RegistryError(f"cannot read {path}: {exc}") from exc
        return text or None

    def pin(self, version: str) -> None:
        """Atomically point ``CURRENT`` at an existing version."""
        self.manifest(version)  # typed error if absent/corrupt
        _atomic_write_text(self.root / _CURRENT_FILE, version + "\n")

    def rollback(self) -> VersionManifest:
        """Re-pin the current version's parent; returns its manifest.

        Raises:
            RegistryError: nothing pinned, or the pinned version has
                no parent to roll back to.
            RegistryNotFoundError: the recorded parent version is
                missing from the registry.
        """
        current = self.pinned()
        if current is None:
            raise RegistryError("nothing is pinned; cannot roll back")
        manifest = self.manifest(current)
        if manifest.parent is None:
            raise RegistryError(
                f"version {current} has no parent to roll back to"
            )
        parent = self.manifest(manifest.parent)
        self.pin(parent.version)
        return parent

    # -- comparison ----------------------------------------------------- #

    def diff(self, a: str, b: str) -> dict:
        """Structural diff between two versions' payloads."""
        payload_a = self._payload(a, self.manifest(a))
        payload_b = self._payload(b, self.manifest(b))
        return payload_diff(payload_a, payload_b)
