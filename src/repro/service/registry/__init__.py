"""Versioned artifact registry and canary rollout of router refits.

The persistence/deployment tier between "adaptive" and "operable":

* :mod:`~repro.service.registry.artifacts` — canonical serialization
  and content-addressed hashing of rule-sets + router profile-sets;
* :mod:`~repro.service.registry.store` — the immutable on-disk
  version store with atomic writes and a movable ``CURRENT`` pin;
* :mod:`~repro.service.registry.canary` — shadow routing of refit
  candidates and the promote/rollback verdict loop.
"""

from repro.service.registry.artifacts import (
    ARTIFACT_FORMAT,
    VERSION_ID_LENGTH,
    artifact_payload,
    canonical_json,
    content_hash,
    payload_diff,
    profile_from_dict,
    profile_to_dict,
    repository_from_payload,
    router_from_dict,
    router_from_payload,
    router_to_dict,
    version_id,
)
from repro.service.registry.canary import (
    CanaryController,
    LintRefusalEvent,
    PromoteEvent,
    RollbackEvent,
    ShadowEvent,
    wrapper_extractor,
)
from repro.service.registry.store import (
    MANIFEST_FORMAT,
    ArtifactRegistry,
    VersionManifest,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "MANIFEST_FORMAT",
    "VERSION_ID_LENGTH",
    "ArtifactRegistry",
    "CanaryController",
    "LintRefusalEvent",
    "PromoteEvent",
    "RollbackEvent",
    "ShadowEvent",
    "VersionManifest",
    "artifact_payload",
    "canonical_json",
    "content_hash",
    "payload_diff",
    "profile_from_dict",
    "profile_to_dict",
    "repository_from_payload",
    "router_from_dict",
    "router_from_payload",
    "router_to_dict",
    "version_id",
    "wrapper_extractor",
]
