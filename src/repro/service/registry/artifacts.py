"""Canonical artifact serialization and content-addressed hashing.

A registry *artifact* is one deployable unit: a repository's cluster
rule-sets plus (optionally) the :class:`~repro.service.router.
ClusterRouter` profile-set fitted to route between them.  Everything
here is about making that unit **reproducible**:

* serialization is canonical — JSON with sorted keys and no
  insignificant whitespace (:func:`canonical_json`), Counters as plain
  objects, frozensets as sorted lists — so the same rules and profiles
  produce the same bytes in every process;
* versions are content-addressed — :func:`content_hash` is the SHA-256
  of the canonical text and :func:`version_id` its short prefix — so
  publishing the same artifact twice yields the same version and a
  byte of tampering is detectable;
* order that *means* something is preserved, never normalized away:
  rules serialize in recording order (extraction output order) and
  profiles in router order (score tie-break priority), both of which
  are deterministic for a given fit.  JSON object keys carry no
  order, so they are the only thing sorting touches.

Round trips are exact: Counter values survive as the ints/floats they
were (``repr`` of a float is shortest-round-trip in CPython), so a
router loaded from an artifact scores signatures identically and a
loaded rule-set recompiled via :func:`~repro.service.compiler.
compile_wrapper` extracts byte-identically to the in-memory original.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import Optional

from repro.core.repository import RuleRepository
from repro.errors import RegistryCorruptError, RegistryFormatError
from repro.service.router import ClusterProfile, ClusterRouter

#: Format tag of the artifact payload written by this module.
ARTIFACT_FORMAT = 1

#: Hex digits of the full SHA-256 a version id keeps (git-style short
#: hash; the manifest records the full digest for integrity checks).
VERSION_ID_LENGTH = 12


# --------------------------------------------------------------------- #
# Router profiles
# --------------------------------------------------------------------- #


#: Joins a structural path's tag names into one JSON key.  HTML tag
#: names cannot contain ``/`` (the parser would have split the tag),
#: so the encoding is reversible.
_PATH_SEPARATOR = "/"


def _encode_path(key: tuple) -> str:
    return _PATH_SEPARATOR.join(key)


def _decode_path(text: str) -> tuple:
    return tuple(text.split(_PATH_SEPARATOR)) if text else ()


def profile_to_dict(profile: ClusterProfile) -> dict:
    """One profile as plain JSON types.

    Frozensets become sorted lists; structural-path tuple keys become
    ``/``-joined strings (JSON object keys must be strings).
    """
    return {
        "name": profile.name,
        "url_signatures": sorted(profile.url_signatures),
        "keywords": dict(profile.keywords),
        "paths": {
            _encode_path(key): value
            for key, value in profile.paths.items()
        },
    }


def profile_from_dict(data: dict) -> ClusterProfile:
    """Rebuild a profile; raises :class:`RegistryCorruptError` on shape."""
    try:
        return ClusterProfile(
            name=data["name"],
            url_signatures=frozenset(data["url_signatures"]),
            keywords=Counter(data["keywords"]),
            paths=Counter({
                _decode_path(key): value
                for key, value in data["paths"].items()
            }),
        )
    except (KeyError, TypeError, AttributeError) as exc:
        raise RegistryCorruptError(f"malformed profile payload: {exc}") from exc


def router_to_dict(router: ClusterRouter) -> dict:
    """The router's profile-set, in router order.

    The list order is semantic — :meth:`~repro.service.router.
    ClusterRouter.route_signature` breaks exact score ties in favour of
    the earlier profile — so it is preserved, not sorted.  A given fit
    produces it deterministically, which is all hashing needs.
    """
    return {
        "threshold": router.threshold,
        "profiles": [profile_to_dict(p) for p in router.profiles],
    }


def router_from_dict(data: dict) -> ClusterRouter:
    """Rebuild a router from :func:`router_to_dict` output."""
    try:
        profiles = [profile_from_dict(p) for p in data["profiles"]]
        threshold = data["threshold"]
    except (KeyError, TypeError) as exc:
        raise RegistryCorruptError(f"malformed router payload: {exc}") from exc
    return ClusterRouter(profiles, threshold=threshold)


# --------------------------------------------------------------------- #
# The artifact payload
# --------------------------------------------------------------------- #


def artifact_payload(
    repository: RuleRepository, router: Optional[ClusterRouter] = None
) -> dict:
    """The canonical payload of one deployable artifact.

    Reuses the repository's own versioned serialization (rules in
    recording order — that order is the extraction output order) and
    adds the optional router profile-set.
    """
    return {
        "format": ARTIFACT_FORMAT,
        "repository": repository.to_dict(),
        "router": None if router is None else router_to_dict(router),
    }


def repository_from_payload(payload: dict) -> RuleRepository:
    """The repository inside an artifact payload (format-checked)."""
    _check_format(payload)
    return RuleRepository.from_dict(payload["repository"])


def router_from_payload(payload: dict) -> Optional[ClusterRouter]:
    """The router inside an artifact payload, or ``None``."""
    _check_format(payload)
    router = payload.get("router")
    return None if router is None else router_from_dict(router)


def _check_format(payload: dict) -> None:
    if not isinstance(payload, dict):
        raise RegistryCorruptError(
            f"artifact payload must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    recorded = payload.get("format")
    if recorded != ARTIFACT_FORMAT:
        raise RegistryFormatError(
            f"unsupported artifact format {recorded!r} "
            f"(this registry writes format {ARTIFACT_FORMAT})"
        )


# --------------------------------------------------------------------- #
# Canonical text and content addressing
# --------------------------------------------------------------------- #


def canonical_json(payload: dict) -> str:
    """The one canonical text of a payload: sorted keys, no whitespace.

    Dict *keys* are sorted (JSON objects are unordered; Python dict
    insertion order must not leak into the hash), list order is kept
    (it is semantic everywhere this module emits a list), and floats
    print as their shortest round-trip ``repr`` — identical across
    processes, so the same artifact always hashes to the same version.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def content_hash(payload: dict) -> str:
    """Full SHA-256 hex digest of the canonical payload text."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def version_id(payload: dict) -> str:
    """The short content-addressed version id of a payload."""
    return content_hash(payload)[:VERSION_ID_LENGTH]


# --------------------------------------------------------------------- #
# Structural diff (``registry diff``)
# --------------------------------------------------------------------- #


def _cluster_rules(payload: dict) -> dict:
    clusters = payload.get("repository", {}).get("clusters", {})
    return {
        cluster: [rule.get("name") for rule in body.get("rules", [])]
        for cluster, body in clusters.items()
    }


def payload_diff(a: dict, b: dict) -> dict:
    """What changed between two artifact payloads, structurally.

    Returns a JSON-ready dict: clusters added/removed/changed (by rule
    payload), and how the router moved (threshold, profile names, and
    which profiles' centroids changed).
    """
    rules_a, rules_b = _cluster_rules(a), _cluster_rules(b)
    clusters_a = a.get("repository", {}).get("clusters", {})
    clusters_b = b.get("repository", {}).get("clusters", {})
    changed = sorted(
        cluster
        for cluster in set(rules_a) & set(rules_b)
        if clusters_a.get(cluster) != clusters_b.get(cluster)
    )
    router_a, router_b = a.get("router"), b.get("router")
    if router_a is None and router_b is None:
        router_diff: dict = {}
    else:
        names_a = {p["name"]: p for p in (router_a or {}).get("profiles", [])}
        names_b = {p["name"]: p for p in (router_b or {}).get("profiles", [])}
        router_diff = {
            "threshold": [
                (router_a or {}).get("threshold"),
                (router_b or {}).get("threshold"),
            ],
            "profiles_added": sorted(set(names_b) - set(names_a)),
            "profiles_removed": sorted(set(names_a) - set(names_b)),
            "profiles_changed": sorted(
                name
                for name in set(names_a) & set(names_b)
                if names_a[name] != names_b[name]
            ),
        }
    return {
        "clusters_added": sorted(set(rules_b) - set(rules_a)),
        "clusters_removed": sorted(set(rules_a) - set(rules_b)),
        "clusters_changed": changed,
        "router": router_diff,
        "identical": a == b,
    }
