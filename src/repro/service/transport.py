"""Zero-copy page transport for process executors.

Process mode used to pickle every page's HTML into each submitted
chunk: the parent serialises megabytes of markup, the pool pipes them
through a pickle stream, and the worker deserialises them again.  This
module moves the page *bytes* out of band instead: the parent stages a
chunk's HTML into one :mod:`multiprocessing.shared_memory` segment and
pickles only ``(seq, index, url, offset, length)`` tuples; the worker
maps the segment and slices pages straight out of it.

Lifecycle — the part that must never leak:

* The parent owns every segment.  :meth:`SharedMemoryPageTransport.stage`
  creates one per chunk and tracks it under a lease;
  :meth:`~SharedMemoryPageTransport.release` (called by the runtime
  when the chunk's future completes — success, contained error or
  worker death alike) closes and unlinks it.
* :meth:`~SharedMemoryPageTransport.close_all` is the error-path
  sweep: the runtime calls it in its ``finally`` so cancellation or a
  crashed pool cannot strand segments in ``/dev/shm``.
* Workers attach without registering with the ``resource_tracker``
  (:func:`attach_segment`) — the parent is the single owner, so the
  tracker must not try to "clean up" a segment the parent will unlink.

Fallback matrix: ``mode="auto"`` probes once and degrades to inline
pickling when shared memory is unavailable (platform without
``/dev/shm``, permissions, exhausted segment space) — and keeps
degrading per-chunk if creation starts failing mid-run;
``mode="pickle"`` forces the legacy path (A/B benchmarking);
``mode="shm"`` demands shared memory and raises loudly when it cannot
be had.  Either way the worker sees the same pages, so extraction
output is byte-identical across transports.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.service.metrics import default_registry
from repro.sites.page import WebPage

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SEGMENT_PREFIX",
    "StagedChunk",
    "SharedMemoryPageTransport",
    "TRANSPORT_KINDS",
    "attach_segment",
    "load_shm_chunk",
]

#: Accepted ``transport=`` values on the runtime and CLI surface.
TRANSPORT_KINDS = ("auto", "shm", "pickle")

#: Segment name prefix: lets the CI leak check (and operators) spot
#: stray ``/dev/shm`` entries that belong to this service.
SEGMENT_PREFIX = "repro_shm"

#: Worker-side chunk entry: (seq, index, url, offset, length).
ShmEntry = Tuple[int, int, str, int, int]


@dataclass(frozen=True)
class StagedChunk:
    """One chunk ready to submit: a payload plus an optional lease.

    ``segment`` is the shared-memory segment name the payload refers
    to (the lease the runtime must :meth:`release
    <SharedMemoryPageTransport.release>` when the chunk's future
    completes), or ``None`` when the chunk fell back to inline
    pickling and there is nothing to clean up.
    """

    payload: object
    segment: Optional[str] = None


def attach_segment(name: str):
    """Attach to a parent-owned segment without tracker registration.

    Python 3.13+ exposes ``track=False``.  On older versions the
    attach re-registers the name with the (shared, parent-spawned)
    ``resource_tracker`` — a set-idempotent no-op, balanced exactly
    once by the parent's ``unlink()``; explicitly unregistering here
    would make that unlink's unregister a double-remove the tracker
    logs as a ``KeyError``, so the registration is left alone.
    """
    if _shared_memory is None:  # pragma: no cover - import-gated
        raise RuntimeError("multiprocessing.shared_memory unavailable")
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - pre-3.13 signature
        return _shared_memory.SharedMemory(name=name)


def load_shm_chunk(
    name: str, entries: Sequence[ShmEntry]
) -> list[Tuple[int, int, WebPage]]:
    """Worker side: slice a staged chunk's pages out of its segment.

    The segment is closed (not unlinked — the parent owns it) before
    returning; page HTML is copied out, so the returned pages outlive
    the mapping.
    """
    segment = attach_segment(name)
    buf = segment.buf
    try:
        return [
            (
                seq,
                index,
                WebPage(
                    url=url,
                    html=bytes(buf[offset:offset + length]).decode("utf-8"),
                ),
            )
            for seq, index, url, offset, length in entries
        ]
    finally:
        del buf
        segment.close()


class SharedMemoryPageTransport:
    """Parent-side segment staging with leased, ref-counted cleanup.

    Args:
        mode: ``"auto"`` (shared memory when available, pickle
            otherwise), ``"shm"`` (required — raises when unavailable)
            or ``"pickle"`` (force the legacy inline payloads).
        metrics: registry for the transport counters and the active
            segment gauge (default: the process-wide registry).
    """

    def __init__(self, mode: str = "auto", metrics=None) -> None:
        if mode not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {mode!r} (choose from {TRANSPORT_KINDS})"
            )
        self.mode = mode
        self._available: Optional[bool] = None
        #: name -> [segment, lease count]; leases are currently one per
        #: staged chunk, but release() is written against the count so
        #: a future multi-chunk segment changes nothing here.  Guarded
        #: by ``_lock``: release() runs from executor callback threads
        #: while close_all() runs from the draining thread, and both
        #: must agree on who unlinks each segment exactly once.
        self._segments: dict = {}
        self._lock = threading.Lock()
        self._counter = itertools.count()
        metrics = metrics if metrics is not None else default_registry()
        self._m_chunks = metrics.from_spec("repro_transport_chunks_total")
        self._m_bytes = metrics.from_spec("repro_transport_bytes_total")
        self._m_active = metrics.from_spec("repro_shm_segments_active")
        if mode == "shm" and not self.available:
            raise ValueError(
                "transport 'shm' requested but shared memory is unavailable"
            )

    # -- capability ----------------------------------------------------- #

    @property
    def available(self) -> bool:
        """Whether shared-memory staging is usable (probed once)."""
        if self.mode == "pickle":
            return False
        if self._available is None:
            self._available = self._probe()
        return self._available

    @staticmethod
    def _probe() -> bool:
        if _shared_memory is None:
            return False
        try:
            segment = _shared_memory.SharedMemory(create=True, size=1)
        except (OSError, ValueError):  # pragma: no cover - env-specific
            return False
        segment.close()
        segment.unlink()
        return True

    # -- staging -------------------------------------------------------- #

    def stage(
        self, chunk: Sequence[Tuple[int, int, WebPage]]
    ) -> StagedChunk:
        """Prepare one chunk for submission to a process pool.

        Returns a shared-memory staged chunk when possible, otherwise
        the legacy pickled payload (``segment=None``).  Shared-memory
        failures mid-run degrade to pickling in ``auto`` mode and
        raise in ``shm`` mode.
        """
        if not self.available:
            return self._stage_pickle(chunk)
        entries: list[ShmEntry] = []
        blobs: list[bytes] = []
        offset = 0
        for seq, index, page in chunk:
            data = page.html.encode("utf-8")
            entries.append((seq, index, page.url, offset, len(data)))
            blobs.append(data)
            offset += len(data)
        if offset == 0:
            # SharedMemory rejects size=0; an all-empty chunk has
            # nothing worth mapping anyway.
            return self._stage_pickle(chunk)
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{next(self._counter)}"
        try:
            segment = _shared_memory.SharedMemory(
                name=name, create=True, size=offset
            )
        except (OSError, ValueError):
            if self.mode == "shm":
                raise
            self._available = False
            return self._stage_pickle(chunk)
        position = 0
        buf = segment.buf
        for data in blobs:
            buf[position:position + len(data)] = data
            position += len(data)
        del buf
        with self._lock:
            self._segments[name] = [segment, 1]
        self._m_active.inc()
        self._m_chunks.labels("shm").inc()
        self._m_bytes.labels("shm").inc(offset)
        return StagedChunk(payload=(name, entries), segment=name)

    def _stage_pickle(
        self, chunk: Sequence[Tuple[int, int, WebPage]]
    ) -> StagedChunk:
        payload = [
            (seq, index, page.url, page.html)
            for seq, index, page in chunk
        ]
        self._m_chunks.labels("pickle").inc()
        self._m_bytes.labels("pickle").inc(
            sum(len(page.html) for _, _, page in chunk)
        )
        return StagedChunk(payload=payload, segment=None)

    # -- cleanup -------------------------------------------------------- #

    @property
    def active(self) -> int:
        """Segments currently staged and not yet fully released."""
        return len(self._segments)

    def release(self, name: str) -> None:
        """Drop one lease; unlink the segment when none remain.

        Idempotent per segment once fully released — the runtime's
        per-future release and the ``finally`` sweep may both run,
        possibly from different threads.  The dict mutation happens
        under the lock, so exactly one caller wins the removal and
        performs the single close/unlink.
        """
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[name]
        self._destroy(entry[0])

    def close_all(self) -> None:
        """Release every outstanding segment (the error-path sweep).

        Safe to race against concurrent :meth:`release` calls from the
        drain path: each segment is popped under the lock, so whichever
        side removes it first is the only one that unlinks it.
        """
        while True:
            with self._lock:
                if not self._segments:
                    return
                name = next(iter(self._segments))
                entry = self._segments.pop(name)
            self._destroy(entry[0])

    def _destroy(self, segment) -> None:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._m_active.dec()
