"""Online serving: one request-processing core, three front-ends.

``serve`` reads ``{"url", "html"}`` JSON requests and writes one record
line per request — a served record, an unroutable record, or an error
record.  Every front-end drives the same :class:`ServeHandler`, which
wraps a single-page **inline** :class:`~repro.service.runtime.
StreamingRuntime` (error containment on, post-processing identical to
batch), so a page served online yields byte-for-byte the same values a
batch run would emit:

* :func:`serve_sync` (``serve --sync``) processes one line at a time —
  simplest possible operational model;
* :func:`serve_async` is the ``asyncio`` front-end: reads never block
  extraction, up to ``max_inflight`` pages are processed concurrently
  on a thread pool, and an :class:`~repro.service.runtime.
  OrderedEmitter` releases output lines strictly in input order, so
  the two front-ends are stream-equivalent.  The in-flight bound is
  the memory bound (backpressure: the reader stops admitting lines
  while the window is full) and also caps how far the reorder buffer
  can grow;
* :class:`~repro.service.http.HttpFrontEnd` (``serve --http``) exposes
  the same contract over a socket; its batch path runs the same
  :class:`AsyncLinePipeline` as :func:`serve_async`.

Shared robustness policy (one definition, every front-end):

* a closed downstream consumer (``BrokenPipeError``, or a stream
  object closed under us) stops the session cleanly instead of
  crashing it — :func:`write_line_to`;
* undecodable input surfaces as error records, with one
  *consecutive*-failure cap (:class:`ServePolicy`) before the loop
  gives up rather than spins;
* a handler crash that escapes containment becomes an error record in
  that request's slot, never a damming of the output stream —
  :func:`contained_handle`;
* interruption mid-stream (``KeyboardInterrupt``, task cancellation)
  drains what is in flight, flushes the output, and reports itself on
  :attr:`ServeStats.interrupted`, so partial runs stay audit-readable
  line by line.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.repository import RuleRepository
from repro.errors import HtmlParseError
from repro.extraction.postprocess import PostProcessor
from repro.service.metrics import (
    NULL_METRICS,
    AdmissionController,
    default_registry,
)
from repro.service.router import ClusterRouter
from repro.service.runtime import (
    IterablePageSource,
    OrderedEmitter,
    StreamingRuntime,
)
from repro.service.sink import (
    CollectingSink,
    make_error_record,
    make_unroutable_record,
)
from repro.sites.page import WebPage

#: ``serve`` gives up (rather than spin) if the input stream raises
#: this many *consecutive* decode errors without yielding a line.
MAX_DECODE_FAILURES = 1000

#: Concurrent pages the async front-ends hold in flight (and the size
#: of their extraction thread pools) unless overridden.
DEFAULT_MAX_INFLIGHT = 8

#: Daemon reader threads the asyncio stdin front-end rotates between.
#: Reads stay strictly sequential (a 1-permit slot serializes them);
#: the rotation exists because a freshly-parked thread resumes past
#: the GIL faster than one still unwinding its previous delivery —
#: with a single reader, each line pays an extra GIL handoff against
#: the extraction workers (measured ~40% throughput loss).
READER_THREADS = 2


@dataclass(frozen=True)
class ServePolicy:
    """The serving-loop robustness knobs, shared by every front-end.

    Historically the sync and async loops each carried their own copy
    of these limits and drifted; now the policy lives on the
    :class:`ServeHandler` they all share, so the stdin loops and the
    HTTP front-end can never disagree about when to give up on a
    broken input stream or how many pages to hold in flight.

    Args:
        max_decode_failures: consecutive undecodable reads before the
            loop gives up (the counter resets on any successful read).
        max_inflight: concurrent pages an async front-end admits — its
            memory bound and thread-pool size.
        rate_limit: per-client admitted requests/second at the HTTP
            ingress; over-rate clients get ``429`` with ``Retry-After``
            (0 — the default — disables rate limiting).
        rate_burst: per-client token-bucket burst capacity (``None``
            defaults to ``rate_limit`` rounded up, minimum 1).
        max_concurrent_requests: in-flight HTTP request bound across
            all clients; beyond it requests are shed with ``503`` and
            ``Retry-After`` (0 — the default — disables shedding).
            Distinct from ``max_inflight``: that bounds *pages* inside
            one batch pipeline, this bounds whole requests.
    """

    max_decode_failures: int = MAX_DECODE_FAILURES
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    rate_limit: float = 0.0
    rate_burst: Optional[int] = None
    max_concurrent_requests: int = 0

    def __post_init__(self) -> None:
        if self.max_decode_failures < 1:
            raise ValueError("max_decode_failures must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.rate_limit < 0:
            raise ValueError("rate_limit must be >= 0 (0 disables)")
        if self.rate_burst is not None and self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1")
        if self.max_concurrent_requests < 0:
            raise ValueError(
                "max_concurrent_requests must be >= 0 (0 disables)"
            )


class ServeHandler:
    """Turn one request line into one response line.

    Args:
        repository: the served rules.
        router: route each page by signature; mutually exclusive in
            spirit with ``cluster`` (the router wins when both given,
            matching the historical sync loop).
        cluster: serve every page with this cluster's rules.
        postprocessor: optional value clean-up, as in batch.
        adapter: an :class:`~repro.service.adapt.AdaptiveRouter`
            (mutually exclusive with ``router``): pages route through
            it, extraction outcomes feed back into its drift monitor,
            and it refits the underlying router across requests —
            ``serve --adapt``.
        policy: the shared :class:`ServePolicy`; front-ends default
            their decode-failure cap, in-flight bound and admission
            limits from it.
        metrics: a :class:`~repro.service.metrics.MetricsRegistry` for
            request latency/outcome series and admission counters
            (default: the process-wide registry, which is what
            ``GET /metrics`` renders).
        automaton: compile wrappers with the single-pass extraction
            automaton (default); ``False`` keeps the shared-trie path.

    Thread-safe: the wrapped inline runtime keeps no per-run state
    (and the adapter guards its own), so the async front-ends call
    :meth:`handle_line` from many worker threads at once.
    """

    def __init__(
        self,
        repository: RuleRepository,
        router: Optional[ClusterRouter] = None,
        cluster: Optional[str] = None,
        postprocessor: Optional[PostProcessor] = None,
        adapter=None,
        policy: Optional[ServePolicy] = None,
        metrics=None,
        automaton: bool = True,
        artifact_version: Optional[str] = None,
    ) -> None:
        if adapter is not None and router is not None:
            raise ValueError("pass router or adapter, not both")
        if router is None and adapter is None and not cluster:
            raise ValueError(
                "ServeHandler needs a router, an adapter or a cluster"
            )
        self.router = adapter if adapter is not None else router
        self.adapter = adapter
        self.cluster = cluster
        #: The pinned registry version this handler serves, when the
        #: artifact came out of a registry — the supervisor compiles
        #: once in the parent and stamps the same version into every
        #: forked child, so /healthz can prove fleet consistency.
        self.artifact_version = artifact_version
        self.policy = policy if policy is not None else ServePolicy()
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_request_seconds = self.metrics.from_spec(
            "repro_request_seconds"
        )
        self._m_requests = self.metrics.from_spec("repro_requests_total")
        self.admission = AdmissionController(
            rate_limit=self.policy.rate_limit,
            rate_burst=self.policy.rate_burst,
            max_concurrent=self.policy.max_concurrent_requests,
            metrics=self.metrics,
        )
        self.runtime = StreamingRuntime(
            repository,
            router=router,
            postprocessor=postprocessor,
            workers=1,
            executor="inline",
            chunk_size=1,
            contain_errors=True,
            adapter=adapter,
            metrics=self.metrics,
            automaton=automaton,
        )

    @property
    def deployer(self):
        """The adapter's canary controller, if one is attached."""
        return getattr(self.adapter, "deployer", None)

    def handle_line(self, line: str) -> tuple[str, bool]:
        """One request line in, one JSON response line out.

        Returns ``(response line, served)`` — ``served`` is True only
        for a successfully extracted page (the sync loop's counter).
        Never raises on bad input: malformed JSON, missing/mistyped
        fields and unparseable HTML come back as error records.
        """
        url: Optional[str] = None
        try:
            request = json.loads(line)
            url, html = request["url"], request["html"]
            if not isinstance(url, str) or not isinstance(html, str):
                raise TypeError("url and html must be strings")
            page = WebPage(url=url, html=html)
            page.root_element  # parse eagerly so bad HTML fails here
        except (json.JSONDecodeError, KeyError, TypeError,
                HtmlParseError) as exc:
            return _dumps(make_error_record(str(exc), url=url)), False
        return self.handle_page(page)

    def handle_page(self, page: WebPage) -> tuple[str, bool]:
        """Route and extract one parsed page through the runtime."""
        if self.router is None and self.cluster:
            page.cluster_hint = self.cluster
        sink = CollectingSink()
        self.runtime.run(IterablePageSource([page]), sink)
        if sink.records:
            record = sink.records[0]
            return _dumps({
                "url": record.url,
                "cluster": record.cluster,
                "values": record.values,
                "failures": [list(f) for f in record.failures],
            }), True
        if sink.errors:
            return _dumps(sink.errors[0]), False
        # Unroutable, or routed to a cluster with no rules: same
        # auditable gap either way.
        return _dumps(make_unroutable_record(page.url)), False


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def contained_handle(handler: ServeHandler, line: str) -> tuple[str, bool]:
    """``handle_line`` with last-resort containment, for every loop.

    The handler contains its own errors; anything that still escapes
    (a router bug, RecursionError from a pathological page) must not
    kill the serving loop — or, in the async front-ends, leave a
    sequence slot un-emitted and dam every later response behind it.

    This is also the one chokepoint every front-end funnels requests
    through, so the request latency histogram and per-outcome counter
    live here (instruments are pre-bound on the handler; bare test
    handlers without them run uninstrumented).
    """
    started = time.perf_counter()
    try:
        outcome = handler.handle_line(line)
    except Exception as exc:
        outcome = (
            _dumps(make_error_record(f"{type(exc).__name__}: {exc}")),
            False,
        )
    seconds_hist = getattr(handler, "_m_request_seconds", None)
    if seconds_hist is not None:
        seconds_hist.observe(time.perf_counter() - started)
        handler._m_requests.labels(
            "served" if outcome[1] else "error"
        ).inc()
    return outcome


def write_line_to(stream, line: str) -> bool:
    """One whole response line to a possibly-dying output stream.

    The line and its newline go down in a single ``write`` call (so an
    interrupt can never leave a half-record on the stream) followed by
    a flush.  Returns ``False`` when the consumer has closed the
    output — a real pipe raises ``BrokenPipeError``, a stream object
    closed under us raises ``ValueError`` — which every front-end
    treats as a clean end of session rather than a crash.

    ``UnicodeEncodeError`` (a ``ValueError`` subclass — an output
    stream whose encoding cannot represent a record character) is
    deliberately *not* treated as the consumer hanging up: that would
    silently drop every remaining page behind an "output closed"
    report.  It propagates loudly instead.
    """
    try:
        stream.write(line + "\n")
        stream.flush()
        return True
    except BrokenPipeError:
        return False
    except UnicodeError:
        raise
    except ValueError:
        return False


def _flush_quietly(stream) -> None:
    """Best-effort flush on the way out of an interrupted session."""
    try:
        stream.flush()
    except (OSError, ValueError):
        pass


# --------------------------------------------------------------------- #
# Session accounting
# --------------------------------------------------------------------- #


@dataclass
class ServeStats:
    """What one serve session did (every front-end reports this)."""

    served: int = 0
    #: True when the consecutive-decode-failure cap tripped.
    gave_up: bool = False
    #: True when the consumer closed our output mid-run.
    output_closed: bool = False
    #: True when the session was interrupted mid-stream
    #: (``KeyboardInterrupt`` / task cancellation); whatever was in
    #: flight has been drained and flushed, line-complete.
    interrupted: bool = False
    #: Drift events / refits the handler's adapter performed during
    #: this session (0 without ``--adapt``).
    drift_events: int = 0
    refits: int = 0
    #: Canary verdicts the adapter's deployer reached during this
    #: session (0 without ``--registry``/``--canary-fraction``).
    promotions: int = 0
    rollbacks: int = 0


def _adopt_adapter_counts(handler, stats: ServeStats) -> None:
    adapter = getattr(handler, "adapter", None)
    if adapter is not None:
        stats.drift_events = adapter.drift_events
        stats.refits = adapter.refits
        deployer = getattr(adapter, "deployer", None)
        if deployer is not None:
            stats.promotions = deployer.promotions
            stats.rollbacks = deployer.rollbacks


def _policy_of(handler) -> ServePolicy:
    policy = getattr(handler, "policy", None)
    return policy if policy is not None else ServePolicy()


def _metrics_of(handler):
    """The handler's registry (bare test handlers run uninstrumented)."""
    metrics = getattr(handler, "metrics", None)
    return metrics if metrics is not None else NULL_METRICS


# --------------------------------------------------------------------- #
# The synchronous front-end
# --------------------------------------------------------------------- #


def serve_sync(
    handler: ServeHandler,
    stdin,
    stdout,
    max_decode_failures: Optional[int] = None,
    on_output_closed: Optional[Callable[[], None]] = None,
) -> ServeStats:
    """The one-line-at-a-time loop (``serve --sync``).

    Same contract as :func:`serve_async`, minus concurrency: blank
    lines are skipped, undecodable reads become error records (capped
    by the handler's :class:`ServePolicy` on *consecutive* failures),
    EOF on a final unterminated line still serves it, a consumer
    closing the output ends the session cleanly (``on_output_closed``
    fires once), a handler crash becomes an error record instead of
    killing the loop, and ``KeyboardInterrupt`` flushes what was
    written and reports itself on :attr:`ServeStats.interrupted`.
    """
    cap = (
        max_decode_failures
        if max_decode_failures is not None
        else _policy_of(handler).max_decode_failures
    )
    stats = ServeStats()
    decode_failures = 0

    def _closed() -> None:
        stats.output_closed = True
        if on_output_closed is not None:
            on_output_closed()

    try:
        while True:
            try:
                line = stdin.readline()
            except UnicodeDecodeError as exc:
                payload = _dumps(
                    make_error_record(f"undecodable input: {exc}")
                )
                if not write_line_to(stdout, payload):
                    _closed()
                    break
                decode_failures += 1
                if decode_failures >= cap:
                    stats.gave_up = True
                    break
                continue
            decode_failures = 0  # the cap is on *consecutive* failures
            if not line:
                break  # EOF; a final unterminated line arrives above
            line = line.strip()
            if not line:
                continue
            payload, ok = contained_handle(handler, line)
            if not write_line_to(stdout, payload):
                _closed()
                break
            stats.served += ok
    except BrokenPipeError:
        # Historically the sync loop treated a broken pipe anywhere in
        # the read/handle/write cycle as the consumer hanging up.
        _closed()
    except KeyboardInterrupt:
        stats.interrupted = True
        _flush_quietly(stdout)
    _adopt_adapter_counts(handler, stats)
    return stats


# --------------------------------------------------------------------- #
# The shared async machinery
# --------------------------------------------------------------------- #


class AsyncLinePipeline:
    """Bounded in-flight, input-order line processing.

    The core both async front-ends share — :func:`serve_async` over
    stdin and the HTTP batch path (:mod:`repro.service.http`): request
    lines are extracted concurrently on a thread pool, response lines
    leave strictly in input order, and ``max_inflight`` is the
    *memory* bound, not just a concurrency bound — a sequence slot is
    acquired at admission and released only when its response line
    leaves the reorder buffer, so a slow head-of-line page stalls
    admission instead of letting completed outcomes pile up behind it.
    Progress is always possible: when every slot is taken, the
    blocking sequence is by construction a still-running page, and its
    completion releases the whole contiguous run behind it.

    Args:
        handler: the shared :class:`ServeHandler` (or anything with a
            ``handle_line``); its :class:`ServePolicy` supplies the
            defaults.
        pool: the executor running ``handle_line`` calls.
        write: ``write(line) -> bool`` — emit one response line;
            ``False`` means the consumer closed the output (the
            pipeline stops counting and suppresses further writes,
            and ``on_output_closed`` fires once).
        stats: the session's :class:`ServeStats` (shared with the
            caller, which watches ``output_closed``/``gave_up``).
    """

    def __init__(
        self,
        handler,
        pool,
        write: Callable[[str], bool],
        stats: ServeStats,
        max_inflight: Optional[int] = None,
        max_decode_failures: Optional[int] = None,
        on_output_closed: Optional[Callable[[], None]] = None,
    ) -> None:
        policy = _policy_of(handler)
        self.max_inflight = (
            max_inflight if max_inflight is not None else policy.max_inflight
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_decode_failures = (
            max_decode_failures
            if max_decode_failures is not None
            else policy.max_decode_failures
        )
        self.handler = handler
        self.pool = pool
        self.write = write
        self.stats = stats
        self.on_output_closed = on_output_closed
        self.loop = asyncio.get_running_loop()
        self.semaphore = asyncio.Semaphore(self.max_inflight)
        self.emitter = OrderedEmitter(self._release)
        self.tasks: set[asyncio.Task] = set()
        self.admitted = 0
        self._decode_failures = 0
        self._write_failure: Optional[BaseException] = None
        self._m_inflight = _metrics_of(handler).from_spec(
            "repro_inflight_pages"
        )

    def _release(self, payload: tuple[str, bool]) -> None:
        line, served = payload
        try:
            if self._write_failure is None and not self.stats.output_closed:
                if self.write(line):
                    if served:
                        self.stats.served += 1
                else:
                    self.stats.output_closed = True
                    if self.on_output_closed is not None:
                        self.on_output_closed()
        except BaseException as exc:
            # A write that *raises* (UnicodeEncodeError on a narrow
            # output encoding, say — deliberately not part of
            # write_line_to's closed-consumer protocol) runs inside a
            # worker task, where raising through would leak this slot
            # and silently deadlock admission once the window fills.
            # Park it; submit()/drain() re-raise it on the session's
            # own stack, as loudly as the sync loop would.
            self._write_failure = exc
        finally:
            # The slot frees only now, when this sequence's output has
            # left the reorder buffer — that bounds held memory.
            self.semaphore.release()
            self._m_inflight.dec()

    def _check_write_failure(self) -> None:
        if self._write_failure is not None:
            raise self._write_failure

    async def _process(self, seq: int, line: str) -> None:
        try:
            outcome = await self.loop.run_in_executor(
                self.pool, contained_handle, self.handler, line
            )
        except Exception as exc:
            # contained_handle already catches handler crashes; this
            # guards the executor hand-off itself, so the sequence
            # slot can never go un-emitted and dam the stream.
            outcome = (
                _dumps(make_error_record(f"{type(exc).__name__}: {exc}")),
                False,
            )
        self.emitter.emit(seq, outcome)

    def note_read_ok(self) -> None:
        """Any successful read resets the *consecutive* failure count."""
        self._decode_failures = 0

    async def submit(self, line: str) -> None:
        """Admit one request line (blocks while the window is full)."""
        self._check_write_failure()
        self._decode_failures = 0
        await self.semaphore.acquire()
        self._m_inflight.inc()
        task = self.loop.create_task(self._process(self.admitted, line))
        self.admitted += 1
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)

    async def submit_decode_failure(self, exc: UnicodeDecodeError) -> bool:
        """Emit an undecodable-input error record in this slot's turn.

        Returns ``True`` when the consecutive-failure cap tripped (the
        caller should stop the session; ``stats.gave_up`` is set).
        """
        self._check_write_failure()
        await self.semaphore.acquire()
        self._m_inflight.inc()
        self.emitter.emit(self.admitted, (
            _dumps(make_error_record(f"undecodable input: {exc}")),
            False,
        ))
        self.admitted += 1
        self._decode_failures += 1
        if self._decode_failures >= self.max_decode_failures:
            self.stats.gave_up = True
            return True
        return False

    async def drain(self) -> None:
        """Wait out every in-flight page (their outcomes emit in order).

        Survives being called from an interrupted session: a worker
        task that was itself cancelled is tolerated (its slot stays
        unreleased, so only the contiguous completed prefix reaches
        the output — whole lines, never a truncated one).  A write
        failure parked by :meth:`_release` re-raises here.
        """
        if self.tasks:
            await asyncio.gather(*list(self.tasks), return_exceptions=True)
        self._check_write_failure()


class _ReadFailed:
    """A reader-thread exception in transit to the event loop."""

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


async def serve_async(
    handler: ServeHandler,
    stdin,
    stdout,
    max_inflight: Optional[int] = None,
    max_decode_failures: Optional[int] = None,
    on_output_closed: Optional[Callable[[], None]] = None,
) -> ServeStats:
    """Serve a line stream without ever blocking reads on extraction.

    Reads run on a small rotation of **daemon** threads (strictly one
    read at a time, one line of lookahead, so reading the next line
    overlaps extraction of the admitted ones — see
    :data:`READER_THREADS` for why it is a rotation); up to
    ``max_inflight`` request lines are extracted
    concurrently on a thread pool; output lines are released strictly
    in input order.  Works with any file-like pair — real pipes, ttys,
    or in-memory streams.  Both limits default from the handler's
    :class:`ServePolicy`.

    The semantics mirror :func:`serve_sync` exactly: blank lines are
    skipped, undecodable reads become error records (with the same
    consecutive-failure cap), EOF on a final unterminated line still
    serves it, and a consumer closing the output stops the session
    cleanly (``on_output_closed`` fires once, before the stop).  On
    cancellation or ``KeyboardInterrupt`` mid-stream the in-flight
    pages are drained, their completed contiguous prefix is flushed
    line-complete, and :attr:`ServeStats.interrupted` is set — the
    daemon reader means a session interrupted while ``stdin`` is
    quiet still exits promptly instead of waiting on a ``readline``
    no signal can unblock.
    """
    stats = ServeStats()

    def _write(line: str) -> bool:
        return write_line_to(stdout, line)

    loop = asyncio.get_running_loop()
    policy = _policy_of(handler)
    inflight = max_inflight if max_inflight is not None else policy.max_inflight
    if inflight < 1:
        raise ValueError("max_inflight must be >= 1")

    queue: asyncio.Queue = asyncio.Queue()
    read_slots = threading.Semaphore(1)
    stop_reading = threading.Event()

    def _deliver(item) -> None:
        try:
            loop.call_soon_threadsafe(queue.put_nowait, item)
        except RuntimeError:  # loop already closed; session is over
            pass

    def _read_loop() -> None:
        while True:
            read_slots.acquire()
            if stop_reading.is_set():
                return
            try:
                item = stdin.readline()
            except UnicodeDecodeError as exc:
                item = exc
            except BaseException as exc:
                _deliver(_ReadFailed(exc))
                return
            _deliver(item)
            if isinstance(item, str) and not item:
                return  # EOF delivered; nothing left to read

    readers = [
        threading.Thread(
            target=_read_loop, name=f"serve-stdin-reader-{n}", daemon=True
        )
        for n in range(READER_THREADS)
    ]
    for reader in readers:
        reader.start()
    with ThreadPoolExecutor(max_workers=inflight) as pool:
        pipeline = AsyncLinePipeline(
            handler, pool, _write, stats,
            max_inflight=inflight,
            max_decode_failures=max_decode_failures,
            on_output_closed=on_output_closed,
        )
        try:
            while not stats.output_closed:
                item = await queue.get()
                if isinstance(item, _ReadFailed):
                    raise item.exc
                if isinstance(item, str) and not item:
                    # EOF — and no permit release: waking the spare
                    # reader now would cost one more blocking readline
                    # (on a tty, that read would eat keystrokes typed
                    # while the session drains).
                    break
                # The slot frees at *consumption*: the reader fetches
                # the next line while this one waits for admission, so
                # production latency overlaps even a full window — one
                # line of lookahead, never more.
                read_slots.release()
                if isinstance(item, UnicodeDecodeError):
                    if await pipeline.submit_decode_failure(item):
                        break
                    continue
                pipeline.note_read_ok()
                line = item.strip()
                if not line:
                    continue
                await pipeline.submit(line)
        except (asyncio.CancelledError, KeyboardInterrupt):
            stats.interrupted = True
        finally:
            # Wake readers waiting for their slot so the threads exit;
            # one blocked mid-``readline`` is abandoned (daemon) —
            # no join, so interrupt/teardown can never stall on it.
            stop_reading.set()
            for _ in readers:
                read_slots.release()
            await pipeline.drain()
            if stats.interrupted:
                _flush_quietly(stdout)
    _adopt_adapter_counts(handler, stats)
    return stats
