"""Online serving: one request-processing core, two front-ends.

``serve`` reads ``{"url", "html"}`` JSON lines and writes one record
line per request — a served record, an unroutable record, or an error
record.  Both front-ends drive the same :class:`ServeHandler`, which
wraps a single-page **inline** :class:`~repro.service.runtime.
StreamingRuntime` (error containment on, post-processing identical to
batch), so a page served online yields byte-for-byte the same values a
batch run would emit:

* the synchronous loop (``serve --sync``, :mod:`repro.cli`) processes
  one line at a time — simplest possible operational model;
* :func:`serve_async` is the ``asyncio`` front-end: reads never block
  extraction, up to ``max_inflight`` pages are processed concurrently
  on a thread pool, and an :class:`~repro.service.runtime.
  OrderedEmitter` releases output lines strictly in input order, so
  the two front-ends are stream-equivalent.  The in-flight bound is
  the memory bound (backpressure: the reader stops admitting lines
  while the window is full) and also caps how far the reorder buffer
  can grow.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.repository import RuleRepository
from repro.errors import HtmlParseError
from repro.extraction.postprocess import PostProcessor
from repro.service.router import ClusterRouter
from repro.service.runtime import (
    IterablePageSource,
    OrderedEmitter,
    StreamingRuntime,
)
from repro.service.sink import (
    CollectingSink,
    make_error_record,
    make_unroutable_record,
)
from repro.sites.page import WebPage

#: ``serve`` gives up (rather than spin) if the input stream raises
#: this many *consecutive* decode errors without yielding a line.
MAX_DECODE_FAILURES = 1000

#: Concurrent pages the async front-end holds in flight (and the size
#: of its extraction thread pool) unless overridden.
DEFAULT_MAX_INFLIGHT = 8


class ServeHandler:
    """Turn one request line into one response line.

    Args:
        repository: the served rules.
        router: route each page by signature; mutually exclusive in
            spirit with ``cluster`` (the router wins when both given,
            matching the historical sync loop).
        cluster: serve every page with this cluster's rules.
        postprocessor: optional value clean-up, as in batch.
        adapter: an :class:`~repro.service.adapt.AdaptiveRouter`
            (mutually exclusive with ``router``): pages route through
            it, extraction outcomes feed back into its drift monitor,
            and it refits the underlying router across requests —
            ``serve --adapt``.

    Thread-safe: the wrapped inline runtime keeps no per-run state
    (and the adapter guards its own), so the async front-end calls
    :meth:`handle_line` from many worker threads at once.
    """

    def __init__(
        self,
        repository: RuleRepository,
        router: Optional[ClusterRouter] = None,
        cluster: Optional[str] = None,
        postprocessor: Optional[PostProcessor] = None,
        adapter=None,
    ) -> None:
        if adapter is not None and router is not None:
            raise ValueError("pass router or adapter, not both")
        if router is None and adapter is None and not cluster:
            raise ValueError(
                "ServeHandler needs a router, an adapter or a cluster"
            )
        self.router = adapter if adapter is not None else router
        self.adapter = adapter
        self.cluster = cluster
        self.runtime = StreamingRuntime(
            repository,
            router=router,
            postprocessor=postprocessor,
            workers=1,
            executor="inline",
            chunk_size=1,
            contain_errors=True,
            adapter=adapter,
        )

    def handle_line(self, line: str) -> tuple[str, bool]:
        """One request line in, one JSON response line out.

        Returns ``(response line, served)`` — ``served`` is True only
        for a successfully extracted page (the sync loop's counter).
        Never raises on bad input: malformed JSON, missing/mistyped
        fields and unparseable HTML come back as error records.
        """
        url: Optional[str] = None
        try:
            request = json.loads(line)
            url, html = request["url"], request["html"]
            if not isinstance(url, str) or not isinstance(html, str):
                raise TypeError("url and html must be strings")
            page = WebPage(url=url, html=html)
            page.root_element  # parse eagerly so bad HTML fails here
        except (json.JSONDecodeError, KeyError, TypeError,
                HtmlParseError) as exc:
            return _dumps(make_error_record(str(exc), url=url)), False
        return self.handle_page(page)

    def handle_page(self, page: WebPage) -> tuple[str, bool]:
        """Route and extract one parsed page through the runtime."""
        if self.router is None and self.cluster:
            page.cluster_hint = self.cluster
        sink = CollectingSink()
        self.runtime.run(IterablePageSource([page]), sink)
        if sink.records:
            record = sink.records[0]
            return _dumps({
                "url": record.url,
                "cluster": record.cluster,
                "values": record.values,
                "failures": [list(f) for f in record.failures],
            }), True
        if sink.errors:
            return _dumps(sink.errors[0]), False
        # Unroutable, or routed to a cluster with no rules: same
        # auditable gap either way.
        return _dumps(make_unroutable_record(page.url)), False


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# --------------------------------------------------------------------- #
# The asyncio front-end
# --------------------------------------------------------------------- #


@dataclass
class ServeStats:
    """What one serve session did (both front-ends report this)."""

    served: int = 0
    #: True when the consecutive-decode-failure cap tripped.
    gave_up: bool = False
    #: True when the consumer closed our output mid-run.
    output_closed: bool = False
    #: Drift events / refits the handler's adapter performed during
    #: this session (0 without ``--adapt``).
    drift_events: int = 0
    refits: int = 0


async def serve_async(
    handler: ServeHandler,
    stdin,
    stdout,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    max_decode_failures: int = MAX_DECODE_FAILURES,
    on_output_closed: Optional[Callable[[], None]] = None,
) -> ServeStats:
    """Serve a line stream without ever blocking reads on extraction.

    Reads run in the default executor; up to ``max_inflight`` request
    lines are extracted concurrently on a dedicated thread pool; output
    lines are released strictly in input order.  Works with any
    file-like pair — real pipes, ttys, or in-memory streams.

    The semantics mirror the sync loop exactly: blank lines are
    skipped, undecodable reads become error records (with the same
    consecutive-failure cap), EOF on a final unterminated line still
    serves it, and a consumer closing the output stops the session
    cleanly (``on_output_closed`` fires once, before the stop).

    ``max_inflight`` is the *memory* bound, not just a concurrency
    bound: a sequence slot is acquired at admission and released only
    when its response line leaves the reorder buffer, so a slow
    head-of-line page stalls admission instead of letting completed
    outcomes pile up behind it.  Progress is always possible — when
    every slot is taken, the blocking sequence is by construction a
    still-running page, and its completion releases the whole
    contiguous run behind it.
    """
    if max_inflight < 1:
        raise ValueError("max_inflight must be >= 1")
    loop = asyncio.get_running_loop()
    stats = ServeStats()
    semaphore = asyncio.Semaphore(max_inflight)

    def _write(payload: tuple[str, bool]) -> None:
        line, served = payload
        if not stats.output_closed:
            try:
                print(line, file=stdout, flush=True)
                if served:
                    stats.served += 1
            except BrokenPipeError:
                stats.output_closed = True
                if on_output_closed is not None:
                    on_output_closed()
        # The slot frees only now, when this sequence's output has left
        # the reorder buffer — that is what bounds held memory.
        semaphore.release()

    emitter = OrderedEmitter(_write)
    tasks: set[asyncio.Task] = set()

    def _read():
        """Blocking readline, decode errors surfaced as values."""
        try:
            return stdin.readline()
        except UnicodeDecodeError as exc:
            return exc

    async def _process(seq: int, line: str) -> None:
        try:
            outcome = await loop.run_in_executor(
                pool, handler.handle_line, line
            )
        except Exception as exc:
            # The handler contains its own errors; anything that still
            # escapes (a router bug, RecursionError from a pathological
            # page) must not leave this sequence slot un-emitted — that
            # would dam every later response behind it forever.
            outcome = (
                _dumps(make_error_record(f"{type(exc).__name__}: {exc}")),
                False,
            )
        emitter.emit(seq, outcome)

    with ThreadPoolExecutor(max_workers=max_inflight) as pool:
        try:
            seq = 0
            decode_failures = 0
            while not stats.output_closed:
                item = await loop.run_in_executor(None, _read)
                if isinstance(item, UnicodeDecodeError):
                    await semaphore.acquire()
                    emitter.emit(seq, (
                        _dumps(make_error_record(
                            f"undecodable input: {item}"
                        )),
                        False,
                    ))
                    seq += 1
                    decode_failures += 1
                    if decode_failures >= max_decode_failures:
                        stats.gave_up = True
                        break
                    continue
                decode_failures = 0  # the cap is on *consecutive* failures
                if not item:
                    break  # EOF; a final unterminated line arrives above
                line = item.strip()
                if not line:
                    continue
                await semaphore.acquire()
                task = loop.create_task(_process(seq, line))
                seq += 1
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks)
    adapter = getattr(handler, "adapter", None)
    if adapter is not None:
        stats.drift_events = adapter.drift_events
        stats.refits = adapter.refits
    return stats
