"""The parallel batch extraction engine.

``route -> extract -> sink`` over a page stream, with a bounded
in-flight window so memory stays constant regardless of input size:

* pages are routed to a cluster (router, or generator hints as a
  fallback) and buffered into per-cluster chunks;
* full chunks fan out to a ``concurrent.futures`` executor — threads
  by default (workers share the parent's compiled wrappers and parsed
  DOMs), processes on request (workers re-parse from HTML and compile
  their own wrappers from the repository dict, so nothing un-pickleable
  crosses the boundary);
* completed chunks are drained *in submission order* into the sink, so
  per-cluster output order is deterministic and equals input order.

Every page is extracted by a :class:`~repro.service.compiler.
CompiledWrapper`, so values are byte-identical to the sequential
:class:`~repro.extraction.extractor.ExtractionProcessor`.

Each page is stamped with its **submission index** — its 0-based
position in the input stream — carried through to the emitted
:class:`~repro.service.sink.PageRecord`.  With ``ordered=True`` the
engine additionally releases records to the sink in strictly
increasing submission-index order (a reorder buffer over the chunked
drain), which is what makes a sharded run mergeable into a stream
byte-identical to an unsharded one (:mod:`repro.service.shard`).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.core.repository import RuleRepository
from repro.extraction.postprocess import PostProcessor
from repro.service.compiler import CompiledWrapper
from repro.service.router import ClusterRouter, UNROUTABLE
from repro.service.sink import CollectingSink, NullSink, PageRecord, ResultSink
from repro.sites.page import WebPage

#: A worker's result for one page: (index, url, values, failures).
_RecordTuple = tuple[int, str, dict, list]


# --------------------------------------------------------------------- #
# Process-executor worker state
# --------------------------------------------------------------------- #
# Compiled wrappers hold DOM-walking closures and are rebuilt per
# process from the repository's plain-dict form; HTML is re-parsed in
# the worker.  Post-processing runs in the parent for process mode
# (transform chains may be arbitrary closures).

_WORKER_REPOSITORY: Optional[RuleRepository] = None
_WORKER_WRAPPERS: Dict[str, CompiledWrapper] = {}


def _init_process_worker(repository_data: dict) -> None:
    global _WORKER_REPOSITORY, _WORKER_WRAPPERS
    _WORKER_REPOSITORY = RuleRepository.from_dict(repository_data)
    _WORKER_WRAPPERS = {}


def _process_chunk(
    cluster: str, payload: list[tuple[int, str, str]]
) -> tuple[list[_RecordTuple], float]:
    assert _WORKER_REPOSITORY is not None, "worker not initialised"
    wrapper = _WORKER_WRAPPERS.get(cluster)
    if wrapper is None:
        wrapper = _WORKER_REPOSITORY.compile_cluster(cluster)
        _WORKER_WRAPPERS[cluster] = wrapper
    # Timer starts after the one-off wrapper compile so worker
    # throughput stats reflect extraction, not warm-up.
    started = time.perf_counter()
    records = _extract_chunk(wrapper, [
        (index, WebPage(url=url, html=html))
        for index, url, html in payload
    ])
    return records, time.perf_counter() - started


def _extract_chunk(
    wrapper: CompiledWrapper, pages: list[tuple[int, WebPage]]
) -> list[_RecordTuple]:
    records: list[_RecordTuple] = []
    for index, page in pages:
        failures: list = []
        extracted = wrapper.extract_page(page, failures)
        records.append((
            index,
            page.url,
            extracted.values,
            [(f.component_name, f.reason) for f in failures],
        ))
    return records


class _OrderedEmitter:
    """Release records to a sink in global submission-index order.

    The engine drains chunks in *chunk* submission order; chunks from
    different clusters interleave, so per-record indices arrive out of
    order.  This buffer holds completed records until every earlier
    index has either been emitted or declared dropped (unroutable or
    no-rules pages consume an index but produce no record).

    Worst-case held-record count is bounded by the records deferred
    behind the oldest partially-filled cluster buffer — small for
    balanced streams, up to O(stream) for a cluster that receives its
    last page early; held items are slim value records, never DOMs.
    """

    def __init__(self, sink: ResultSink) -> None:
        self._sink = sink
        self._next = 0
        self._held: Dict[int, Optional[PageRecord]] = {}

    def emit(self, index: int, record: Optional[PageRecord]) -> None:
        """Hand over index's outcome: a record, or ``None`` if dropped."""
        self._held[index] = record
        while self._next in self._held:
            released = self._held.pop(self._next)
            self._next += 1
            if released is not None:
                self._sink.write(released)

    @property
    def held(self) -> int:
        return len(self._held)


# --------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------- #


@dataclass
class ClusterStats:
    """Throughput/error accounting for one served cluster."""

    pages: int = 0
    values: int = 0
    failures: int = 0
    chunks: int = 0
    worker_seconds: float = 0.0

    @property
    def pages_per_second(self) -> float:
        if self.worker_seconds <= 0:
            return 0.0
        return self.pages / self.worker_seconds


#: Rejected-page URL lists keep at most this many examples, so the
#: report stays bounded on arbitrarily long streams (counts are exact).
URL_SAMPLE_CAP = 100


@dataclass
class EngineReport:
    """Everything one engine run observed.

    ``unroutable``/``skipped`` hold a bounded *sample* of URLs
    (:data:`URL_SAMPLE_CAP`); the ``*_count`` fields are exact.
    """

    total_pages: int = 0
    routed: Dict[str, int] = field(default_factory=dict)
    unroutable_count: int = 0
    unroutable: list[str] = field(default_factory=list)
    #: Pages routed to a cluster the repository has no rules for.
    skipped_count: int = 0
    skipped: list[str] = field(default_factory=list)
    per_cluster: Dict[str, ClusterStats] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def note_unroutable(self, url: str) -> None:
        self.unroutable_count += 1
        if len(self.unroutable) < URL_SAMPLE_CAP:
            self.unroutable.append(url)

    def note_skipped(self, url: str) -> None:
        self.skipped_count += 1
        if len(self.skipped) < URL_SAMPLE_CAP:
            self.skipped.append(url)

    @property
    def pages_served(self) -> int:
        return sum(stats.pages for stats in self.per_cluster.values())

    @property
    def pages_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.pages_served / self.wall_seconds

    def summary(self) -> str:
        lines = [
            f"pages seen      : {self.total_pages}",
            f"pages served    : {self.pages_served}"
            f"  ({self.pages_per_second:.1f} pages/s wall)",
            f"unroutable      : {self.unroutable_count}",
            f"no-rules skipped: {self.skipped_count}",
        ]
        for cluster in sorted(self.per_cluster):
            stats = self.per_cluster[cluster]
            lines.append(
                f"  {cluster}: {stats.pages} page(s), "
                f"{stats.values} value(s), {stats.failures} failure(s), "
                f"{stats.pages_per_second:.1f} pages/s worker"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #


class BatchExtractionEngine:
    """Fan a page stream out over compiled wrappers.

    Args:
        repository: validated rules (Section 3.5) for every served
            cluster.
        router: optional :class:`ClusterRouter`; without one, pages
            are routed by their generator ``cluster_hint``.
        postprocessor: optional value clean-up, applied exactly as the
            sequential processor would.
        workers: executor pool size (≥ 1).
        executor: ``"thread"`` (default; shares parsed DOMs) or
            ``"process"`` (re-parses in workers; real parallelism on
            multi-core hosts).
        chunk_size: pages per submitted work item.
        max_pending: in-flight chunk cap (default ``4 * workers``) —
            the memory bound for arbitrarily long streams.
        ordered: release records to the sink in strictly increasing
            submission-index order (reorder buffer over the chunked
            drain).  Required for shard-mergeable output
            (:mod:`repro.service.shard`); off by default because a
            badly skewed stream can defer many (slim) records behind
            one partially-filled cluster buffer.
    """

    def __init__(
        self,
        repository: RuleRepository,
        router: Optional[ClusterRouter] = None,
        postprocessor: Optional[PostProcessor] = None,
        workers: int = 2,
        executor: str = "thread",
        chunk_size: int = 16,
        max_pending: Optional[int] = None,
        ordered: bool = False,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor kind {executor!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.repository = repository
        self.router = router
        self.postprocessor = postprocessor
        self.workers = workers
        self.executor_kind = executor
        self.chunk_size = chunk_size
        self.max_pending = (
            max_pending if max_pending is not None else 4 * workers
        )
        self.ordered = ordered
        # Thread mode: wrappers apply post-processing in the worker.
        # Process mode: wrappers are rebuilt per process without the
        # (unpicklable) post-processor; the parent applies the resolved
        # chains below as records arrive — same values either way.
        self._wrappers: Dict[str, CompiledWrapper] = repository.compile_all(
            postprocessor if executor == "thread" else None
        )
        self._parent_post: Dict[str, Dict[str, Callable]] = {}
        if executor == "process" and postprocessor is not None:
            for cluster in repository.clusters():
                chains = {
                    name: chain
                    for name in repository.component_names(cluster)
                    if (chain := postprocessor.resolve(name)) is not None
                }
                if chains:
                    self._parent_post[cluster] = chains

    # ------------------------------------------------------------------ #

    def run(
        self,
        pages: Iterable[WebPage],
        sink: Optional[ResultSink] = None,
    ) -> EngineReport:
        """Route, extract and sink every page; returns the run report."""
        sink = sink if sink is not None else NullSink()
        report = EngineReport()
        started = time.perf_counter()
        executor = self._make_executor()
        pending: deque[tuple[str, Future]] = deque()
        buffers: Dict[str, list[tuple[int, WebPage]]] = {}
        emitter = _OrderedEmitter(sink) if self.ordered else None
        try:
            for index, page in enumerate(pages):
                report.total_pages += 1
                cluster = self._route(page, report)
                if cluster is None:
                    if emitter is not None:
                        emitter.emit(index, None)
                    continue
                buffer = buffers.setdefault(cluster, [])
                buffer.append((index, page))
                if len(buffer) >= self.chunk_size:
                    self._submit(executor, cluster, buffer, pending, report)
                    buffers[cluster] = []
                    while len(pending) >= self.max_pending:
                        self._drain_one(pending, sink, emitter, report)
            for cluster, buffer in buffers.items():
                if buffer:
                    self._submit(executor, cluster, buffer, pending, report)
            while pending:
                self._drain_one(pending, sink, emitter, report)
            assert emitter is None or emitter.held == 0
        finally:
            executor.shutdown(wait=True)
        report.wall_seconds = time.perf_counter() - started
        return report

    def run_collect(
        self, pages: Iterable[WebPage]
    ) -> tuple[EngineReport, list[PageRecord]]:
        """Small-batch convenience: run with an in-memory sink."""
        sink = CollectingSink()
        report = self.run(pages, sink)
        return report, sink.records

    def clusters(self) -> list[str]:
        """Served clusters (those with compiled wrappers)."""
        return list(self._wrappers)

    # ------------------------------------------------------------------ #

    def _make_executor(self):
        if self.executor_kind == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_process_worker,
                initargs=(self.repository.to_dict(),),
            )
        return ThreadPoolExecutor(max_workers=self.workers)

    def _route(self, page: WebPage, report: EngineReport) -> Optional[str]:
        if self.router is not None:
            decision = self.router.route(page)
            cluster = decision.cluster
            if cluster == UNROUTABLE:
                report.note_unroutable(page.url)
                return None
        else:
            cluster = page.cluster_hint
            if not cluster:
                report.note_unroutable(page.url)
                return None
        if cluster not in self._wrappers:
            report.note_skipped(page.url)
            return None
        report.routed[cluster] = report.routed.get(cluster, 0) + 1
        return cluster

    def _submit(
        self,
        executor,
        cluster: str,
        chunk: list[tuple[int, WebPage]],
        pending: deque,
        report: EngineReport,
    ) -> None:
        if self.executor_kind == "process":
            payload = [(index, page.url, page.html) for index, page in chunk]
            future = executor.submit(_process_chunk, cluster, payload)
        else:
            wrapper = self._wrappers[cluster]
            future = executor.submit(self._thread_chunk, wrapper, chunk)
        pending.append((cluster, future))
        stats = report.per_cluster.setdefault(cluster, ClusterStats())
        stats.chunks += 1

    @staticmethod
    def _thread_chunk(
        wrapper: CompiledWrapper, pages: list[tuple[int, WebPage]]
    ) -> tuple[list[_RecordTuple], float]:
        started = time.perf_counter()
        records = _extract_chunk(wrapper, pages)
        return records, time.perf_counter() - started

    def _drain_one(
        self,
        pending: deque,
        sink: ResultSink,
        emitter: Optional[_OrderedEmitter],
        report: EngineReport,
    ) -> None:
        cluster, future = pending.popleft()
        records, seconds = future.result()
        stats = report.per_cluster.setdefault(cluster, ClusterStats())
        stats.worker_seconds += seconds
        post = self._parent_post.get(cluster)
        for index, url, values, failures in records:
            if post is not None:
                values = {
                    name: post[name](vals) if name in post else vals
                    for name, vals in values.items()
                }
            record = PageRecord(
                url=url, cluster=cluster, values=values,
                failures=[tuple(f) for f in failures],
                index=index,
            )
            stats.pages += 1
            stats.values += sum(len(vals) for vals in values.values())
            stats.failures += len(failures)
            if emitter is not None:
                emitter.emit(index, record)
            else:
                sink.write(record)
