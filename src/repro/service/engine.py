"""The parallel batch extraction engine — a façade over the runtime.

Historically this module *was* the pipeline; since the
:mod:`repro.service.runtime` refactor it is a thin, stable public API
over a :class:`~repro.service.runtime.StreamingRuntime` driven by an
:class:`~repro.service.runtime.IterablePageSource`: pages are numbered
by stream position (the **submission index**), routed to a cluster,
extracted by compiled wrappers on a thread or process executor, and
drained into the sink — in completion order by default, or in strictly
increasing submission-index order with ``ordered=True`` (what makes a
sharded run mergeable into a stream byte-identical to an unsharded
one, :mod:`repro.service.shard`).

Every page is extracted by a :class:`~repro.service.compiler.
CompiledWrapper`, so values are byte-identical to the sequential
:class:`~repro.extraction.extractor.ExtractionProcessor`.

The report and stats types live in :mod:`repro.service.runtime`; they
are re-exported here under their historical names.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.repository import RuleRepository
from repro.extraction.postprocess import PostProcessor
from repro.service.router import ClusterRouter
from repro.service.runtime import (
    ClusterStats,
    EngineReport,
    IterablePageSource,
    StreamingRuntime,
    URL_SAMPLE_CAP,
)
from repro.service.sink import CollectingSink, PageRecord, ResultSink
from repro.sites.page import WebPage

__all__ = [
    "BatchExtractionEngine",
    "ClusterStats",
    "EngineReport",
    "URL_SAMPLE_CAP",
]


class BatchExtractionEngine:
    """Fan a page stream out over compiled wrappers.

    Args:
        repository: validated rules (Section 3.5) for every served
            cluster.
        router: optional :class:`ClusterRouter`; without one, pages
            are routed by their generator ``cluster_hint``.
        postprocessor: optional value clean-up, applied exactly as the
            sequential processor would.
        workers: executor pool size (≥ 1).
        executor: ``"thread"`` (default; shares parsed DOMs),
            ``"process"`` (re-parses in workers; real parallelism on
            multi-core hosts) or ``"inline"`` (the calling thread).
        chunk_size: pages per submitted work item.
        max_pending: in-flight chunk cap (default ``4 * workers``) —
            the memory bound for arbitrarily long streams.
        ordered: release records to the sink in strictly increasing
            submission-index order.
        adapter: an :class:`~repro.service.adapt.AdaptiveRouter`
            (mutually exclusive with ``router``); the run report then
            carries its drift/refit counts.
        metrics: a :class:`~repro.service.metrics.MetricsRegistry` for
            the runtime's per-cluster counters and latency histograms
            (default: the process-wide registry).
        automaton: compile wrappers with the single-pass extraction
            automaton (default); ``False`` keeps the shared-trie path.
        transport: process-executor page transport — ``"auto"``,
            ``"shm"`` or ``"pickle"`` (ignored by other executors).
    """

    def __init__(
        self,
        repository: RuleRepository,
        router: Optional[ClusterRouter] = None,
        postprocessor: Optional[PostProcessor] = None,
        workers: int = 2,
        executor: str = "thread",
        chunk_size: int = 16,
        max_pending: Optional[int] = None,
        ordered: bool = False,
        adapter=None,
        metrics=None,
        automaton: bool = True,
        transport: str = "auto",
    ) -> None:
        self.runtime = StreamingRuntime(
            repository,
            router=router,
            postprocessor=postprocessor,
            workers=workers,
            executor=executor,
            chunk_size=chunk_size,
            max_pending=max_pending,
            ordered=ordered,
            adapter=adapter,
            metrics=metrics,
            automaton=automaton,
            transport=transport,
        )
        self.repository = repository
        self.router = adapter if adapter is not None else router
        self.postprocessor = postprocessor
        self.adapter = adapter

    # -- configuration passthrough ------------------------------------- #

    @property
    def workers(self) -> int:
        """The wrapped runtime's executor pool size."""
        return self.runtime.workers

    @property
    def executor_kind(self) -> str:
        """``"inline"``, ``"thread"`` or ``"process"``."""
        return self.runtime.executor_kind

    @property
    def chunk_size(self) -> int:
        """Pages per submitted work item."""
        return self.runtime.chunk_size

    @property
    def max_pending(self) -> int:
        """In-flight chunk cap (the stream's memory bound)."""
        return self.runtime.max_pending

    @property
    def ordered(self) -> bool:
        """Whether records emit in strict submission-index order."""
        return self.runtime.ordered

    # ------------------------------------------------------------------ #

    def run(
        self,
        pages: Iterable[WebPage],
        sink: Optional[ResultSink] = None,
    ) -> EngineReport:
        """Route, extract and sink every page; returns the run report."""
        return self.runtime.run(IterablePageSource(pages), sink)

    def run_collect(
        self, pages: Iterable[WebPage]
    ) -> tuple[EngineReport, list[PageRecord]]:
        """Small-batch convenience: run with an in-memory sink."""
        sink = CollectingSink()
        report = self.run(pages, sink)
        return report, sink.records

    def clusters(self) -> list[str]:
        """Served clusters (those with compiled wrappers)."""
        return self.runtime.clusters()
