"""The streaming extraction runtime every entry point shares.

``batch``, ``shard run`` and ``serve`` are one pipeline wearing three
front-ends: pages come from somewhere (:class:`PageSource`), are routed
to a cluster, extracted by a compiled wrapper, stamped with their
global submission index, optionally transformed (:class:`Stage`), and
emitted into a :class:`RecordSink`.  Before this module each entry
point re-implemented that seam; now they compose one
:class:`StreamingRuntime`:

* ``BatchExtractionEngine`` (:mod:`repro.service.engine`) is a façade:
  an :class:`IterablePageSource` numbered from 0 over a runtime with a
  thread or process executor;
* ``ShardWorker`` (:mod:`repro.service.shard`) runs a runtime over a
  :class:`LoadingPageSource` carrying the plan's *global* indices, so
  shard outputs merge byte-identically into the unsharded stream;
* ``serve`` (:mod:`repro.service.serve`) wraps single pages in an
  **inline** runtime with error containment, under a synchronous or
  ``asyncio`` front-end.

Executors are pluggable: ``"inline"`` runs chunks on the calling
thread (serving, tests), ``"thread"`` shares parsed DOMs across a
pool, ``"process"`` re-parses in workers for real multi-core
parallelism.  Emission is unordered (records leave as chunks complete)
or ordered (an :class:`OrderedEmitter` reorder buffer releases records
in submission order — the property that makes sharded runs mergeable).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.repository import RuleRepository
from repro.extraction.postprocess import PostProcessor
from repro.service.compiler import CompiledWrapper, CompilerStats
from repro.service.metrics import default_registry
from repro.service.router import ClusterRouter
from repro.service.sink import (
    CollectingSink,
    NullSink,
    PageRecord,
    ResultSink,
    make_error_record,
)
from repro.service.transport import (
    TRANSPORT_KINDS,
    SharedMemoryPageTransport,
    load_shm_chunk,
)
from repro.sites.page import WebPage

#: What a source yields: (global submission index, page).  Indices must
#: be strictly increasing; they need not be dense (shard slices and
#: skipped files leave gaps).
SourceItem = Tuple[int, WebPage]

#: A worker's outcome for one page:
#: (sequence, global index, url, values, failures, error message).
#: ``error`` is ``None`` on success; on a contained extraction error
#: ``values`` is ``None`` and ``error`` carries the message.
_Outcome = tuple[int, int, str, Optional[dict], list, Optional[str]]


# --------------------------------------------------------------------- #
# Protocols
# --------------------------------------------------------------------- #


@runtime_checkable
class PageSource(Protocol):
    """Anything that yields ``(global index, page)`` in index order."""

    def __iter__(self) -> Iterator[SourceItem]: ...  # pragma: no cover


@runtime_checkable
class Stage(Protocol):
    """A per-record transform between extraction and emission.

    Returns the (possibly mutated) record to keep it, or ``None`` to
    drop it from the stream (the drop is counted in the report and
    never stalls ordered emission).
    """

    def __call__(
        self, record: PageRecord
    ) -> Optional[PageRecord]: ...  # pragma: no cover


@runtime_checkable
class RecordSink(Protocol):
    """Structural view of :class:`~repro.service.sink.ResultSink`."""

    def write(self, record: PageRecord) -> None:  # pragma: no cover
        """Accept one extracted record."""

    def close(self) -> None:  # pragma: no cover
        """Flush and release the sink's resources."""


# --------------------------------------------------------------------- #
# Sources
# --------------------------------------------------------------------- #


class IterablePageSource:
    """Number an in-memory page stream by position: ``start + offset``.

    The source the engine façade uses: submission index == stream
    position, exactly the pre-runtime engine numbering.
    """

    def __init__(self, pages: Iterable[WebPage], start: int = 0) -> None:
        self.pages = pages
        self.start = start

    def __iter__(self) -> Iterator[SourceItem]:
        for index, page in enumerate(self.pages, self.start):
            yield index, page


class LoadingPageSource:
    """Materialise ``(global index, page id)`` work items lazily.

    Both ``batch`` (corpus positions over file paths) and ``shard run``
    (a plan's global indices over page ids) stream their corpus through
    this source: only the runtime's in-flight window is ever in memory,
    and an unreadable item can be skipped (recorded, reported) instead
    of aborting a million-page run.

    Attributes after (or during) iteration:

    * ``unreadable`` — the skipped page ids, in order;
    * ``index_min`` / ``index_max`` — first/last *yielded* global index
      (``None`` until something yields);
    * ``yielded`` — count of pages actually produced.
    """

    def __init__(
        self,
        items: Iterable[Tuple[int, object]],
        load: Callable[[object], WebPage],
        skip_unreadable: bool = False,
        on_skip: Optional[Callable[[object, Exception], None]] = None,
    ) -> None:
        self.items = items
        self.load = load
        self.skip_unreadable = skip_unreadable
        self.on_skip = on_skip
        self.unreadable: list = []
        self.index_min: Optional[int] = None
        self.index_max: Optional[int] = None
        self.yielded = 0

    def __iter__(self) -> Iterator[SourceItem]:
        for index, page_id in self.items:
            try:
                page = self.load(page_id)
            except (OSError, UnicodeDecodeError) as exc:
                if not self.skip_unreadable:
                    raise
                self.unreadable.append(page_id)
                if self.on_skip is not None:
                    self.on_skip(page_id, exc)
                continue
            if self.index_min is None:
                self.index_min = index
            self.index_max = index
            self.yielded += 1
            yield index, page


# --------------------------------------------------------------------- #
# Ordered emission
# --------------------------------------------------------------------- #


class OrderedEmitter:
    """Release payloads in strictly increasing sequence order.

    Producers complete out of order (chunks from different clusters
    interleave; async serve tasks finish whenever); this buffer holds a
    completed payload until every earlier sequence number has been
    emitted or declared dropped (``None`` — unroutable pages, contained
    errors and stage drops consume a sequence slot but produce no
    payload, so gaps never stall the stream).

    Worst-case held-payload count is bounded by the payloads deferred
    behind the oldest incomplete sequence number — small for balanced
    streams; held items are slim records or lines, never DOMs.  The
    runtime keys this by an internal dense sequence counter (not the
    sparse global index), so shard slices order correctly too.
    """

    def __init__(self, write: Callable[[object], None]) -> None:
        self._write = write
        self._next = 0
        self._held: Dict[int, Optional[object]] = {}

    def emit(self, seq: int, payload: Optional[object]) -> None:
        """Hand over a sequence slot's outcome: a payload, or ``None``.

        Each sequence slot may be filled exactly once: re-emitting a
        released or still-held sequence means two producers claimed the
        same slot (a duplicated record, or a lost+retried chunk) and
        would silently drop or reorder output — it raises instead.
        """
        if seq < self._next or seq in self._held:
            raise ValueError(
                f"sequence {seq} emitted twice "
                f"(next unreleased: {self._next})"
            )
        self._held[seq] = payload
        while self._next in self._held:
            released = self._held.pop(self._next)
            self._next += 1
            if released is not None:
                self._write(released)

    @property
    def held(self) -> int:
        """Records currently buffered awaiting their turn."""
        return len(self._held)

    @property
    def next_seq(self) -> int:
        """The sequence number blocking release (first not yet emitted)."""
        return self._next


# --------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------- #


@dataclass
class ClusterStats:
    """Throughput/error accounting for one served cluster.

    Chunks served by a worker that had to compile the cluster's wrapper
    first are *cold*: their pages and seconds are still counted in the
    totals, but the throughput figure prefers the warm-only numbers so
    one-off warm-up cost cannot skew per-cluster pages/sec.
    """

    pages: int = 0
    values: int = 0
    failures: int = 0
    chunks: int = 0
    worker_seconds: float = 0.0
    #: Chunks that paid a wrapper compile in their worker.
    cold_chunks: int = 0
    #: Pages/seconds from warm chunks only (throughput basis).
    warm_pages: int = 0
    warm_seconds: float = 0.0

    @property
    def pages_per_second(self) -> float:
        """Worker throughput (warm chunks when any, else all chunks)."""
        if self.warm_seconds > 0:
            return self.warm_pages / self.warm_seconds
        if self.worker_seconds <= 0:
            return 0.0
        return self.pages / self.worker_seconds


#: Rejected-page URL lists keep at most this many examples, so the
#: report stays bounded on arbitrarily long streams (counts are exact).
URL_SAMPLE_CAP = 100


@dataclass
class RuntimeReport:
    """Everything one runtime run observed.

    ``unroutable``/``skipped``/``errors`` hold a bounded *sample* of
    URLs (:data:`URL_SAMPLE_CAP`); the ``*_count`` fields are exact.
    ``errors_count`` stays 0 unless the runtime runs with
    ``contain_errors=True`` (extraction exceptions otherwise
    propagate); ``dropped_count`` counts records a :class:`Stage`
    removed.
    """

    total_pages: int = 0
    routed: Dict[str, int] = field(default_factory=dict)
    unroutable_count: int = 0
    unroutable: list[str] = field(default_factory=list)
    #: Pages routed to a cluster the repository has no rules for.
    skipped_count: int = 0
    skipped: list[str] = field(default_factory=list)
    #: Pages whose extraction raised (contained-errors mode only).
    errors_count: int = 0
    errors: list[str] = field(default_factory=list)
    #: Records removed by a pipeline stage.
    dropped_count: int = 0
    #: Drift events raised / refits performed by an adaptive router
    #: during this run (0 unless the runtime was built with ``adapter``).
    drift_events: int = 0
    refits: int = 0
    per_cluster: Dict[str, ClusterStats] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: ``True`` when the run stopped early on a cooperative
    #: :class:`~repro.service.metrics.CancellationToken`: admitted
    #: pages were drained (output is line-complete), the rest of the
    #: source was never read.
    cancelled: bool = False

    def note_unroutable(self, url: str) -> None:
        """Count an unroutable page (URL sampled up to the cap)."""
        self.unroutable_count += 1
        if len(self.unroutable) < URL_SAMPLE_CAP:
            self.unroutable.append(url)

    def note_skipped(self, url: str) -> None:
        """Count a no-rules skip (URL sampled up to the cap)."""
        self.skipped_count += 1
        if len(self.skipped) < URL_SAMPLE_CAP:
            self.skipped.append(url)

    def note_error(self, url: str) -> None:
        """Count a failed page (URL sampled up to the cap)."""
        self.errors_count += 1
        if len(self.errors) < URL_SAMPLE_CAP:
            self.errors.append(url)

    @property
    def pages_served(self) -> int:
        """Pages that produced a record, across clusters."""
        return sum(stats.pages for stats in self.per_cluster.values())

    @property
    def pages_per_second(self) -> float:
        """Wall-clock throughput of the finished run."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.pages_served / self.wall_seconds

    def summary(self) -> str:
        """The human-readable multi-line run summary."""
        lines = [
            f"pages seen      : {self.total_pages}",
            f"pages served    : {self.pages_served}"
            f"  ({self.pages_per_second:.1f} pages/s wall)",
            f"unroutable      : {self.unroutable_count}",
            f"no-rules skipped: {self.skipped_count}",
        ]
        if self.errors_count:
            lines.append(f"extraction error: {self.errors_count}")
        if self.dropped_count:
            lines.append(f"stage-dropped   : {self.dropped_count}")
        if self.cancelled:
            lines.append("interrupted     : yes (partial, line-complete)")
        if self.drift_events or self.refits:
            lines.append(
                f"drift events    : {self.drift_events} "
                f"({self.refits} refit(s))"
            )
        for cluster in sorted(self.per_cluster):
            stats = self.per_cluster[cluster]
            lines.append(
                f"  {cluster}: {stats.pages} page(s), "
                f"{stats.values} value(s), {stats.failures} failure(s), "
                f"{stats.pages_per_second:.1f} pages/s worker"
            )
        return "\n".join(lines)


#: Historical name — the report predates the runtime refactor and is
#: still what :class:`~repro.service.engine.BatchExtractionEngine`
#: returns.
EngineReport = RuntimeReport


# --------------------------------------------------------------------- #
# Extraction workers (shared by every executor kind)
# --------------------------------------------------------------------- #

# Compiled wrappers hold DOM-walking closures and are rebuilt per
# process from the repository's plain-dict form; HTML is re-parsed in
# the worker.  Post-processing runs in the parent for process mode
# (transform chains may be arbitrary closures).

_WORKER_REPOSITORY: Optional[RuleRepository] = None
_WORKER_WRAPPERS: Dict[str, CompiledWrapper] = {}
_WORKER_AUTOMATON: bool = True


def _init_process_worker(
    repository_data: dict, automaton: bool = True
) -> None:
    global _WORKER_REPOSITORY, _WORKER_WRAPPERS, _WORKER_AUTOMATON
    _WORKER_REPOSITORY = RuleRepository.from_dict(repository_data)
    _WORKER_WRAPPERS = {}
    _WORKER_AUTOMATON = automaton


def _worker_wrapper(cluster: str) -> tuple[CompiledWrapper, bool]:
    """This worker's wrapper for ``cluster``, plus whether it was warm.

    The first chunk a worker sees for a cluster pays the wrapper
    compile; the ``warm`` flag lets the parent keep that chunk out of
    the per-cluster throughput stats (warm-up skew otherwise drags the
    early pages/sec numbers down).
    """
    assert _WORKER_REPOSITORY is not None, "worker not initialised"
    wrapper = _WORKER_WRAPPERS.get(cluster)
    warm = wrapper is not None
    if wrapper is None:
        wrapper = _WORKER_REPOSITORY.compile_cluster(
            cluster, automaton=_WORKER_AUTOMATON
        )
        _WORKER_WRAPPERS[cluster] = wrapper
    return wrapper, warm


def _process_chunk(
    cluster: str,
    payload: list[tuple[int, int, str, str]],
    contain_errors: bool,
) -> tuple[list[_Outcome], float, bool]:
    wrapper, warm = _worker_wrapper(cluster)
    # Timer starts after the one-off wrapper compile so worker
    # throughput stats reflect extraction, not warm-up.
    started = time.perf_counter()
    outcomes = _extract_chunk(
        wrapper,
        [
            (seq, index, WebPage(url=url, html=html))
            for seq, index, url, html in payload
        ],
        contain_errors,
    )
    return outcomes, time.perf_counter() - started, warm


def _process_chunk_shm(
    cluster: str,
    payload: tuple,
    contain_errors: bool,
) -> tuple[list[_Outcome], float, bool]:
    """Like :func:`_process_chunk`, pages read from shared memory."""
    wrapper, warm = _worker_wrapper(cluster)
    name, entries = payload
    started = time.perf_counter()
    outcomes = _extract_chunk(
        wrapper, load_shm_chunk(name, entries), contain_errors
    )
    return outcomes, time.perf_counter() - started, warm


def _extract_one(
    wrapper: CompiledWrapper,
    seq: int,
    index: int,
    page: WebPage,
    contain_errors: bool,
) -> _Outcome:
    failures: list = []
    if contain_errors:
        try:
            extracted = wrapper.extract_page(page, failures)
        except Exception as exc:
            # One pathological page must not end the stream: surface
            # it as an error outcome instead of killing the run.
            message = f"{type(exc).__name__}: {exc}"
            return (seq, index, page.url, None, [], message)
    else:
        extracted = wrapper.extract_page(page, failures)
    return (
        seq,
        index,
        page.url,
        extracted.values,
        [(f.component_name, f.reason) for f in failures],
        None,
    )


def _extract_chunk(
    wrapper: CompiledWrapper,
    pages: list[tuple[int, int, WebPage]],
    contain_errors: bool,
) -> list[_Outcome]:
    return [
        _extract_one(wrapper, seq, index, page, contain_errors)
        for seq, index, page in pages
    ]


# --------------------------------------------------------------------- #
# Pipeline stages
# --------------------------------------------------------------------- #


class ParentPostProcessStage:
    """Apply resolved post-processor chains in the parent process.

    Process executors rebuild wrappers without the (unpicklable)
    post-processor; this stage applies the per-cluster chains to each
    record as it is drained, producing the same values thread mode
    bakes into its wrappers.
    """

    def __init__(self, chains: Dict[str, Dict[str, Callable]]) -> None:
        self._chains = chains

    def __call__(self, record: PageRecord) -> PageRecord:
        chains = self._chains.get(record.cluster)
        if chains is not None:
            record.values = {
                name: chains[name](values) if name in chains else values
                for name, values in record.values.items()
            }
        return record


# --------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------- #


class _ImmediateFuture:
    """A completed future: the inline executor runs work at submit."""

    def __init__(self, fn: Callable, args: tuple) -> None:
        self._value = None
        self._error: Optional[BaseException] = None
        try:
            self._value = fn(*args)
        except BaseException as exc:  # re-raised at drain, like a pool
            self._error = exc

    def result(self):
        """The chunk's outcome (re-raises the worker's exception)."""
        if self._error is not None:
            raise self._error
        return self._value


class _InlineExecutor:
    """Chunk execution on the calling thread — no pool, no handoff.

    The right executor for online serving (one page at a time, lowest
    latency) and for deterministic tests.
    """

    def submit(self, fn: Callable, *args) -> _ImmediateFuture:
        """Run ``fn`` immediately; returns the completed future."""
        return _ImmediateFuture(fn, args)

    def shutdown(self, wait: bool = True) -> None:
        """Nothing to release (signature parity with real pools)."""
        pass


EXECUTOR_KINDS = ("inline", "thread", "process")


# --------------------------------------------------------------------- #
# The runtime
# --------------------------------------------------------------------- #


class StreamingRuntime:
    """Compose route → extract → stamp-index → emit over a page source.

    Args:
        repository: validated rules (Section 3.5) for every served
            cluster.
        router: optional :class:`ClusterRouter`; without one, pages
            are routed by their generator ``cluster_hint``.
        postprocessor: optional value clean-up, applied exactly as the
            sequential processor would.
        workers: executor pool size (≥ 1; ignored by ``inline``).
        executor: ``"inline"`` (calling thread), ``"thread"`` (default;
            shares parsed DOMs) or ``"process"`` (re-parses in workers;
            real parallelism on multi-core hosts).
        chunk_size: pages per submitted work item.
        max_pending: in-flight chunk cap (default ``4 * workers``) —
            the memory bound for arbitrarily long streams.
        ordered: release records to the sink in strictly increasing
            submission order (an :class:`OrderedEmitter` over the
            chunked drain; partial buffers damming the stream are
            submitted early, so held records stay bounded by the
            in-flight window).  Required for shard-mergeable output
            (:mod:`repro.service.shard`); off by default because
            as-completed emission is cheaper when order is noise.
        stages: extra per-record transforms applied between extraction
            and emission (a stage returning ``None`` drops the record).
        contain_errors: turn per-page extraction exceptions into error
            records (:func:`~repro.service.sink.make_error_record`)
            written via the sink's ``write_error`` instead of letting
            them kill the run — at the page's submission position when
            ``ordered``.  The online serving mode.
        adapter: an :class:`~repro.service.adapt.AdaptiveRouter`
            (mutually exclusive with ``router``): routing goes through
            it, its feedback stage is installed ahead of ``stages``,
            and the run report carries the drift/refit counts it
            accumulated during the run.
        metrics: a :class:`~repro.service.metrics.MetricsRegistry`
            receiving per-cluster routed/failed counters and the
            route/extract latency histograms (default: the
            process-wide registry; pass
            :data:`~repro.service.metrics.NULL_METRICS` to run
            uninstrumented).  Instrumentation never touches output
            bytes.
        automaton: compile wrappers with the single-pass extraction
            automaton (default); ``False`` keeps the shared-trie path
            (the ``--no-automaton`` escape hatch).  Output bytes are
            identical either way.
        transport: page transport for the process executor —
            ``"auto"`` (shared memory when available, else pickle),
            ``"shm"`` (require shared memory) or ``"pickle"`` (force
            the legacy inline payloads).  Ignored by other executors.
    """

    def __init__(
        self,
        repository: RuleRepository,
        router: Optional[ClusterRouter] = None,
        postprocessor: Optional[PostProcessor] = None,
        workers: int = 2,
        executor: str = "thread",
        chunk_size: int = 16,
        max_pending: Optional[int] = None,
        ordered: bool = False,
        stages: Sequence[Stage] = (),
        contain_errors: bool = False,
        adapter=None,
        metrics=None,
        automaton: bool = True,
        transport: str = "auto",
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(f"unknown executor kind {executor!r}")
        if transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {transport!r} "
                f"(choose from {TRANSPORT_KINDS})"
            )
        if adapter is not None:
            if router is not None:
                raise ValueError(
                    "pass router or adapter, not both "
                    "(the adapter wraps its own router)"
                )
            router = adapter
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.repository = repository
        self.router = router
        self.postprocessor = postprocessor
        self.workers = workers
        self.executor_kind = executor
        self.chunk_size = chunk_size
        self.max_pending = (
            max_pending if max_pending is not None else 4 * workers
        )
        self.ordered = ordered
        self.contain_errors = contain_errors
        self.adapter = adapter
        self.automaton = automaton
        self.transport = transport
        self.metrics = metrics if metrics is not None else default_registry()
        self._transport = (
            SharedMemoryPageTransport(mode=transport, metrics=self.metrics)
            if executor == "process"
            else None
        )
        self._m_routed = self.metrics.from_spec("repro_pages_routed_total")
        self._m_unroutable = self.metrics.from_spec(
            "repro_pages_unroutable_total"
        )
        self._m_skipped = self.metrics.from_spec("repro_pages_skipped_total")
        self._m_failed = self.metrics.from_spec("repro_pages_failed_total")
        self._m_route_seconds = self.metrics.from_spec("repro_route_seconds")
        self._m_extract_seconds = self.metrics.from_spec(
            "repro_extract_seconds"
        )
        self._m_automaton_pages = self.metrics.from_spec(
            "repro_automaton_pages_total"
        )
        self._m_cold_chunks = self.metrics.from_spec(
            "repro_chunks_cold_total"
        )
        # Thread/inline mode: wrappers apply post-processing in the
        # worker.  Process mode: wrappers are rebuilt per process
        # without the (unpicklable) post-processor; a parent-side stage
        # applies the resolved chains as records drain — same values
        # either way.
        self._wrappers: Dict[str, CompiledWrapper] = repository.compile_all(
            postprocessor if executor != "process" else None,
            automaton=automaton,
        )
        #: Clusters whose wrapper actually drives the automaton (at
        #: least one location compiled to a slot) — the basis for the
        #: ``repro_automaton_pages_total`` counter.
        self._automaton_clusters = {
            cluster
            for cluster, wrapper in self._wrappers.items()
            if wrapper.stats.automaton_slots > 0
        }
        self._stages: list[Stage] = []
        if executor == "process" and postprocessor is not None:
            chains: Dict[str, Dict[str, Callable]] = {}
            for cluster in repository.clusters():
                resolved = {
                    name: chain
                    for name in repository.component_names(cluster)
                    if (chain := postprocessor.resolve(name)) is not None
                }
                if resolved:
                    chains[cluster] = resolved
            if chains:
                self._stages.append(ParentPostProcessStage(chains))
        if adapter is not None:
            # Feedback before user stages, so a stage that drops a
            # record cannot hide its extraction outcome from drift
            # detection.
            self._stages.append(adapter.stage())
        self._stages.extend(stages)

    # ------------------------------------------------------------------ #

    def run(
        self,
        source: PageSource,
        sink: Optional[ResultSink] = None,
        cancel=None,
        on_progress: Optional[Callable[[RuntimeReport], None]] = None,
    ) -> RuntimeReport:
        """Route, extract and sink every page; returns the run report.

        Args:
            source: the page stream (``(global index, page)`` items).
            sink: where records go (default: discarded).
            cancel: an optional
                :class:`~repro.service.metrics.CancellationToken`;
                when it is set the runtime stops admitting pages,
                drains everything already in flight (output stays
                line-complete) and returns a report with
                ``cancelled=True``.
            on_progress: optional callback invoked with the live
                report after every drained chunk — what a
                :class:`~repro.service.metrics.ProgressEmitter`
                plugs into for periodic progress lines.
        """
        sink = sink if sink is not None else NullSink()
        report = RuntimeReport()
        # Adapters outlive runs (a serve session is many single-page
        # runs); the report carries only this run's share.
        drift_before = refits_before = 0
        if self.adapter is not None:
            drift_before = self.adapter.drift_events
            refits_before = self.adapter.refits
        started = time.perf_counter()
        executor = self._make_executor()
        pending: deque[tuple[str, object, Optional[str]]] = deque()
        buffers: Dict[str, list[tuple[int, int, WebPage]]] = {}

        def release(item) -> None:
            # Ordered emission carries error payloads (contained-errors
            # mode) through the same reorder buffer as records, so the
            # sink sees one strictly submission-ordered stream.
            """Hand one drained item to the sink (records and errors alike)."""
            if isinstance(item, PageRecord):
                sink.write(item)
            else:
                sink.write_error(item)

        emitter = OrderedEmitter(release) if self.ordered else None
        try:
            for seq, (index, page) in enumerate(iter(source)):
                if cancel is not None and cancel.is_set():
                    # Cooperative stop: admit nothing more; the tail
                    # below still drains every in-flight chunk so the
                    # sink ends on a record boundary.
                    report.cancelled = True
                    break
                report.total_pages += 1
                cluster = self._route(page, report)
                if cluster is None:
                    if emitter is not None:
                        emitter.emit(seq, None)
                    continue
                buffer = buffers.setdefault(cluster, [])
                buffer.append((seq, index, page))
                if len(buffer) >= self.chunk_size:
                    self._submit(executor, cluster, buffer, pending, report)
                    buffers[cluster] = []
                    while len(pending) >= self.max_pending:
                        self._drain_one(pending, sink, emitter, report)
                        if on_progress is not None:
                            on_progress(report)
                        # A partially-filled buffer from a quiet cluster
                        # must not dam the reorder buffer behind it: if
                        # the sequence the emitter needs next is sitting
                        # in a buffer, submit that buffer early.  Held
                        # records stay bounded by the in-flight window
                        # instead of growing with the stream; ordered
                        # emission makes the output bytes independent of
                        # the changed chunk boundaries.
                        if emitter is not None:
                            self._flush_blocking_buffer(
                                executor, buffers, pending, report, emitter
                            )
            for cluster, buffer in buffers.items():
                if buffer:
                    self._submit(executor, cluster, buffer, pending, report)
            while pending:
                self._drain_one(pending, sink, emitter, report)
                if on_progress is not None:
                    on_progress(report)
            assert emitter is None or emitter.held == 0
        finally:
            executor.shutdown(wait=True)
            if self._transport is not None:
                # Error-path sweep: normal drains already released
                # their leases; this reclaims segments stranded by an
                # exception or cancellation mid-flight.
                self._transport.close_all()
        if self.adapter is not None:
            report.drift_events = self.adapter.drift_events - drift_before
            report.refits = self.adapter.refits - refits_before
        report.wall_seconds = time.perf_counter() - started
        return report

    def run_collect(
        self, source: PageSource
    ) -> tuple[RuntimeReport, list[PageRecord]]:
        """Small-batch convenience: run with an in-memory sink."""
        sink = CollectingSink()
        report = self.run(source, sink)
        return report, sink.records

    def clusters(self) -> list[str]:
        """Served clusters (those with compiled wrappers)."""
        return list(self._wrappers)

    def wrapper_for(self, cluster: str) -> Optional[CompiledWrapper]:
        """The compiled wrapper serving ``cluster`` (``None`` if unserved).

        The canary dry-run extractor scores shadow-routing decisions
        through this without re-compiling anything.
        """
        return self._wrappers.get(cluster)

    def wrapper_stats(self) -> Dict[str, "CompilerStats"]:
        """Per-cluster compiler stats (automaton shape included).

        What ``--progress`` surfaces in its ``compile`` event and
        ``registry show --stats`` prints per version.
        """
        return {
            cluster: wrapper.stats
            for cluster, wrapper in self._wrappers.items()
        }

    # ------------------------------------------------------------------ #

    def _make_executor(self):
        if self.executor_kind == "process":
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_process_worker,
                initargs=(self.repository.to_dict(), self.automaton),
            )
        if self.executor_kind == "thread":
            return ThreadPoolExecutor(max_workers=self.workers)
        return _InlineExecutor()

    def _route(
        self, page: WebPage, report: RuntimeReport
    ) -> Optional[str]:
        started = time.perf_counter()
        try:
            if self.router is not None:
                cluster = self.router.target(page)
                if cluster is None:
                    report.note_unroutable(page.url)
                    self._m_unroutable.inc()
                    return None
            else:
                cluster = page.cluster_hint
                if not cluster:
                    report.note_unroutable(page.url)
                    self._m_unroutable.inc()
                    return None
            if cluster not in self._wrappers:
                report.note_skipped(page.url)
                self._m_skipped.inc()
                return None
            report.routed[cluster] = report.routed.get(cluster, 0) + 1
            self._m_routed.labels(cluster).inc()
            return cluster
        finally:
            self._m_route_seconds.observe(time.perf_counter() - started)

    def _flush_blocking_buffer(
        self,
        executor,
        buffers: Dict[str, list[tuple[int, int, WebPage]]],
        pending: deque,
        report: RuntimeReport,
        emitter: OrderedEmitter,
    ) -> None:
        """Submit the partial chunk holding the next-to-release sequence.

        The needed sequence, when buffered at all, is necessarily the
        *first* entry of its cluster's buffer (anything earlier in that
        buffer would itself be unreleased and smaller), so a head check
        per cluster suffices.
        """
        needed = emitter.next_seq
        for cluster, buffer in buffers.items():
            if buffer and buffer[0][0] == needed:
                self._submit(executor, cluster, buffer, pending, report)
                buffers[cluster] = []
                return

    def _submit(
        self,
        executor,
        cluster: str,
        chunk: list[tuple[int, int, WebPage]],
        pending: deque,
        report: RuntimeReport,
    ) -> None:
        lease: Optional[str] = None
        if self.executor_kind == "process":
            staged = self._transport.stage(chunk)
            lease = staged.segment
            worker = _process_chunk_shm if lease is not None else _process_chunk
            try:
                future = executor.submit(
                    worker, cluster, staged.payload, self.contain_errors
                )
            except BaseException:
                # Stage succeeded but no future exists to carry the
                # lease: without this release the segment would only
                # fall to the close_all() sweep — or leak outright if
                # the caller swallows the submit failure.
                if lease is not None:
                    self._transport.release(lease)
                raise
        else:
            wrapper = self._wrappers[cluster]
            future = executor.submit(
                self._local_chunk, wrapper, chunk, self.contain_errors
            )
        pending.append((cluster, future, lease))
        stats = report.per_cluster.setdefault(cluster, ClusterStats())
        stats.chunks += 1

    @staticmethod
    def _local_chunk(
        wrapper: CompiledWrapper,
        pages: list[tuple[int, int, WebPage]],
        contain_errors: bool,
    ) -> tuple[list[_Outcome], float, bool]:
        # Local executors share the parent's pre-compiled wrappers, so
        # every chunk is warm by construction.
        started = time.perf_counter()
        outcomes = _extract_chunk(wrapper, pages, contain_errors)
        return outcomes, time.perf_counter() - started, True

    def _drain_one(
        self,
        pending: deque,
        sink: ResultSink,
        emitter: Optional[OrderedEmitter],
        report: RuntimeReport,
    ) -> None:
        cluster, future, lease = pending.popleft()
        try:
            outcomes, seconds, warm = future.result()
        finally:
            # The segment lease must drop however the chunk ended —
            # success, contained error or a dead worker alike.
            if lease is not None:
                self._transport.release(lease)
        stats = report.per_cluster.setdefault(cluster, ClusterStats())
        stats.worker_seconds += seconds
        if warm:
            stats.warm_pages += len(outcomes)
            stats.warm_seconds += seconds
        else:
            stats.cold_chunks += 1
            self._m_cold_chunks.labels(cluster).inc()
        if outcomes and cluster in self._automaton_clusters:
            self._m_automaton_pages.labels(cluster).inc(len(outcomes))
        if outcomes:
            # Workers time whole chunks; spread the cost evenly so the
            # histogram stays per-page comparable across chunk sizes.
            per_page_seconds = seconds / len(outcomes)
            extract_hist = self._m_extract_seconds.labels(cluster)
        for seq, index, url, values, failures, error in outcomes:
            extract_hist.observe(per_page_seconds)
            if error is not None:
                report.note_error(url)
                self._m_failed.labels(cluster).inc()
                # Error outcomes never reach the stage pipeline, so
                # the drift monitor must hear about them here — an
                # extraction that *raises* on every page is drift just
                # as surely as one that fails componentwise.
                if self.adapter is not None:
                    self.adapter.note_result(cluster, True)
                payload = make_error_record(error, url=url)
                if emitter is not None:
                    emitter.emit(seq, payload)
                else:
                    sink.write_error(payload)
                continue
            record = PageRecord(
                url=url, cluster=cluster, values=values,
                failures=[tuple(f) for f in failures],
                index=index,
            )
            for stage in self._stages:
                record = stage(record)
                if record is None:
                    break
            if record is None:
                report.dropped_count += 1
                if emitter is not None:
                    emitter.emit(seq, None)
                continue
            stats.pages += 1
            stats.values += sum(len(vals) for vals in record.values.values())
            stats.failures += len(record.failures)
            if emitter is not None:
                emitter.emit(seq, record)
            else:
                sink.write(record)
