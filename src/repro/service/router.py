"""Cluster routing: which wrapper should serve an incoming page?

The interactive pipeline relies on ``cluster_hint`` — a label only
synthetic generators provide.  A serving layer cannot: pages arrive
unlabelled, so the router re-uses the paper's Section-2.1 membership
signals (URL shape, concept keywords, HTML structure — computed via
:func:`repro.clustering.features.page_signature`) to classify each
page against per-cluster profiles fitted from exemplar pages.

Scoring per cluster::

    score = 0.55 * structure_similarity(page paths, centroid paths)
          + 0.30 * cosine(page keywords, centroid keywords)
          + 0.15 * [page URL signature seen in exemplars]

The best-scoring cluster wins when its score clears the confidence
threshold; everything else lands in the :data:`UNROUTABLE` bucket
rather than being mis-served — a wrong wrapper produces silently wrong
data, no wrapper produces an auditable gap.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.clustering.features import PageSignature, page_signature
from repro.clustering.similarity import cosine_similarity, structure_similarity
from repro.errors import ClusteringError
from repro.sites.page import WebPage

#: Route target for pages no profile claims confidently.
UNROUTABLE = "unroutable"

_STRUCTURE_WEIGHT = 0.55
_KEYWORD_WEIGHT = 0.30
_URL_WEIGHT = 0.15


@dataclass(frozen=True)
class ClusterProfile:
    """Fitted signature centroid of one cluster's exemplar pages."""

    name: str
    url_signatures: frozenset
    keywords: Counter
    paths: Counter

    def score(self, signature: PageSignature) -> float:
        structure = structure_similarity(signature.paths, self.paths)
        keywords = cosine_similarity(signature.keywords, self.keywords)
        url = 1.0 if signature.url_signature in self.url_signatures else 0.0
        return (
            _STRUCTURE_WEIGHT * structure
            + _KEYWORD_WEIGHT * keywords
            + _URL_WEIGHT * url
        )


@dataclass(frozen=True)
class RouteDecision:
    """Routing outcome for one page."""

    cluster: str            # cluster name, or UNROUTABLE
    confidence: float       # best profile score in [0, 1]
    runner_up: Optional[str] = None
    margin: float = 0.0     # best minus second-best score

    @property
    def routed(self) -> bool:
        return self.cluster != UNROUTABLE


def _centroid(counters: Sequence[Counter]) -> Counter:
    """Element-wise mean of frequency vectors (float-valued Counter)."""
    total: Counter = Counter()
    for counter in counters:
        total.update(counter)
    n = len(counters)
    return Counter({key: value / n for key, value in total.items()})


class ClusterRouter:
    """Routes pages to clusters by signature similarity.

    Args:
        profiles: fitted per-cluster profiles.
        threshold: minimum best score to route; below it the page is
            :data:`UNROUTABLE`.

    Build instances with :meth:`fit`.
    """

    def __init__(
        self, profiles: Sequence[ClusterProfile], threshold: float = 0.5
    ) -> None:
        if not profiles:
            raise ClusteringError("router needs at least one cluster profile")
        self.profiles = list(profiles)
        self.threshold = threshold

    @classmethod
    def fit(
        cls,
        exemplars: Mapping[str, Sequence[WebPage]],
        threshold: float = 0.5,
    ) -> "ClusterRouter":
        """Fit per-cluster profiles from labelled exemplar pages.

        Args:
            exemplars: cluster name -> a few representative pages
                (the working sample the rules were validated on is a
                natural choice).
            threshold: routing confidence threshold.

        Raises:
            ClusteringError: when ``exemplars`` is empty or any cluster
                has no pages.
        """
        profiles: list[ClusterProfile] = []
        for name, pages in exemplars.items():
            if not pages:
                raise ClusteringError(f"cluster {name!r} has no exemplar pages")
            signatures = [page_signature(page) for page in pages]
            profiles.append(
                ClusterProfile(
                    name=name,
                    url_signatures=frozenset(
                        s.url_signature for s in signatures
                    ),
                    keywords=_centroid([s.keywords for s in signatures]),
                    paths=_centroid([s.paths for s in signatures]),
                )
            )
        return cls(profiles, threshold=threshold)

    # ------------------------------------------------------------------ #

    def route(self, page: WebPage) -> RouteDecision:
        """Classify one page; below-threshold pages are unroutable."""
        signature = page_signature(page)
        best_name: Optional[str] = None
        second_name: Optional[str] = None
        best = second = 0.0
        for profile in self.profiles:
            score = profile.score(signature)
            if best_name is None or score > best:
                second, second_name = best, best_name
                best, best_name = score, profile.name
            elif second_name is None or score > second:
                second, second_name = score, profile.name
        if best_name is None or best < self.threshold:
            return RouteDecision(UNROUTABLE, best, None, 0.0)
        return RouteDecision(best_name, best, second_name, best - second)

    def target(self, page: WebPage) -> Optional[str]:
        """The routed cluster name, or ``None`` for unroutable pages.

        The form the streaming runtime consumes: callers that do not
        care about confidence/margin diagnostics get the decision as a
        plain optional name.
        """
        decision = self.route(page)
        return None if decision.cluster == UNROUTABLE else decision.cluster

    def route_all(
        self, pages: Iterable[WebPage]
    ) -> Dict[str, list[WebPage]]:
        """Partition pages by routed cluster (incl. the unroutable bucket)."""
        routed: Dict[str, list[WebPage]] = {}
        for page in pages:
            decision = self.route(page)
            routed.setdefault(decision.cluster, []).append(page)
        return routed

    def clusters(self) -> list[str]:
        return [profile.name for profile in self.profiles]
