"""Cluster routing: which wrapper should serve an incoming page?

The interactive pipeline relies on ``cluster_hint`` — a label only
synthetic generators provide.  A serving layer cannot: pages arrive
unlabelled, so the router re-uses the paper's Section-2.1 membership
signals (URL shape, concept keywords, HTML structure — computed via
:func:`repro.clustering.features.page_signature`) to classify each
page against per-cluster profiles fitted from exemplar pages.

Scoring per cluster::

    score = 0.55 * structure_similarity(page paths, centroid paths)
          + 0.30 * cosine(page keywords, centroid keywords)
          + 0.15 * [page URL signature seen in exemplars]

The best-scoring cluster wins when its score clears the confidence
threshold; everything else lands in the :data:`UNROUTABLE` bucket
rather than being mis-served — a wrong wrapper produces silently wrong
data, no wrapper produces an auditable gap.

Profiles are not frozen forever: :meth:`ClusterRouter.refit`
recomputes centroids from recent signatures (and can spawn a profile
for a cohort of unroutable pages) and installs the new profile set
with a single atomic swap, so routing that is concurrently in flight
always scores against one consistent generation.  The adaptation
policy deciding *when* to refit lives in :mod:`repro.service.adapt`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.clustering.features import PageSignature, page_signature
from repro.clustering.similarity import cosine_similarity, structure_similarity
from repro.errors import ClusteringError
from repro.sites.page import WebPage

#: Route target for pages no profile claims confidently.
UNROUTABLE = "unroutable"

_STRUCTURE_WEIGHT = 0.55
_KEYWORD_WEIGHT = 0.30
_URL_WEIGHT = 0.15


@dataclass(frozen=True)
class ClusterProfile:
    """Fitted signature centroid of one cluster's exemplar pages."""

    name: str
    url_signatures: frozenset
    keywords: Counter
    paths: Counter

    def score(self, signature: PageSignature) -> float:
        """Similarity of ``signature`` to this profile, in ``[0, 1]``."""
        structure = structure_similarity(signature.paths, self.paths)
        keywords = cosine_similarity(signature.keywords, self.keywords)
        url = 1.0 if signature.url_signature in self.url_signatures else 0.0
        return (
            _STRUCTURE_WEIGHT * structure
            + _KEYWORD_WEIGHT * keywords
            + _URL_WEIGHT * url
        )


@dataclass(frozen=True)
class RouteDecision:
    """Routing outcome for one page."""

    cluster: str            # cluster name, or UNROUTABLE
    confidence: float       # best profile score in [0, 1]
    runner_up: Optional[str] = None
    margin: float = 0.0     # best minus second-best score

    @property
    def routed(self) -> bool:
        """Whether the page landed on a real cluster."""
        return self.cluster != UNROUTABLE


def _centroid(counters: Sequence[Counter]) -> Counter:
    """Element-wise mean of frequency vectors (float-valued Counter)."""
    total: Counter = Counter()
    for counter in counters:
        total.update(counter)
    n = len(counters)
    return Counter({key: value / n for key, value in total.items()})


#: Blended-centroid entries lighter than this are dropped: each refit
#: multiplies an unrefreshed key's weight by ``anchor``, so without a
#: floor a long-lived adaptive session accumulates every key it has
#: ever seen at weights far too small to move any score — unbounded
#: memory and per-route scoring cost.
_BLEND_EPSILON = 1e-6

#: URL signatures kept per profile across refits (recent ones win).
_URL_SIGNATURE_CAP = 64


def _blend(old: Counter, new: Counter, anchor: float) -> Counter:
    """``anchor * old + (1 - anchor) * new`` over the union of keys.

    ``anchor`` is the weight of the *previous* centroid: 0.0 tracks the
    recent signatures completely, 1.0 ignores them.  Entries decayed
    below :data:`_BLEND_EPSILON` are pruned, bounding profile size
    over arbitrarily many refits.
    """
    if anchor <= 0.0:
        return Counter(new)
    if anchor >= 1.0:
        return Counter(old)
    keys = set(old) | set(new)
    blended = Counter()
    for key in keys:
        value = (
            anchor * old.get(key, 0.0) + (1.0 - anchor) * new.get(key, 0.0)
        )
        if value >= _BLEND_EPSILON:
            blended[key] = value
    return blended


def _bounded_signature_union(
    old: frozenset, recent: frozenset, cap: int = _URL_SIGNATURE_CAP
) -> frozenset:
    """Union URL signatures, bounded: recent generations displace old.

    Selection is deterministic (sorted within each generation) so
    identically-configured workers keep identical profiles.
    """
    union = old | recent
    if len(union) <= cap:
        return union
    keep = set(sorted(recent)[:cap])
    for signature in sorted(old):
        if len(keep) >= cap:
            break
        keep.add(signature)
    return frozenset(keep)


def _profile_from_signatures(
    name: str, signatures: Sequence[PageSignature]
) -> ClusterProfile:
    return ClusterProfile(
        name=name,
        url_signatures=frozenset(s.url_signature for s in signatures),
        keywords=_centroid([s.keywords for s in signatures]),
        paths=_centroid([s.paths for s in signatures]),
    )


class ClusterRouter:
    """Routes pages to clusters by signature similarity.

    Args:
        profiles: fitted per-cluster profiles.
        threshold: minimum best score to route; below it the page is
            :data:`UNROUTABLE`.

    Build instances with :meth:`fit`.
    """

    def __init__(
        self, profiles: Sequence[ClusterProfile], threshold: float = 0.5
    ) -> None:
        if not profiles:
            raise ClusteringError("router needs at least one cluster profile")
        self.profiles = list(profiles)
        self.threshold = threshold

    @classmethod
    def fit(
        cls,
        exemplars: Mapping[str, Sequence[WebPage]],
        threshold: float = 0.5,
    ) -> "ClusterRouter":
        """Fit per-cluster profiles from labelled exemplar pages.

        Args:
            exemplars: cluster name -> a few representative pages
                (the working sample the rules were validated on is a
                natural choice).
            threshold: routing confidence threshold.

        Raises:
            ClusteringError: when ``exemplars`` is empty or any cluster
                has no pages.
        """
        profiles: list[ClusterProfile] = []
        for name, pages in exemplars.items():
            if not pages:
                raise ClusteringError(f"cluster {name!r} has no exemplar pages")
            profiles.append(_profile_from_signatures(
                name, [page_signature(page) for page in pages]
            ))
        return cls(profiles, threshold=threshold)

    # ------------------------------------------------------------------ #

    @staticmethod
    def signature(page: WebPage) -> PageSignature:
        """The page's routing signature, memoized on the page.

        :meth:`route`, :meth:`route_all`, :meth:`target` and the
        adaptation layer (which buffers signatures for refitting) all
        share this cache, so re-routing a buffered page costs a dict
        lookup instead of three DOM traversals.  The cache lives next
        to the parsed DOM and is dropped with it by
        :meth:`~repro.sites.page.WebPage.invalidate_parse_cache`.
        """
        cached = page.__dict__.get("_signature")
        if cached is None:
            cached = page_signature(page)
            page.__dict__["_signature"] = cached
        return cached

    def route(self, page: WebPage) -> RouteDecision:
        """Classify one page; below-threshold pages are unroutable."""
        return self.route_signature(self.signature(page))

    def route_signature(self, signature: PageSignature) -> RouteDecision:
        """Score a precomputed signature against one consistent
        profile generation (a single snapshot of the profile set, so a
        concurrent :meth:`refit` can never be observed half-applied)."""
        profiles = self.profiles
        best_name: Optional[str] = None
        second_name: Optional[str] = None
        best = second = 0.0
        for profile in profiles:
            score = profile.score(signature)
            if best_name is None or score > best:
                second, second_name = best, best_name
                best, best_name = score, profile.name
            elif second_name is None or score > second:
                second, second_name = score, profile.name
        if best_name is None or best < self.threshold:
            return RouteDecision(UNROUTABLE, best, None, 0.0)
        return RouteDecision(best_name, best, second_name, best - second)

    def target(self, page: WebPage) -> Optional[str]:
        """The routed cluster name, or ``None`` for unroutable pages.

        The form the streaming runtime consumes: callers that do not
        care about confidence/margin diagnostics get the decision as a
        plain optional name.
        """
        decision = self.route(page)
        return None if decision.cluster == UNROUTABLE else decision.cluster

    def route_all(
        self, pages: Iterable[WebPage]
    ) -> Dict[str, list[WebPage]]:
        """Partition pages by routed cluster (incl. the unroutable bucket)."""
        routed: Dict[str, list[WebPage]] = {}
        for page in pages:
            decision = self.route(page)
            routed.setdefault(decision.cluster, []).append(page)
        return routed

    def clusters(self) -> list[str]:
        """The fitted cluster names, in profile order."""
        return [profile.name for profile in self.profiles]

    def clone(self) -> "ClusterRouter":
        """An independent router over the same (immutable) profiles.

        Profiles are frozen dataclasses, so sharing them is safe; the
        copy gets its own profile *list*, letting a canary candidate be
        refit without touching the incumbent it shadows.
        """
        return ClusterRouter(list(self.profiles), threshold=self.threshold)

    # ------------------------------------------------------------------ #
    # Incremental refit
    # ------------------------------------------------------------------ #

    def refit(
        self,
        reservoirs: Mapping[str, Sequence[PageSignature]],
        unroutable: Sequence[PageSignature] = (),
        anchor: float = 0.25,
        spawn: Optional[tuple[str, Sequence[PageSignature]]] = None,
    ) -> tuple[list[str], list[str]]:
        """Recompute profiles from recent signatures; atomic swap.

        Args:
            reservoirs: cluster name -> recently *routed* signatures of
                that cluster (a bounded reservoir of served traffic).
            unroutable: recent signatures no profile claimed; each is
                absorbed into its best-scoring existing profile — the
                recovery move for a template that drifted away from
                its fitted centroid.  Callers should pass only
                signatures that still *resemble* some profile (the
                adaptation layer applies its alien floor first):
                absorption has no similarity check of its own, and
                blending genuinely alien traffic in can break a
                healthy cluster's routing.
            anchor: weight of the previous centroid in each blend step
                (0.0 = track recent traffic completely, 1.0 = freeze).
            spawn: optional ``(name, cohort)``: additionally create a
                *new* cluster profile of that name from the cohort's
                signatures — for traffic that matches no known
                cluster.

        The update blends in two steps: first the routed reservoir
        (keeping the centroid tracking traffic that still routes),
        then the absorbed cohort on its own.  Absorbed signatures are
        by definition *unlike* the current centroid — folding them
        into one mean with the much larger reservoir would dilute
        exactly the signal the refit exists to follow.

        Returns:
            ``(updated, spawned)`` cluster-name lists.

        The new profile set is built completely and then installed with
        one reference assignment, so a concurrent :meth:`route` (which
        snapshots the set once) scores against either the old or the
        new generation, never a mixture.
        """
        if not 0.0 <= anchor <= 1.0:
            raise ClusteringError(f"anchor must be in [0, 1], got {anchor}")
        current = self.profiles
        names = {profile.name for profile in current}
        spawn_cohort: Sequence[PageSignature] = ()
        spawn_name: Optional[str] = None
        if spawn is not None:
            spawn_name, spawn_cohort = spawn
            if spawn_name in names:
                raise ClusteringError(
                    f"cannot spawn cluster {spawn_name!r}: "
                    "name already routed"
                )
            if not spawn_cohort:
                raise ClusteringError(
                    "cannot spawn a cluster from an empty cohort"
                )
        unknown = sorted(set(reservoirs) - names)
        if unknown:
            raise ClusteringError(
                f"reservoir for unknown cluster(s): {', '.join(unknown)}"
            )
        absorbed: Dict[str, list[PageSignature]] = {}
        for signature in unroutable:
            best_profile = max(
                current, key=lambda p, s=signature: p.score(s)
            )
            absorbed.setdefault(best_profile.name, []).append(signature)
        updated: list[str] = []
        replacement: list[ClusterProfile] = []
        for profile in current:
            blended = profile
            for signatures in (
                reservoirs.get(profile.name, ()),
                absorbed.get(profile.name, ()),
            ):
                if not signatures:
                    continue
                recent = _profile_from_signatures(
                    profile.name, list(signatures)
                )
                blended = ClusterProfile(
                    name=profile.name,
                    url_signatures=_bounded_signature_union(
                        blended.url_signatures, recent.url_signatures
                    ),
                    keywords=_blend(
                        blended.keywords, recent.keywords, anchor
                    ),
                    paths=_blend(blended.paths, recent.paths, anchor),
                )
            if blended is not profile:
                updated.append(profile.name)
            replacement.append(blended)
        spawned: list[str] = []
        if spawn_name is not None:
            replacement.append(
                _profile_from_signatures(spawn_name, list(spawn_cohort))
            )
            spawned.append(spawn_name)
        # The atomic swap: one reference assignment, never an in-place
        # mutation of the list a concurrent reader may be iterating.
        self.profiles = replacement
        return updated, spawned
