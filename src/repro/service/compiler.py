"""Rule compilation: from a repository cluster to a serving artifact.

An :class:`~repro.extraction.extractor.ExtractionProcessor` re-walks
each rule's location path independently on every page.  Rules of one
cluster overwhelmingly share their leading steps, though — the paper's
worked example locates ``title``, ``rating`` and ``genres`` under the
same ``BODY[1]/DIV[2]`` subtree — so a :class:`CompiledWrapper`
factors the cluster's primary locations into a shared prefix trie and
evaluates each distinct prefix once per page.

Three compile-time preparations make the hot path fast without
changing semantics:

* **Pre-parsed ASTs** — every location is compiled to an
  :class:`~repro.xpath.engine.XPath` once, at compile time.
* **Prefix factoring** — primary locations that are relative location
  paths are merged into a step trie; applying a location path is
  associative over its steps, so evaluating a shared prefix once and
  continuing per-branch is exact.
* **Specialised child steps** — the common paper-style step
  (``child`` axis, optional positional predicate such as ``TR[2]``)
  is applied with direct child-list indexing.  This is only used while
  the running node-set is *disjoint* (no node an ancestor of another),
  where concatenating per-parent matches provably preserves document
  order and uniqueness; any other step falls back to the generic
  evaluator and turns the flag off.

Since the single-pass automaton landed, eligible locations — primaries
*and* alternatives, across every rule — additionally compile into one
:class:`~repro.service.automaton.ExtractionAutomaton`, so a page is
scanned once regardless of rule count (``automaton=False`` keeps the
trie-only path for A/B benchmarking).

Post-processor chains are resolved per component at compile time
(:meth:`repro.extraction.postprocess.PostProcessor.resolve`), so the
per-value dict lookups disappear from the hot loop.

Output is byte-identical to the sequential processor: value grouping
goes through :meth:`MappingRule.match_from_nodes` and failure
detection through :func:`~repro.extraction.extractor.classify_failure`
— the same code paths the interactive extractor uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core.repository import RuleRepository
from repro.core.rule import MappingRule, MatchResult
from repro.dom.node import Comment, Element, Node, Text
from repro.errors import ExtractionError
from repro.extraction.extractor import (
    ExtractedPage,
    ExtractionFailure,
    ExtractionResult,
    classify_failure,
)
from repro.extraction.postprocess import PostProcessor
from repro.service.automaton import (
    ExtractionAutomaton,
    automaton_steps,
    child_step_eligible,
)
from repro.sites.page import WebPage
from repro.xpath.ast import LocationPath, NameTest, NodeTypeTest, Step
from repro.xpath.engine import XPath, compile_xpath
from repro.xpath.evaluator import Evaluator, XPathContext

_EVALUATOR = Evaluator()


# --------------------------------------------------------------------- #
# Prefix trie
# --------------------------------------------------------------------- #


class _TrieNode:
    """One factored location step; terminals are rule indices."""

    __slots__ = ("step", "children", "terminals", "fast")

    def __init__(self, step: Step, fast: bool) -> None:
        self.step = step
        self.children: dict[Step, "_TrieNode"] = {}
        self.terminals: list[int] = []
        self.fast = fast


# The trie's fast-step criterion and the automaton's are one and the
# same shape — a single definition keeps them provably in sync.
_fast_step_eligible = child_step_eligible


def _apply_fast_child_step(step: Step, parents: list) -> list:
    """Direct child-list indexing for the common paper-style step.

    ``parents`` must be document-ordered and disjoint (no ancestry
    between members): children of distinct nodes are then disjoint and
    their in-order concatenation is document order, so no sort/dedup
    pass is needed.
    """
    position: Optional[int] = None
    if step.predicates:
        value = step.predicates[0].value
        if value != int(value) or value < 1:
            return []
        position = int(value)
    test = step.node_test
    out: list = []
    for parent in parents:
        children = parent.children
        if not children:
            continue
        if isinstance(test, NameTest):
            if test.name == "*":
                matched = [c for c in children if isinstance(c, Element)]
            else:
                tag = test.name.upper()
                matched = [
                    c for c in children
                    if isinstance(c, Element) and c.tag == tag
                ]
        elif test.node_type == "node":
            matched = list(children)
        elif test.node_type == "text":
            matched = [c for c in children if isinstance(c, Text)]
        elif test.node_type == "comment":
            matched = [c for c in children if isinstance(c, Comment)]
        else:
            matched = []
        if position is None:
            out.extend(matched)
        elif len(matched) >= position:
            out.append(matched[position - 1])
    return out


# --------------------------------------------------------------------- #
# Compiled artifacts
# --------------------------------------------------------------------- #


@dataclass
class CompiledRule:
    """One rule, ready to serve.

    Attributes:
        rule: the underlying mapping rule.
        index: position within the wrapper (trie terminal key).
        locations: every location pre-compiled, in rule order.
        trie_primary: whether the primary location is evaluated through
            the wrapper's shared prefix trie (alternatives always
            evaluate lazily — they only run when the primary is void).
        post: pre-resolved post-processing chain, or ``None``.
    """

    rule: MappingRule
    index: int
    locations: tuple[XPath, ...]
    trie_primary: bool
    post: Optional[Callable[[list[str]], list[str]]]
    #: Automaton slot per location (parallel to ``locations``); ``None``
    #: where a location is ineligible (or the automaton is disabled)
    #: and must evaluate through the generic engine.
    slots: tuple[Optional[int], ...] = ()

    @property
    def name(self) -> str:
        """The compiled rule's component name."""
        return self.rule.name


@dataclass(frozen=True)
class CompilerStats:
    """Prefix-sharing accounting (compile time, per wrapper)."""

    rules: int
    trie_rules: int       # rules whose primary went into the trie
    primary_steps: int    # total steps across those primaries
    trie_nodes: int       # distinct steps actually evaluated per page
    # -- single-pass automaton (0s when compiled with automaton=False) --
    automaton_slots: int = 0        # locations riding the one-pass scan
    automaton_states: int = 0       # distinct automaton states
    automaton_transitions: int = 0  # dispatch-table entries
    automaton_location_steps: int = 0  # steps across automaton locations
    #: Static-analyzer findings for this cluster's rule-set, passed
    #: through by deploy paths that lint what they compile (registry
    #: compiles); 0 for direct in-memory builds that skip analysis.
    lint_findings: int = 0

    @property
    def steps_shared(self) -> int:
        """Steps per page saved by prefix factoring."""
        return self.primary_steps - self.trie_nodes

    @property
    def automaton_steps_saved(self) -> int:
        """Steps per page the automaton dedupes vs. the trie pipeline.

        The trie shares primary prefixes but walks each branch and
        every alternative independently; the automaton evaluates each
        distinct transition once, so the saving is total location
        steps minus distinct transitions.
        """
        return self.automaton_location_steps - self.automaton_transitions

    def as_dict(self) -> dict:
        """A JSON-ready view (``registry show --stats``, progress)."""
        return {
            "rules": self.rules,
            "trie_rules": self.trie_rules,
            "primary_steps": self.primary_steps,
            "trie_nodes": self.trie_nodes,
            "steps_shared": self.steps_shared,
            "automaton_slots": self.automaton_slots,
            "automaton_states": self.automaton_states,
            "automaton_transitions": self.automaton_transitions,
            "automaton_location_steps": self.automaton_location_steps,
            "automaton_steps_saved": self.automaton_steps_saved,
            "lint_findings": self.lint_findings,
        }


class CompiledWrapper:
    """A cluster's rules compiled for high-throughput extraction.

    Obtain instances via :func:`compile_wrapper` or
    :meth:`RuleRepository.compile_cluster`.  Thread-safe after
    construction: extraction mutates no wrapper state.
    """

    def __init__(
        self,
        cluster: str,
        rules: list[CompiledRule],
        trie_root: _TrieNode,
        stats: CompilerStats,
        version: Optional[str] = None,
        automaton: Optional[ExtractionAutomaton] = None,
        residual_root: Optional[_TrieNode] = None,
    ) -> None:
        self.cluster = cluster
        self.rules = rules
        self._trie_root = trie_root
        self.stats = stats
        #: Registry version id of the artifact this wrapper was
        #: compiled from (``None`` for direct in-memory builds).
        self.version = version
        #: The single-pass automaton over every eligible location, or
        #: ``None`` when compiled with ``automaton=False`` (the
        #: trie-only path kept for A/B benchmarking).
        self.automaton = automaton
        #: Trie over factorable primaries the automaton could *not*
        #: absorb (descendant axes, value predicates): walked alongside
        #: the scan so those rules keep their prefix sharing.
        self._residual_root = (
            residual_root if residual_root is not None else trie_root
        )

    # -- hot path -------------------------------------------------------- #

    def extract_page(
        self,
        page: WebPage,
        failures: Optional[list[ExtractionFailure]] = None,
    ) -> ExtractedPage:
        """Apply every rule to one page (same contract as the processor)."""
        context = page.root_element
        automaton = self.automaton
        if automaton is not None:
            hits = automaton.scan(context)
            primary_hits = self._walk_trie(context, self._residual_root)
        else:
            hits = None
            primary_hits = self._walk_trie(context, self._trie_root)
        extracted = ExtractedPage(url=page.url)
        for crule in self.rules:
            rule = crule.rule
            if hits is not None:
                slot = crule.slots[0]
                if slot is not None:
                    nodes = hits[slot]
                elif crule.trie_primary:
                    nodes = primary_hits.get(crule.index)
                else:
                    nodes = crule.locations[0].select(context)
                if nodes:
                    match = rule.match_from_nodes(
                        nodes, rule.primary_location
                    )
                else:
                    match = None
                    for xpath, alt_slot in zip(
                        crule.locations[1:], crule.slots[1:]
                    ):
                        nodes = (
                            hits[alt_slot] if alt_slot is not None
                            else xpath.select(context)
                        )
                        if nodes:
                            match = rule.match_from_nodes(
                                nodes, xpath.source
                            )
                            break
                    if match is None:
                        match = rule.match_from_nodes([], None)
            else:
                nodes = primary_hits.get(crule.index)
                if nodes:
                    match = rule.match_from_nodes(
                        nodes, rule.primary_location
                    )
                else:
                    match = self._match_lazily(crule, context)
            if failures is not None:
                reason = classify_failure(rule, len(match.values))
                if reason is not None:
                    failures.append(
                        ExtractionFailure(page.url, rule.name, reason)
                    )
            texts = [value.text for value in match.values]
            if crule.post is not None:
                texts = crule.post(texts)
            extracted.values[rule.name] = texts
            extracted.raw_values[rule.name] = list(match.values)
        return extracted

    def extract(self, pages: Iterable[WebPage]) -> ExtractionResult:
        """Batch façade mirroring :meth:`ExtractionProcessor.extract`."""
        result = ExtractionResult(cluster=self.cluster)
        for page in pages:
            result.pages.append(self.extract_page(page, result.failures))
        return result

    # -- internals ------------------------------------------------------- #

    def _match_lazily(self, crule: CompiledRule, context: Node) -> MatchResult:
        """Locations outside the trie, tried in order (first non-empty)."""
        start = 1 if crule.trie_primary else 0
        for xpath in crule.locations[start:]:
            nodes = xpath.select(context)
            if nodes:
                return crule.rule.match_from_nodes(nodes, xpath.source)
        return crule.rule.match_from_nodes([], None)

    def _walk_trie(self, context: Node, root: _TrieNode) -> dict[int, list]:
        """Evaluate every factored primary with one shared DOM walk."""
        results: dict[int, list] = {}
        if not root.children:
            return results
        xcontext = XPathContext(context, 1, 1, {})
        stack: list[tuple[_TrieNode, list]] = [
            (node, [context]) for node in root.children.values()
        ]
        while stack:
            node, parents = stack.pop()
            if not parents:
                nodes: list = []
            elif node.fast:
                nodes = _apply_fast_child_step(node.step, parents)
            else:
                nodes = _EVALUATOR.apply_steps([node.step], parents, xcontext)
            for index in node.terminals:
                results[index] = nodes
            for child in node.children.values():
                stack.append((child, nodes))
        return results


# --------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------- #


def _trie_candidate(xpath: XPath) -> Optional[tuple[Step, ...]]:
    """The step tuple of a factorable location, or ``None``.

    Only *relative* location paths join the trie: absolute paths and
    filter expressions re-anchor the context and evaluate lazily
    through the generic engine instead.
    """
    ast = xpath.ast
    if isinstance(ast, LocationPath) and not ast.absolute and ast.steps:
        return ast.steps
    return None


def compile_wrapper(
    repository: RuleRepository,
    cluster: str,
    postprocessor: Optional[PostProcessor] = None,
    version: Optional[str] = None,
    automaton: bool = True,
    lint_findings: int = 0,
) -> CompiledWrapper:
    """Compile ``cluster``'s recorded rules into a serving wrapper.

    Args:
        version: registry version id to stamp on the wrapper when the
            repository was loaded from a versioned artifact.
        automaton: compile eligible locations into the single-pass
            :class:`ExtractionAutomaton` (``False`` keeps the trie-only
            path for A/B benchmarking).
        lint_findings: static-analyzer finding count for this cluster,
            recorded on :attr:`CompilerStats.lint_findings` by deploy
            paths that lint what they compile (the registry).

    Raises:
        ExtractionError: when the cluster has no recorded rules (same
            contract as :class:`ExtractionProcessor`).
    """
    rules = (
        repository.rules(cluster) if cluster in repository.clusters() else []
    )
    if not rules:
        raise ExtractionError(f"no rules recorded for cluster {cluster!r}")

    root = _TrieNode(Step("self", NodeTypeTest("node")), fast=True)
    residual_root = _TrieNode(Step("self", NodeTypeTest("node")), fast=True)
    compiled: list[CompiledRule] = []
    trie_rules = 0
    primary_steps = 0
    slot_locations: list[tuple[int, tuple[Step, ...]]] = []
    next_slot = 0
    for index, rule in enumerate(rules):
        locations = tuple(compile_xpath(loc) for loc in rule.locations)
        steps = _trie_candidate(locations[0])
        trie_primary = steps is not None
        if steps is not None:
            trie_rules += 1
            primary_steps += len(steps)
            _trie_insert(root, steps, index)
        slots: list[Optional[int]] = []
        for xpath in locations:
            auto_steps = automaton_steps(xpath) if automaton else None
            if auto_steps is None:
                slots.append(None)
            else:
                slots.append(next_slot)
                slot_locations.append((next_slot, auto_steps))
                next_slot += 1
        if automaton and trie_primary and slots[0] is None:
            _trie_insert(residual_root, steps, index)
        post = (
            postprocessor.resolve(rule.name)
            if postprocessor is not None
            else None
        )
        compiled.append(
            CompiledRule(
                rule=rule,
                index=index,
                locations=locations,
                trie_primary=trie_primary,
                post=post,
                slots=tuple(slots),
            )
        )

    compiled_automaton = (
        ExtractionAutomaton(slot_locations) if automaton else None
    )
    auto_stats = (
        compiled_automaton.stats if compiled_automaton is not None else None
    )
    trie_nodes = _count_nodes(root)
    stats = CompilerStats(
        rules=len(rules),
        trie_rules=trie_rules,
        primary_steps=primary_steps,
        trie_nodes=trie_nodes,
        automaton_slots=auto_stats.slots if auto_stats else 0,
        automaton_states=auto_stats.states if auto_stats else 0,
        automaton_transitions=auto_stats.transitions if auto_stats else 0,
        automaton_location_steps=(
            auto_stats.location_steps if auto_stats else 0
        ),
        lint_findings=lint_findings,
    )
    return CompiledWrapper(
        cluster,
        compiled,
        root,
        stats,
        version=version,
        automaton=compiled_automaton,
        residual_root=residual_root if automaton else None,
    )


def _trie_insert(root: _TrieNode, steps: tuple[Step, ...], index: int) -> None:
    """Thread one primary's steps into a trie, marking the terminal."""
    node = root
    for step in steps:
        child = node.children.get(step)
        if child is None:
            child = _TrieNode(
                step, fast=node.fast and _fast_step_eligible(step)
            )
            node.children[step] = child
        node = child
    node.terminals.append(index)


def _count_nodes(root: _TrieNode) -> int:
    count = 0
    stack = list(root.children.values())
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children.values())
    return count
