"""Incremental result sinks: bounded-memory output for huge runs.

The batch engine streams :class:`PageRecord` objects into a sink as
soon as each chunk completes, so a million-page run holds at most a
few in-flight chunks in memory.  Two serialisations are provided:

* :class:`JsonlSink` — one JSON object per line, the natural format
  for piping into downstream loaders;
* :class:`XmlDirectorySink` — one Figure-5 XML document per cluster,
  written element-by-element (prolog on first record, closing tag on
  ``close()``), honouring recorded aggregations.

:class:`CollectingSink` (tests, small runs) and :class:`NullSink`
(throughput measurement) complete the set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional, Union

from repro.core.repository import RuleRepository
from repro.extraction.xml_writer import (
    cluster_plan,
    page_element_name,
    render_page_xml,
)


def make_error_record(message: str, url: Optional[str] = None) -> dict:
    """The one shape of an error record, everywhere.

    ``serve`` (sync and async), the runtime's contained-errors path and
    shard workers all emit page-level errors through this helper so the
    field names (``error``, optional ``url``) can never drift between
    entry points.
    """
    record: dict = {"error": message}
    if url is not None:
        record["url"] = url
    return record


def make_unroutable_record(url: str, cluster: str = "unroutable") -> dict:
    """The record emitted for a page no wrapper can serve.

    Shaped like a served record (``url``/``cluster``/``values``/
    ``failures``) so downstream consumers see one schema; the cluster
    name marks the auditable gap.
    """
    return {"url": url, "cluster": cluster, "values": {}, "failures": []}


@dataclass
class PageRecord:
    """One served page: routed cluster plus extracted values.

    A slim, pickleable projection of
    :class:`~repro.extraction.extractor.ExtractedPage` — raw DOM nodes
    stay in the worker; only component name -> text values and detected
    failures cross the executor boundary.
    """

    url: str
    cluster: str
    values: dict[str, list[str]] = field(default_factory=dict)
    failures: list[tuple[str, str]] = field(default_factory=list)

    #: Global submission index: the page's 0-based position in the
    #: input stream (``-1`` when the producer did not assign one).
    #: Shard merging sorts on this (:mod:`repro.service.shard`).
    index: int = -1

    #: Raw node values never cross the service boundary; kept as an
    #: attribute so the record duck-types as a page for the XML writer.
    raw_values: dict = field(default_factory=dict, repr=False)

    def get(self, component_name: str) -> list[str]:
        """Values extracted for ``component_name`` (empty when none)."""
        return self.values.get(component_name, [])

    def to_dict(self) -> dict:
        """The record as the JSONL payload (raw values excluded)."""
        return {
            "url": self.url,
            "cluster": self.cluster,
            "index": self.index,
            "values": self.values,
            "failures": [list(failure) for failure in self.failures],
        }


class ResultSink:
    """Base sink: ``write`` records, ``close`` once, context-managed."""

    def write(self, record: PageRecord) -> None:  # pragma: no cover
        """Accept one extracted record (must be overridden)."""
        raise NotImplementedError

    def write_error(self, payload: dict) -> None:
        """Accept a :func:`make_error_record` payload.

        Only produced by runtimes in ``contain_errors`` mode; the
        default discards them (batch sinks carry extraction *records*,
        and failed pages are accounted in the run report).  Sinks that
        interleave diagnostics with records override this.
        """

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(ResultSink):
    """Discards records (throughput benchmarking)."""

    def __init__(self) -> None:
        self.count = 0

    def write(self, record: PageRecord) -> None:
        """Count the record and drop it."""
        self.count += 1


class CollectingSink(ResultSink):
    """Keeps every record in memory — tests and small batches only."""

    def __init__(self) -> None:
        self.records: list[PageRecord] = []
        self.errors: list[dict] = []

    def write(self, record: PageRecord) -> None:
        """Keep the record in memory."""
        self.records.append(record)

    def write_error(self, payload: dict) -> None:
        """Keep an error payload in memory."""
        self.errors.append(payload)

    def by_url(self) -> dict[str, PageRecord]:
        """The collected records keyed by page URL."""
        return {record.url: record for record in self.records}


class JsonlSink(ResultSink):
    """One JSON object per record, written (and flushable) incrementally.

    Args:
        target: a path (opened/closed by the sink) or an open text
            stream (borrowed; not closed).
        flush_every: flush the stream every N records; 0 disables.
    """

    def __init__(
        self, target: Union[str, Path, IO[str]], flush_every: int = 0
    ) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self.flush_every = flush_every
        self.count = 0

    def write(self, record: PageRecord) -> None:
        """Append the record as one JSON line."""
        self._stream.write(json.dumps(record.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self.count += 1
        if self.flush_every and self.count % self.flush_every == 0:
            self._stream.flush()

    def write_error(self, payload: dict) -> None:
        """Interleave an error record (contained-errors runtimes only)."""
        self._stream.write(json.dumps(payload, sort_keys=True))
        self._stream.write("\n")

    def close(self) -> None:
        """Close an owned stream; flush a borrowed one."""
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        elif not self._owns_stream:
            try:
                self._stream.flush()
            except ValueError:  # pragma: no cover - closed borrowed stream
                pass


class XmlDirectorySink(ResultSink):
    """Per-cluster Figure-5 XML documents, streamed element-by-element.

    ``<directory>/<cluster>.xml`` is opened lazily on the cluster's
    first record; page elements append as records arrive; ``close()``
    writes every closing root tag.  Component order and aggregation
    nesting come from the repository, exactly as
    :func:`~repro.extraction.xml_writer.write_cluster_xml` renders
    them, so a streamed document is byte-identical to the batch one
    for the same records in the same order.

    Args:
        record_indices: also write a ``<cluster>.index`` sidecar — one
            decimal submission index per line, in page-element order —
            so sharded XML outputs stay mergeable without perturbing
            the Figure-5 bytes themselves.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        repository: RuleRepository,
        indent: str = "  ",
        encoding: str = "ISO-8859-1",
        record_indices: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.repository = repository
        self.indent = indent
        self.encoding = encoding
        self.record_indices = record_indices
        self._streams: dict[str, IO[str]] = {}
        self._index_streams: dict[str, IO[str]] = {}
        self._plans: dict[str, list] = {}
        self._opened: set[str] = set()

    def _stream_for(self, cluster: str) -> IO[str]:
        stream = self._streams.get(cluster)
        if stream is None:
            # The file is written in the encoding its prolog declares;
            # characters outside it become XML character references,
            # which any conforming parser restores losslessly.
            stream = open(
                self.directory / f"{cluster}.xml", "w",
                encoding=self.encoding, errors="xmlcharrefreplace",
            )
            stream.write(
                f'<?xml version="1.0" encoding="{self.encoding}"?>\n'
            )
            stream.write(f"<{cluster}>\n")
            self._streams[cluster] = stream
            self._plans[cluster] = cluster_plan(self.repository, cluster)
            self._opened.add(cluster)
        return stream

    def write(self, record: PageRecord) -> None:
        """Render the record into its cluster's XML document."""
        stream = self._stream_for(record.cluster)
        plan = self._plans[record.cluster]
        if not plan and record.values:
            # Cluster unknown to the repository: flat plan in the
            # record's own component order.
            plan = [(name, None) for name in record.values]
        child = page_element_name(record.cluster)
        for line in render_page_xml(record, plan, child, indent=self.indent):
            stream.write(line)
            stream.write("\n")
        if self.record_indices:
            index_stream = self._index_streams.get(record.cluster)
            if index_stream is None:
                index_stream = open(
                    self.directory / f"{record.cluster}.index", "w",
                    encoding="ascii",
                )
                self._index_streams[record.cluster] = index_stream
            index_stream.write(f"{record.index}\n")

    def close(self) -> None:
        """Close every document (writing root end-tags) and index."""
        for cluster, stream in self._streams.items():
            if not stream.closed:
                stream.write(f"</{cluster}>\n")
                stream.close()
        self._streams.clear()
        for stream in self._index_streams.values():
            if not stream.closed:
                stream.close()
        self._index_streams.clear()

    def paths(self) -> dict[str, Path]:
        """Cluster name -> path of every document this sink has opened."""
        return {
            cluster: self.directory / f"{cluster}.xml"
            for cluster in sorted(self._opened)
        }
