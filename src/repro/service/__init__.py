"""The high-throughput extraction service (serving layer).

The paper's Section 3.5 repository is "to be used by external agents,
for instance by the XML extractor".  This package is that external
agent at production scale: a validated :class:`~repro.core.repository.
RuleRepository` is treated as a *deployable artifact* — compiled once
(:mod:`repro.service.compiler`), routed to automatically
(:mod:`repro.service.router`), executed over large page streams by one
shared streaming pipeline (:mod:`repro.service.runtime`) and drained
into incremental sinks (:mod:`repro.service.sink`) so million-page
runs never hold all results in memory.

Offline (interactive, Figure 1)          Online (this package)
---------------------------------        -------------------------------
cluster pages, build + validate rules    load repository -> compile wrappers
record rules in the repository           fit router on exemplar pages
                                         route -> extract -> sink, streaming

Every entry point is a composition over the same
:class:`~repro.service.runtime.StreamingRuntime`:

* batch (:mod:`repro.service.engine`) — thread/process executors over
  a directory stream;
* sharded batch (:mod:`repro.service.shard`) — a plan slice per host,
  merged back into the unsharded byte stream, resumable per shard;
* online serving (:mod:`repro.service.serve`) — single pages through
  an inline runtime, under a sync or asyncio stdin front-end or the
  HTTP ingress (:mod:`repro.service.http`), all sharing one
  :class:`~repro.service.serve.ServeHandler` and
  :class:`~repro.service.serve.ServePolicy`;
* online adaptation (:mod:`repro.service.adapt`) — sliding-window
  drift detection over the served stream, answered by incremental
  router refits (recomputed centroids, atomic swap) with an auditable
  event log;
* versioned deployment (:mod:`repro.service.registry`) — rule-sets
  and router profile-sets persisted as immutable content-hashed
  versions, refit candidates shadow-routed by a canary controller and
  promoted (new pinned version) or rolled back with a logged reason;
* observability and admission (:mod:`repro.service.metrics`) — a
  dependency-free Prometheus-exposition metrics registry every layer
  reports into, token-bucket rate limiting and load shedding on the
  serving entry points, JSONL progress events and cooperative
  cancellation for long batch/shard runs.
"""

from repro.service.adapt import (
    AdaptationLog,
    AdaptiveRouter,
    AdaptiveRouterStage,
    DriftEvent,
    DriftMonitor,
    RefitEvent,
    make_adapter,
)
from repro.service.automaton import (
    AutomatonStats,
    ExtractionAutomaton,
    automaton_steps,
)
from repro.service.compiler import (
    CompiledRule,
    CompiledWrapper,
    CompilerStats,
    compile_wrapper,
)
from repro.service.engine import BatchExtractionEngine
from repro.service.router import ClusterProfile, ClusterRouter, RouteDecision, UNROUTABLE
from repro.service.runtime import (
    ClusterStats,
    EngineReport,
    IterablePageSource,
    LoadingPageSource,
    OrderedEmitter,
    PageSource,
    RecordSink,
    RuntimeReport,
    Stage,
    StreamingRuntime,
)
from repro.service.http import HttpFrontEnd, HttpStats
from repro.service.metrics import (
    AdmissionController,
    AdmissionDecision,
    CancellationToken,
    METRIC_SPECS,
    MetricSpec,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    ProgressEmitter,
    TokenBucket,
    default_registry,
    merge_expositions,
    parse_exposition,
    render_metrics_table,
)
from repro.service.registry import (
    ArtifactRegistry,
    CanaryController,
    PromoteEvent,
    RollbackEvent,
    ShadowEvent,
    VersionManifest,
    canonical_json,
    content_hash,
    version_id,
    wrapper_extractor,
)
from repro.service.serve import (
    AsyncLinePipeline,
    ServeHandler,
    ServePolicy,
    ServeStats,
    serve_async,
    serve_sync,
)
from repro.service.shard import (
    MergeReport,
    ShardManifest,
    ShardMerger,
    ShardPlan,
    ShardPlanner,
    ShardStatus,
    ShardWorker,
    SliceCheckpoint,
    XmlShardMerger,
    incomplete_shards,
    shard_statuses,
    stable_shard,
)
from repro.service.supervisor import (
    GatewayError,
    ServeSupervisor,
    SupervisorStats,
    restart_backoff,
    reuseport_available,
    slice_body,
)
from repro.service.transport import (
    SharedMemoryPageTransport,
    StagedChunk,
    TRANSPORT_KINDS,
)
from repro.service.sink import (
    CollectingSink,
    JsonlSink,
    NullSink,
    PageRecord,
    ResultSink,
    XmlDirectorySink,
    make_error_record,
    make_unroutable_record,
)

__all__ = [
    "AdaptationLog",
    "AdaptiveRouter",
    "AdaptiveRouterStage",
    "AdmissionController",
    "AdmissionDecision",
    "ArtifactRegistry",
    "AsyncLinePipeline",
    "AutomatonStats",
    "BatchExtractionEngine",
    "CanaryController",
    "CancellationToken",
    "ClusterProfile",
    "DriftEvent",
    "DriftMonitor",
    "RefitEvent",
    "ClusterRouter",
    "ClusterStats",
    "CollectingSink",
    "CompiledRule",
    "CompiledWrapper",
    "CompilerStats",
    "EngineReport",
    "ExtractionAutomaton",
    "GatewayError",
    "HttpFrontEnd",
    "HttpStats",
    "METRIC_SPECS",
    "MetricSpec",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "ProgressEmitter",
    "TokenBucket",
    "IterablePageSource",
    "JsonlSink",
    "LoadingPageSource",
    "MergeReport",
    "NullSink",
    "OrderedEmitter",
    "PageRecord",
    "PageSource",
    "PromoteEvent",
    "RecordSink",
    "ResultSink",
    "RollbackEvent",
    "RouteDecision",
    "RuntimeReport",
    "ServeHandler",
    "ServePolicy",
    "ServeStats",
    "ServeSupervisor",
    "ShadowEvent",
    "SharedMemoryPageTransport",
    "ShardManifest",
    "ShardMerger",
    "ShardPlan",
    "ShardPlanner",
    "ShardStatus",
    "ShardWorker",
    "SliceCheckpoint",
    "Stage",
    "StagedChunk",
    "StreamingRuntime",
    "SupervisorStats",
    "TRANSPORT_KINDS",
    "UNROUTABLE",
    "VersionManifest",
    "XmlDirectorySink",
    "XmlShardMerger",
    "automaton_steps",
    "canonical_json",
    "compile_wrapper",
    "content_hash",
    "default_registry",
    "incomplete_shards",
    "make_adapter",
    "make_error_record",
    "make_unroutable_record",
    "merge_expositions",
    "parse_exposition",
    "render_metrics_table",
    "restart_backoff",
    "reuseport_available",
    "serve_async",
    "serve_sync",
    "shard_statuses",
    "slice_body",
    "stable_shard",
    "version_id",
    "wrapper_extractor",
]
