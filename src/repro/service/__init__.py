"""The high-throughput extraction service (serving layer).

The paper's Section 3.5 repository is "to be used by external agents,
for instance by the XML extractor".  This package is that external
agent at production scale: a validated :class:`~repro.core.repository.
RuleRepository` is treated as a *deployable artifact* — compiled once
(:mod:`repro.service.compiler`), routed to automatically
(:mod:`repro.service.router`), executed in parallel over large page
streams (:mod:`repro.service.engine`) and drained into incremental
sinks (:mod:`repro.service.sink`) so million-page runs never hold all
results in memory.

Offline (interactive, Figure 1)          Online (this package)
---------------------------------        -------------------------------
cluster pages, build + validate rules    load repository -> compile wrappers
record rules in the repository           fit router on exemplar pages
                                         route -> extract -> sink, in parallel

A batch run scales over many hosts with no coordinator: plan the
corpus into shards, run each shard anywhere, mergesort the outputs
back into the unsharded byte stream (:mod:`repro.service.shard`).
"""

from repro.service.compiler import CompiledRule, CompiledWrapper, compile_wrapper
from repro.service.engine import BatchExtractionEngine, ClusterStats, EngineReport
from repro.service.router import ClusterProfile, ClusterRouter, RouteDecision, UNROUTABLE
from repro.service.shard import (
    GlobalIndexSink,
    MergeReport,
    ShardManifest,
    ShardMerger,
    ShardPlan,
    ShardPlanner,
    ShardWorker,
    stable_shard,
)
from repro.service.sink import (
    CollectingSink,
    JsonlSink,
    NullSink,
    PageRecord,
    ResultSink,
    XmlDirectorySink,
)

__all__ = [
    "BatchExtractionEngine",
    "ClusterProfile",
    "ClusterRouter",
    "ClusterStats",
    "CollectingSink",
    "CompiledRule",
    "CompiledWrapper",
    "EngineReport",
    "GlobalIndexSink",
    "JsonlSink",
    "MergeReport",
    "NullSink",
    "PageRecord",
    "ResultSink",
    "RouteDecision",
    "ShardManifest",
    "ShardMerger",
    "ShardPlan",
    "ShardPlanner",
    "ShardWorker",
    "UNROUTABLE",
    "XmlDirectorySink",
    "compile_wrapper",
    "stable_shard",
]
