"""Online adaptation: keep the router honest under template drift.

Wrappers are induced once from a clustered sample, but served traffic
drifts away from that sample over time (template edits, new page
variants).  The paper records this as "Resilience/adaptiveness: No"
(Table 4); this module is the serving layer's answer for the *routing*
half of the problem:

* a :class:`DriftMonitor` consumes the per-page signals the runtime
  already produces — extraction failures, unroutable pages, low-margin
  :class:`~repro.service.router.RouteDecision` scores — over sliding
  windows, and raises a typed :class:`DriftEvent` exactly once when a
  window's bad-signal rate crosses its threshold;
* an :class:`AdaptiveRouter` wraps a fitted
  :class:`~repro.service.router.ClusterRouter`: it observes every
  decision, keeps bounded reservoirs of recent signatures (per routed
  cluster, plus the unroutable cohort), and answers a drift event with
  an incremental :meth:`~repro.service.router.ClusterRouter.refit` —
  recomputed centroids installed by atomic swap, so in-flight routing
  is never torn;
* an :class:`AdaptiveRouterStage` (a runtime
  :class:`~repro.service.runtime.Stage`) feeds per-record extraction
  outcomes back into the same monitor, closing the loop for drift that
  breaks extraction before it breaks routing;
* an :class:`AdaptationLog` records every drift and refit event as a
  JSON line so operators can audit exactly why the router moved.

Event lifecycle::

    route/extract signals -> DriftMonitor window -> DriftEvent
         -> ClusterRouter.refit (reservoir centroids, atomic swap)
         -> RefitEvent -> AdaptationLog, monitor re-armed

Hysteresis is built in twice: a fired window dis-arms until the refit
re-arms it, and re-arming clears the window, so the rate must
re-accumulate over fresh traffic before a second event can fire — one
refit never retriggers itself.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, IO, Iterable, Optional, Union

from repro.clustering.features import PageSignature
from repro.errors import ClusteringError
from repro.service.metrics import default_registry
from repro.service.router import UNROUTABLE, ClusterRouter, RouteDecision
from repro.service.sink import PageRecord
from repro.sites.page import WebPage

#: Sliding-window length (observations per key) unless overridden.
DEFAULT_WINDOW = 64

#: Fraction of bad signals in a cluster's window that means drift.
DEFAULT_FAILURE_THRESHOLD = 0.5

#: Fraction of unroutable pages in the stream window that means drift.
DEFAULT_UNROUTABLE_THRESHOLD = 0.3

#: Recent signatures kept per cluster (and for the unroutable cohort).
DEFAULT_RESERVOIR = 64

#: Monitor-key suffix separating low-margin windows from the cluster's
#: extraction-failure window — one window per signal stream, so adding
#: the margin signal can never dilute failure-rate detection.
MARGIN_KEY_SUFFIX = "::margin"


def margin_key(cluster: str) -> str:
    """The monitor key of a cluster's low-margin signal window."""
    return f"{cluster}{MARGIN_KEY_SUFFIX}"


# --------------------------------------------------------------------- #
# Events
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class DriftEvent:
    """One sliding window crossed its drift threshold."""

    kind: str            # "unroutable", "cluster-failure" or "low-margin"
    key: str             # cluster name (± MARGIN_KEY_SUFFIX), or UNROUTABLE
    rate: float          # bad-signal fraction observed in the window
    threshold: float     # the configured trip point
    window: int          # observations the window held when it fired
    observation: int     # monitor's total observation count at firing

    def to_dict(self) -> dict:
        """The JSON payload recorded in the audit log."""
        return {"event": "drift", **self.__dict__}


@dataclass(frozen=True)
class RefitEvent:
    """One refit performed in answer to a :class:`DriftEvent`."""

    trigger_kind: str
    trigger_key: str
    updated: tuple           # clusters whose centroids moved
    spawned: tuple           # clusters created for an unroutable cohort
    reservoir_pages: int     # routed signatures the refit consumed
    unroutable_pages: int    # unroutable signatures the refit consumed
    observation: int
    #: Cohort members under the alien floor: never absorbed, spawned
    #: only when spawning is enabled and the cohort is large enough.
    alien_pages: int = 0

    def to_dict(self) -> dict:
        """The JSON payload recorded in the audit log."""
        data = dict(self.__dict__)
        data["updated"] = list(self.updated)
        data["spawned"] = list(self.spawned)
        return {"event": "refit", **data}


class AdaptationLog:
    """Audit sink for drift/refit events: JSON lines plus memory.

    Args:
        target: a path (opened/closed by the log), an open text stream
            (borrowed; not closed), or ``None`` for in-memory only.

    ``events`` keeps every recorded event as a dict, so callers can
    assert on the exact lifecycle without re-parsing the file.
    """

    def __init__(
        self, target: Union[str, Path, IO[str], None] = None
    ) -> None:
        self.events: list[dict] = []
        self._stream: Optional[IO[str]] = None
        self._owns_stream = False
        if isinstance(target, (str, Path)):
            self._stream = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        elif target is not None:
            self._stream = target

    def record(self, event: Union[DriftEvent, RefitEvent]) -> None:
        """Append ``event`` in memory and to the JSONL stream (flushed)."""
        payload = event.to_dict()
        self.events.append(payload)
        if self._stream is not None:
            self._stream.write(json.dumps(payload, sort_keys=True))
            self._stream.write("\n")
            self._stream.flush()

    def close(self) -> None:
        """Close the stream if the log owns it (borrowed streams stay open)."""
        if self._owns_stream and self._stream is not None:
            if not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "AdaptationLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Drift detection
# --------------------------------------------------------------------- #


class DriftMonitor:
    """Sliding-window drift detection over keyed good/bad signals.

    One window per key: the stream-wide :data:`~repro.service.router.
    UNROUTABLE` key collects routability, every cluster name collects
    that cluster's failure signals.  :meth:`observe` returns a
    :class:`DriftEvent` exactly once per crossing: a window needs at
    least ``min_samples`` observations, its bad fraction must reach the
    key's threshold, and a fired key stays dis-armed (no further
    events) until :meth:`rearm` — which also clears the window, so the
    rate must rebuild from fresh traffic before the next event.

    Repeat offenders back off: each *consecutive* firing of the same
    key doubles the observations it must accumulate after re-arming
    before it may fire again, so drift a refit cannot repair (say, a
    renamed label that breaks extraction no matter how pages route)
    degrades into occasional audit events instead of a refit storm.
    The streak resets only on clear recovery — a full window whose
    rate falls under half the threshold — so a rate oscillating just
    below the trip point cannot defeat the backoff.

    Args:
        window: observations each sliding window holds.
        failure_threshold: trip point for cluster keys.
        unroutable_threshold: trip point for the unroutable key.
        min_samples: observations a window needs before it may fire
            (default ``max(1, window // 2)``).
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        failure_threshold: float = DEFAULT_FAILURE_THRESHOLD,
        unroutable_threshold: float = DEFAULT_UNROUTABLE_THRESHOLD,
        min_samples: Optional[int] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        for name, value in (
            ("failure_threshold", failure_threshold),
            ("unroutable_threshold", unroutable_threshold),
        ):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if min_samples is None:
            min_samples = max(1, window // 2)
        if not 1 <= min_samples <= window:
            raise ValueError(
                f"min_samples must be in 1..{window}, got {min_samples}"
            )
        self.window = window
        self.failure_threshold = failure_threshold
        self.unroutable_threshold = unroutable_threshold
        self.min_samples = min_samples
        self.observations = 0
        self._windows: Dict[str, Deque[bool]] = {}
        self._armed: Dict[str, bool] = {}
        self._since_rearm: Dict[str, int] = {}
        self._streak: Dict[str, int] = {}

    def threshold_for(self, key: str) -> float:
        """The trip threshold for ``key`` (unroutable vs per-cluster)."""
        if key == UNROUTABLE:
            return self.unroutable_threshold
        return self.failure_threshold

    def rate(self, key: str) -> float:
        """Current bad fraction of a key's window (0.0 when empty)."""
        window = self._windows.get(key)
        if not window:
            return 0.0
        return sum(window) / len(window)

    def backoff(self, key: str) -> int:
        """Consecutive firings of this key (its current backoff level)."""
        return self._streak.get(key, 0)

    def observe(self, key: str, bad: bool) -> Optional[DriftEvent]:
        """Feed one signal; returns the drift event on a crossing."""
        self.observations += 1
        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = deque(maxlen=self.window)
        window.append(bool(bad))
        self._since_rearm[key] = self._since_rearm.get(key, 0) + 1
        if not self._armed.get(key, True):
            return None
        required = self.min_samples * (1 << self._streak.get(key, 0))
        if self._since_rearm[key] < required:
            return None
        rate = sum(window) / len(window)
        threshold = self.threshold_for(key)
        if rate < threshold:
            # The backoff streak resets only on clear recovery — a
            # full window at under half the threshold.  A single dip
            # (a rate oscillating just below the trip point) must not
            # re-enable min_samples-spaced refit storms.
            if len(window) == self.window and rate < threshold / 2:
                self._streak.pop(key, None)
            return None
        self._armed[key] = False
        self._streak[key] = self._streak.get(key, 0) + 1
        if key == UNROUTABLE:
            kind = "unroutable"
        elif key.endswith(MARGIN_KEY_SUFFIX):
            kind = "low-margin"
        else:
            kind = "cluster-failure"
        return DriftEvent(
            kind=kind,
            key=key,
            rate=rate,
            threshold=threshold,
            window=len(window),
            observation=self.observations,
        )

    def rearm(self, key: Optional[str] = None) -> None:
        """Clear window(s) and allow the next crossing to fire.

        After a refit every window describes the *previous* router
        generation, so the default re-arms everything.  Backoff streaks
        deliberately survive re-arming — they are what spaces out
        refits that keep not helping.
        """
        if key is None:
            self._windows.clear()
            self._armed.clear()
            self._since_rearm.clear()
            return
        self._windows.pop(key, None)
        self._armed.pop(key, None)
        self._since_rearm.pop(key, None)


# --------------------------------------------------------------------- #
# The adaptation layer
# --------------------------------------------------------------------- #


class AdaptiveRouter:
    """A drop-in router that watches its own decisions and refits.

    Implements the :class:`~repro.service.router.ClusterRouter` routing
    interface (``route`` / ``target`` / ``route_all`` / ``clusters``),
    so it slots in wherever a router goes — the streaming runtime, the
    serve handler, a shard worker.  Every decision is observed: routed
    signatures land in a bounded per-cluster reservoir, unroutable
    signatures in the cohort reservoir, and the shared
    :class:`DriftMonitor` decides when the evidence amounts to drift.
    A drift event triggers one :meth:`~repro.service.router.
    ClusterRouter.refit` (centroids recomputed from the reservoirs,
    unroutable cohort absorbed — or spawned as a new cluster when it
    resembles nothing known), the monitor is re-armed, and both events
    are recorded in the :class:`AdaptationLog`.

    Thread-safe: observation, reservoirs and refit run under one lock;
    the wrapped router's atomic profile swap keeps lock-free concurrent
    ``route()`` calls consistent.

    Args:
        router: the fitted router to adapt.
        monitor: drift detector (default: a :class:`DriftMonitor` with
            default windows/thresholds).
        reservoir: signatures kept per cluster and for the cohort.
        log: event audit sink (default: in-memory only).
        anchor: previous-centroid weight during refit (0..1).
        low_margin: routed decisions with ``margin`` below this also
            count as drift signals, in a per-cluster window of their
            own (0.0 disables the signal).
        spawn_clusters: allow refits to create a new profile from the
            alien part of the unroutable cohort.  A spawned cluster
            has no extraction rules: its pages stay unserved (counted
            as *skipped*, and still emitted as gap records by serve)
            but become a named, reservoir-tracked cohort an operator
            can build rules for, instead of anonymous unroutable
            noise.
        spawn_below: the alien floor.  Cohort members whose best
            profile score is below it resemble nothing known: they
            are never absorbed into an existing centroid (absorbing
            them would poison a healthy cluster's routing) and are
            spawned only when ``spawn_clusters`` is on.
        spawn_min_cohort: smallest alien cohort worth a new cluster.
        deployer: optional :class:`~repro.service.registry.canary.
            CanaryController`.  With one attached, a refit no longer
            swaps the live router directly: the refit product is built
            on a clone and staged as a shadow candidate, and only the
            deployer's verdict promotes it (or rolls it back).
        metrics: a :class:`~repro.service.metrics.MetricsRegistry`
            receiving the ``repro_drift_events_total{kind}`` and
            ``repro_refits_total`` counters (default: the process-wide
            registry).
    """

    def __init__(
        self,
        router: ClusterRouter,
        monitor: Optional[DriftMonitor] = None,
        reservoir: int = DEFAULT_RESERVOIR,
        log: Optional[AdaptationLog] = None,
        anchor: float = 0.25,
        low_margin: float = 0.0,
        spawn_clusters: bool = False,
        spawn_below: float = 0.25,
        spawn_min_cohort: int = 8,
        deployer=None,
        metrics=None,
    ) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        if not 0.0 <= anchor <= 1.0:
            raise ValueError(f"anchor must be in [0, 1], got {anchor}")
        self.router = router
        self.monitor = monitor if monitor is not None else DriftMonitor()
        self.log = log if log is not None else AdaptationLog()
        self.reservoir = reservoir
        self.anchor = anchor
        self.low_margin = low_margin
        self.spawn_clusters = spawn_clusters
        self.spawn_below = spawn_below
        self.spawn_min_cohort = spawn_min_cohort
        self.deployer = deployer
        self.drift_events = 0
        self.refits = 0
        self.routed_pages = 0
        self.unroutable_pages = 0
        registry = metrics if metrics is not None else default_registry()
        self._m_drift = registry.from_spec("repro_drift_events_total")
        self._m_refits = registry.from_spec("repro_refits_total")
        self._reservoirs: Dict[str, Deque[PageSignature]] = {}
        self._unroutable: Deque[PageSignature] = deque(maxlen=reservoir)
        self._spawned = 0
        self._lock = threading.Lock()

    # -- the router interface ------------------------------------------ #

    def route(self, page: WebPage) -> RouteDecision:
        """Route one page, feeding the decision into drift detection."""
        signature = self.router.signature(page)
        decision = self.router.route_signature(signature)
        with self._lock:
            self._observe_decision(signature, decision)
        deployer = self.deployer
        if deployer is not None:
            # Outside the adapter lock: the canary takes only its own.
            deployer.observe(page, signature, decision)
        return decision

    def target(self, page: WebPage) -> Optional[str]:
        """The routed cluster name, or ``None`` when unroutable."""
        decision = self.route(page)
        return None if decision.cluster == UNROUTABLE else decision.cluster

    def route_all(
        self, pages: Iterable[WebPage]
    ) -> Dict[str, list[WebPage]]:
        """Bucket ``pages`` by routed cluster (observing each decision)."""
        routed: Dict[str, list[WebPage]] = {}
        for page in pages:
            decision = self.route(page)
            routed.setdefault(decision.cluster, []).append(page)
        return routed

    def clusters(self) -> list[str]:
        """Cluster names the live router currently serves."""
        return self.router.clusters()

    @property
    def threshold(self) -> float:
        """The live router's confidence threshold."""
        return self.router.threshold

    # -- feedback from extraction -------------------------------------- #

    def note_result(self, cluster: str, failed: bool) -> None:
        """Feed one extraction outcome (the :class:`Stage` signal)."""
        with self._lock:
            event = self.monitor.observe(cluster, failed)
            if event is not None:
                self._refit(event)
        deployer = self.deployer
        if deployer is not None:
            deployer.note_result(cluster, failed)

    def stage(self) -> "AdaptiveRouterStage":
        """The runtime stage feeding served records back into this."""
        return AdaptiveRouterStage(self)

    # -- internals ------------------------------------------------------ #

    def _observe_decision(
        self, signature: PageSignature, decision: RouteDecision
    ) -> None:
        if decision.cluster == UNROUTABLE:
            self.unroutable_pages += 1
            self._unroutable.append(signature)
            event = self.monitor.observe(UNROUTABLE, True)
        else:
            self.routed_pages += 1
            reservoir = self._reservoirs.get(decision.cluster)
            if reservoir is None:
                reservoir = self._reservoirs[decision.cluster] = deque(
                    maxlen=self.reservoir
                )
            reservoir.append(signature)
            event = self.monitor.observe(UNROUTABLE, False)
            if event is None and self.low_margin > 0.0:
                # Margin observations live in their own window: mixing
                # them into the cluster's extraction-failure window
                # would cap either signal's rate at 0.5 and mask drift.
                event = self.monitor.observe(
                    margin_key(decision.cluster),
                    decision.margin < self.low_margin,
                )
        if event is not None:
            self._refit(event)

    def _spawn_name(self) -> str:
        existing = set(self.router.clusters())
        while True:
            name = f"adapted-{self._spawned}"
            self._spawned += 1
            if name not in existing:
                return name

    def _refit(self, trigger: DriftEvent) -> None:
        """Answer one drift event: refit, re-arm, audit (lock held)."""
        self.drift_events += 1
        self._m_drift.labels(trigger.kind).inc()
        self.log.record(trigger)
        reservoirs = {
            cluster: list(window)
            for cluster, window in self._reservoirs.items()
            if window
        }
        # Partition the unroutable cohort by the alien floor: only
        # signatures that still resemble *some* profile are absorbed
        # (a drifted template scores well below threshold but far
        # above zero); genuinely alien traffic — bot pages, error
        # pages — must never be blended into a healthy centroid, where
        # it would poison routing for the cluster's real pages.
        absorbable: list[PageSignature] = []
        alien: list[PageSignature] = []
        for signature in self._unroutable:
            best = self.router.route_signature(signature).confidence
            if best >= self.spawn_below:
                absorbable.append(signature)
            else:
                alien.append(signature)
        spawn: Optional[tuple] = None
        if self.spawn_clusters and len(alien) >= self.spawn_min_cohort:
            spawn = (self._spawn_name(), alien)
        # With a canary deployer attached, the refit builds on a clone:
        # the incumbent keeps serving unchanged while the candidate
        # shadows, and only the deployer's verdict swaps profiles in.
        deployer = self.deployer
        target = self.router if deployer is None else self.router.clone()
        updated, spawned = target.refit(
            reservoirs, absorbable, anchor=self.anchor, spawn=spawn
        )
        # Everything observed before the swap describes the *previous*
        # router generation: stale reservoir signatures would drag the
        # next refit back toward the pre-drift centroid (an oscillation
        # observed in replay), so reservoirs, cohort and monitor
        # windows all restart from the new generation's traffic.
        cohort_size = len(self._unroutable)
        self._reservoirs.clear()
        self._unroutable.clear()
        self.monitor.rearm()
        self.refits += 1
        self._m_refits.inc()
        refit_event = RefitEvent(
            trigger_kind=trigger.kind,
            trigger_key=trigger.key,
            updated=tuple(updated),
            spawned=tuple(spawned),
            reservoir_pages=sum(len(s) for s in reservoirs.values()),
            unroutable_pages=cohort_size,
            observation=self.monitor.observations,
            alien_pages=len(alien),
        )
        self.log.record(refit_event)
        if deployer is not None:
            deployer.stage(target, trigger, refit_event)


class AdaptiveRouterStage:
    """Runtime :class:`~repro.service.runtime.Stage` closing the loop.

    Routing alone cannot see drift that keeps pages routable but breaks
    extraction (a renamed label, a moved cell): this stage feeds every
    served record's outcome — failed if any component failure was
    detected — back into the adapter's monitor, and returns the record
    unchanged, so adaptive and non-adaptive runs emit identical bytes
    until a refit actually changes a routing decision.
    """

    def __init__(self, adaptive: AdaptiveRouter) -> None:
        self.adaptive = adaptive

    def __call__(self, record: PageRecord) -> PageRecord:
        self.adaptive.note_result(record.cluster, bool(record.failures))
        return record


def make_adapter(
    router: ClusterRouter,
    window: int = DEFAULT_WINDOW,
    threshold: Optional[float] = None,
    log_path: Union[str, Path, None] = None,
    **kwargs,
) -> AdaptiveRouter:
    """Convenience wiring used by the CLI entry points.

    ``threshold`` (when given) sets both the cluster-failure and the
    unroutable trip point — the single-knob shape of the CLI's
    ``--drift-threshold``; ``log_path`` opens a JSONL audit log.

    Raises:
        ClusteringError: when ``router`` is ``None`` — adaptation
            watches routing decisions, so hint-routed runs have
            nothing to adapt.
    """
    if router is None:
        raise ClusteringError(
            "adaptation needs a fitted signature router "
            "(hint-based routing has no profiles to refit)"
        )
    monitor = DriftMonitor(
        window=window,
        failure_threshold=(
            threshold if threshold is not None else DEFAULT_FAILURE_THRESHOLD
        ),
        unroutable_threshold=(
            threshold
            if threshold is not None
            else DEFAULT_UNROUTABLE_THRESHOLD
        ),
    )
    log = AdaptationLog(log_path) if log_path is not None else AdaptationLog()
    return AdaptiveRouter(router, monitor=monitor, log=log, **kwargs)
