"""Typed AST for XPath 1.0 expressions.

Every node knows how to render itself back to XPath source
(``__str__``), which the mapping-rule machinery uses when it *rewrites*
locations during refinement (e.g. replacing a position predicate with a
contextual predicate, or broadening ``TR[6]`` to ``TR[position()>=1]``
— Section 3.4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# --------------------------------------------------------------------- #
# Node tests
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class NameTest:
    """``DIV`` or ``*`` — matches principal-axis nodes by name."""

    name: str  # "*" for wildcard

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class NodeTypeTest:
    """``text()``, ``node()`` or ``comment()``."""

    node_type: str  # "text" | "node" | "comment"

    def __str__(self) -> str:
        return f"{self.node_type}()"


NodeTest = Union[NameTest, NodeTypeTest]

# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #


class Expr:
    """Marker base class for expression AST nodes."""


@dataclass(frozen=True)
class NumberLiteral(Expr):
    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class StringLiteral(Expr):
    value: str

    def __str__(self) -> str:
        if '"' not in self.value:
            return f'"{self.value}"'
        return f"'{self.value}'"


@dataclass(frozen=True)
class VariableRef(Expr):
    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Any infix operation: or/and/=/!=/</<=/>/>=/+/-/*/div/mod/|."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        if self.op == "|":
            return f"{self.left} | {self.right}"
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class UnaryMinus(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"-{self.operand}"


# --------------------------------------------------------------------- #
# Paths
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::node-test[pred1][pred2]...``.

    ``__str__`` uses abbreviated syntax where it exists (``child::`` is
    dropped, ``attribute::`` becomes ``@``, ``self::node()`` becomes
    ``.``), matching how the paper prints its rules.
    """

    axis: str
    node_test: NodeTest
    predicates: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        if self.axis == "child":
            base = str(self.node_test)
        elif self.axis == "attribute":
            base = f"@{self.node_test}"
        elif (
            self.axis == "self"
            and isinstance(self.node_test, NodeTypeTest)
            and self.node_test.node_type == "node"
            and not self.predicates
        ):
            return "."
        elif (
            self.axis == "parent"
            and isinstance(self.node_test, NodeTypeTest)
            and self.node_test.node_type == "node"
            and not self.predicates
        ):
            return ".."
        else:
            base = f"{self.axis}::{self.node_test}"
        return base + preds

    def with_predicates(self, predicates: tuple[Expr, ...]) -> "Step":
        """A copy of this step with ``predicates`` replacing the current ones."""
        return Step(self.axis, self.node_test, predicates)


#: Sentinel axis value marking an abbreviated ``//`` between steps; the
#: parser expands it into a ``descendant-or-self::node()`` step.
DESCENDANT_OR_SELF_STEP = Step("descendant-or-self", NodeTypeTest("node"))


@dataclass(frozen=True)
class LocationPath(Expr):
    """``/a/b[1]//c`` — ``absolute`` means it starts at the document root."""

    absolute: bool
    steps: tuple[Step, ...]

    def __str__(self) -> str:
        if not self.steps:
            return "/" if self.absolute else "."
        rendered: list[str] = []
        for index, step in enumerate(self.steps):
            if (
                step.axis == "descendant-or-self"
                and isinstance(step.node_test, NodeTypeTest)
                and step.node_test.node_type == "node"
                and not step.predicates
            ):
                # Abbreviated `//`: emitted as a separator before the
                # next step, so "a//b" round-trips.
                rendered.append("" if index == 0 else "")
                rendered.append("//")
                continue
            if rendered and rendered[-1] != "//":
                rendered.append("/")
            rendered.append(str(step))
        text = "".join(rendered)
        if self.absolute:
            if text.startswith("//"):
                return text
            return "/" + text
        return text


@dataclass(frozen=True)
class FilterPath(Expr):
    """A filter expression with optional trailing path.

    Covers grammar productions like ``(...)[2]/following::text()`` or
    ``string(.)`` used as a path prefix.
    """

    primary: Expr
    predicates: tuple[Expr, ...] = ()
    steps: tuple[Step, ...] = ()
    # Separator before first trailing step: "/" or "//".
    descendant_join: bool = False

    def __str__(self) -> str:
        text = str(self.primary)
        if isinstance(self.primary, (BinaryOp, UnaryMinus)):
            text = f"({text})"
        text += "".join(f"[{p}]" for p in self.predicates)
        if self.steps:
            joiner = "//" if self.descendant_join else "/"
            text += joiner + "/".join(str(s) for s in self.steps)
        return text
