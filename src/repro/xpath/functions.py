"""XPath 1.0 core function library.

Implements the node-set, string, boolean and number functions of the
XPath 1.0 recommendation (section 4) over the value types used by the
evaluator: node-set (``list``), ``str``, ``float`` and ``bool``.

Leniency for the paper's abbreviated predicate style (Table 2, row b
writes ``contains("Runtime:")``): ``contains``, ``starts-with`` and
``ends-with`` accept a single argument, which is then matched against
the string-value of the context node.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable

from repro.errors import XPathEvaluationError, XPathTypeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xpath.evaluator import XPathContext

# --------------------------------------------------------------------- #
# Type conversions (spec section 4.x "string()", "number()", "boolean()")
# --------------------------------------------------------------------- #


def node_string_value(node) -> str:
    """The XPath string-value of any node kind."""
    from repro.dom.node import Comment, Text
    from repro.xpath.evaluator import AttributeNode

    if isinstance(node, AttributeNode):
        return node.value
    if isinstance(node, (Text, Comment)):
        return node.data
    return node.text_content()


def to_string(value) -> str:
    """Convert any XPath value to a string (spec 4.2)."""
    if isinstance(value, list):
        if not value:
            return ""
        return node_string_value(value[0])
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    raise XPathTypeError(f"cannot convert {type(value).__name__} to string")


def format_number(value: float) -> str:
    """XPath number-to-string rules: integers print without a decimal point."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    if value == int(value):
        return str(int(value))
    return repr(value)


def to_number(value) -> float:
    """Convert any XPath value to a number (spec 4.4)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return float("nan")
    if isinstance(value, list):
        return to_number(to_string(value))
    raise XPathTypeError(f"cannot convert {type(value).__name__} to number")


def to_boolean(value) -> bool:
    """Convert any XPath value to a boolean (spec 4.3)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0 and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, list):
        return len(value) > 0
    raise XPathTypeError(f"cannot convert {type(value).__name__} to boolean")


# --------------------------------------------------------------------- #
# Function implementations.  Each receives (context, evaluated args).
# --------------------------------------------------------------------- #


def _context_string(context: "XPathContext") -> str:
    return node_string_value(context.node)


def _fn_last(context, args):
    return float(context.size)


def _fn_position(context, args):
    return float(context.position)


def _fn_count(context, args):
    (node_set,) = args
    if not isinstance(node_set, list):
        raise XPathTypeError("count() requires a node-set")
    return float(len(node_set))


def _fn_name(context, args):
    from repro.dom.node import Element
    from repro.xpath.evaluator import AttributeNode

    if args:
        node_set = args[0]
        if not isinstance(node_set, list):
            raise XPathTypeError("name() requires a node-set")
        if not node_set:
            return ""
        node = node_set[0]
    else:
        node = context.node
    if isinstance(node, Element):
        return node.tag
    if isinstance(node, AttributeNode):
        return node.name
    return ""


def _fn_string(context, args):
    if not args:
        return _context_string(context)
    return to_string(args[0])


def _fn_concat(context, args):
    if len(args) < 2:
        raise XPathEvaluationError("concat() requires at least two arguments")
    return "".join(to_string(a) for a in args)


def _two_string_args(context, args, name):
    """Resolve the lenient 1-arg form: f(x) means f(., x)."""
    if len(args) == 1:
        return _context_string(context), to_string(args[0])
    if len(args) == 2:
        return to_string(args[0]), to_string(args[1])
    raise XPathEvaluationError(f"{name}() takes one or two arguments")


def _fn_starts_with(context, args):
    haystack, needle = _two_string_args(context, args, "starts-with")
    return haystack.startswith(needle)


def _fn_ends_with(context, args):
    haystack, needle = _two_string_args(context, args, "ends-with")
    return haystack.endswith(needle)


def _fn_contains(context, args):
    haystack, needle = _two_string_args(context, args, "contains")
    return needle in haystack


def _fn_substring_before(context, args):
    haystack, needle = _two_string_args(context, args, "substring-before")
    index = haystack.find(needle)
    return "" if index < 0 else haystack[:index]


def _fn_substring_after(context, args):
    haystack, needle = _two_string_args(context, args, "substring-after")
    index = haystack.find(needle)
    return "" if index < 0 else haystack[index + len(needle) :]


def _fn_substring(context, args):
    if len(args) not in (2, 3):
        raise XPathEvaluationError("substring() takes two or three arguments")
    text = to_string(args[0])
    start = to_number(args[1])
    if math.isnan(start):
        return ""
    start = round(start)
    if len(args) == 3:
        length = to_number(args[2])
        if math.isnan(length):
            return ""
        end = start + round(length) if not math.isinf(length) else float("inf")
    else:
        end = float("inf")
    # XPath positions are 1-based; build result by position filtering.
    chars = [
        ch
        for position, ch in enumerate(text, start=1)
        if position >= start and position < end
    ]
    return "".join(chars)


def _fn_string_length(context, args):
    if args:
        return float(len(to_string(args[0])))
    return float(len(_context_string(context)))


def _fn_normalize_space(context, args):
    text = to_string(args[0]) if args else _context_string(context)
    return " ".join(text.split())


def _fn_translate(context, args):
    if len(args) != 3:
        raise XPathEvaluationError("translate() takes three arguments")
    text, source, target = (to_string(a) for a in args)
    table: dict[int, int | None] = {}
    for index, char in enumerate(source):
        if ord(char) in table:
            continue
        table[ord(char)] = ord(target[index]) if index < len(target) else None
    return text.translate(table)


def _fn_boolean(context, args):
    (value,) = args
    return to_boolean(value)


def _fn_not(context, args):
    (value,) = args
    return not to_boolean(value)


def _fn_true(context, args):
    return True


def _fn_false(context, args):
    return False


def _fn_number(context, args):
    if not args:
        return to_number(_context_string(context))
    return to_number(args[0])


def _fn_sum(context, args):
    (node_set,) = args
    if not isinstance(node_set, list):
        raise XPathTypeError("sum() requires a node-set")
    return float(sum(to_number(node_string_value(node)) for node in node_set))


def _fn_floor(context, args):
    return float(math.floor(to_number(args[0])))


def _fn_ceiling(context, args):
    return float(math.ceil(to_number(args[0])))


def _fn_round(context, args):
    value = to_number(args[0])
    if math.isnan(value) or math.isinf(value):
        return value
    # XPath rounds half towards positive infinity.
    return float(math.floor(value + 0.5))


#: Registered function table: name -> callable(context, args).
FUNCTIONS: dict[str, Callable] = {
    "last": _fn_last,
    "position": _fn_position,
    "count": _fn_count,
    "name": _fn_name,
    "local-name": _fn_name,
    "string": _fn_string,
    "concat": _fn_concat,
    "starts-with": _fn_starts_with,
    "ends-with": _fn_ends_with,
    "contains": _fn_contains,
    "substring-before": _fn_substring_before,
    "substring-after": _fn_substring_after,
    "substring": _fn_substring,
    "string-length": _fn_string_length,
    "normalize-space": _fn_normalize_space,
    "translate": _fn_translate,
    "boolean": _fn_boolean,
    "not": _fn_not,
    "true": _fn_true,
    "false": _fn_false,
    "number": _fn_number,
    "sum": _fn_sum,
    "floor": _fn_floor,
    "ceiling": _fn_ceiling,
    "round": _fn_round,
}
