"""XPath 1.0 evaluation engine.

Evaluates parsed ASTs against :mod:`repro.dom` trees.  The four XPath
value types map to Python as:

==============  =====================
XPath type      Python representation
==============  =====================
node-set        ``list`` of nodes, document order, no duplicates
string          ``str``
number          ``float``
boolean         ``bool``
==============  =====================

Semantics follow the recommendation: predicates see a context position
counted along the *axis direction* (reverse axes count backwards), a
bare number predicate means ``position() = n``, comparisons involving
node-sets are existential, and results of every step are normalised to
document order.

Element name tests are case-insensitive (HTML names are
case-insensitive, and the DOM stores them upper-case so the paper's
``BODY[1]/DIV[2]`` notation matches directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dom.node import Comment, Element, Text
from repro.errors import XPathEvaluationError, XPathTypeError
from repro.xpath.ast import (
    BinaryOp,
    Expr,
    FilterPath,
    FunctionCall,
    LocationPath,
    NodeTypeTest,
    NumberLiteral,
    Step,
    StringLiteral,
    UnaryMinus,
    VariableRef,
)
from repro.xpath.functions import (
    FUNCTIONS,
    node_string_value,
    to_boolean,
    to_number,
    to_string,
)

_REVERSE_AXES = frozenset(
    {"ancestor", "ancestor-or-self", "preceding", "preceding-sibling", "parent"}
)


@dataclass(frozen=True)
class AttributeNode:
    """A lightweight stand-in for DOM attribute nodes.

    The DOM proper stores attributes as a dict on the element; the
    attribute axis materialises these wrappers on demand.
    """

    owner: Element
    name: str
    value: str

    def path_indices(self) -> tuple:
        # Attributes sort immediately after their owner element,
        # ordered by insertion position of the attribute name.
        try:
            rank = list(self.owner.attributes).index(self.name)
        except ValueError:
            rank = 0
        return (*self.owner.path_indices(), -1, rank)

    def text_content(self) -> str:
        return self.value


@dataclass
class XPathContext:
    """Evaluation context: the context node plus position/size/variables."""

    node: object
    position: int = 1
    size: int = 1
    variables: dict = field(default_factory=dict)

    def with_node(self, node, position: int, size: int) -> "XPathContext":
        return XPathContext(node, position, size, self.variables)


def _document_order_key(node) -> tuple:
    return node.path_indices()


def _sort_node_set(nodes: Iterable) -> list:
    unique: dict[int, object] = {}
    for node in nodes:
        unique[id(node)] = node
    return sorted(unique.values(), key=_document_order_key)


class Evaluator:
    """Evaluates expression ASTs.  Stateless; safe to share."""

    # ------------------------------------------------------------------ #
    # Entry
    # ------------------------------------------------------------------ #

    def evaluate(self, expr: Expr, context: XPathContext):
        if isinstance(expr, NumberLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, VariableRef):
            if expr.name not in context.variables:
                raise XPathEvaluationError(f"unbound variable ${expr.name}")
            return context.variables[expr.name]
        if isinstance(expr, FunctionCall):
            return self._call_function(expr, context)
        if isinstance(expr, UnaryMinus):
            return -to_number(self.evaluate(expr.operand, context))
        if isinstance(expr, BinaryOp):
            return self._binary(expr, context)
        if isinstance(expr, LocationPath):
            return self._location_path(expr, context)
        if isinstance(expr, FilterPath):
            return self._filter_path(expr, context)
        raise XPathEvaluationError(f"cannot evaluate {type(expr).__name__}")

    # ------------------------------------------------------------------ #
    # Operators
    # ------------------------------------------------------------------ #

    def _binary(self, expr: BinaryOp, context: XPathContext):
        op = expr.op
        if op == "or":
            return to_boolean(self.evaluate(expr.left, context)) or to_boolean(
                self.evaluate(expr.right, context)
            )
        if op == "and":
            return to_boolean(self.evaluate(expr.left, context)) and to_boolean(
                self.evaluate(expr.right, context)
            )
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if op in ("=", "!="):
            return self._compare_equality(op, left, right)
        if op in ("<", "<=", ">", ">="):
            return self._compare_relational(op, left, right)
        if op == "|":
            if not isinstance(left, list) or not isinstance(right, list):
                raise XPathTypeError("union requires node-sets")
            return _sort_node_set([*left, *right])
        left_num, right_num = to_number(left), to_number(right)
        if op == "+":
            return left_num + right_num
        if op == "-":
            return left_num - right_num
        if op == "*":
            return left_num * right_num
        if op == "div":
            if right_num == 0:
                if left_num == 0:
                    return float("nan")
                return float("inf") if left_num > 0 else float("-inf")
            return left_num / right_num
        if op == "mod":
            if right_num == 0:
                return float("nan")
            # XPath mod truncates (like Java %), unlike Python %.
            return left_num - right_num * int(left_num / right_num)
        raise XPathEvaluationError(f"unknown operator {op!r}")

    def _compare_equality(self, op: str, left, right) -> bool:
        def eq(a, b) -> bool:
            # When neither is a node-set: boolean > number > string priority.
            if isinstance(a, bool) or isinstance(b, bool):
                result = to_boolean(a) == to_boolean(b)
            elif isinstance(a, float) or isinstance(b, float):
                result = to_number(a) == to_number(b)
            else:
                result = to_string(a) == to_string(b)
            return result if op == "=" else not result

        if isinstance(left, list) and isinstance(right, list):
            right_values = {node_string_value(n) for n in right}
            for node in left:
                value = node_string_value(node)
                if op == "=" and value in right_values:
                    return True
                if op == "!=" and any(value != other for other in right_values):
                    return True
            return False
        if isinstance(left, list):
            return any(eq(node_string_value(n), right) for n in left)
        if isinstance(right, list):
            return any(eq(left, node_string_value(n)) for n in right)
        return eq(left, right)

    def _compare_relational(self, op: str, left, right) -> bool:
        def rel(a: float, b: float) -> bool:
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b

        if isinstance(left, list) and isinstance(right, list):
            return any(
                rel(
                    to_number(node_string_value(lnode)),
                    to_number(node_string_value(rnode)),
                )
                for lnode in left
                for rnode in right
            )
        if isinstance(left, list):
            rnum = to_number(right)
            return any(rel(to_number(node_string_value(n)), rnum) for n in left)
        if isinstance(right, list):
            lnum = to_number(left)
            return any(rel(lnum, to_number(node_string_value(n))) for n in right)
        return rel(to_number(left), to_number(right))

    # ------------------------------------------------------------------ #
    # Functions
    # ------------------------------------------------------------------ #

    def _call_function(self, expr: FunctionCall, context: XPathContext):
        implementation = FUNCTIONS.get(expr.name)
        if implementation is None:
            raise XPathEvaluationError(f"unknown function {expr.name}()")
        args = [self.evaluate(arg, context) for arg in expr.args]
        return implementation(context, args)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def _location_path(self, path: LocationPath, context: XPathContext) -> list:
        if path.absolute:
            node = context.node
            root = node.owner if isinstance(node, AttributeNode) else node
            start: list = [root.root]
            if not path.steps:
                return start
        else:
            start = [context.node]
        return self._apply_steps(path.steps, start, context)

    def _filter_path(self, path: FilterPath, context: XPathContext):
        value = self.evaluate(path.primary, context)
        if not path.predicates and not path.steps:
            return value
        if not isinstance(value, list):
            raise XPathTypeError(
                "predicates and path steps require a node-set primary"
            )
        nodes = _sort_node_set(value)
        for predicate in path.predicates:
            nodes = self._filter_by_predicate(nodes, predicate, context, reverse=False)
        if path.steps:
            return self._apply_steps(path.steps, nodes, context)
        return nodes

    def apply_steps(self, steps, start: list, context: XPathContext) -> list:
        """Public step-sequence application (document-ordered, deduped).

        Applying a location path is associative over its steps:
        ``apply_steps(p + q, start) == apply_steps(q, apply_steps(p,
        start))`` — the compiled-wrapper prefix factoring in
        :mod:`repro.service.compiler` relies on this to evaluate a
        shared prefix once and continue with each rule's suffix.
        """
        return self._apply_steps(steps, start, context)

    def _apply_steps(self, steps, start: list, context: XPathContext) -> list:
        current = list(start)
        for step in steps:
            gathered: list = []
            for node in current:
                gathered.extend(self._apply_step(step, node, context))
            current = _sort_node_set(gathered)
        return current

    def _apply_step(self, step: Step, node, context: XPathContext) -> list:
        candidates = [
            candidate
            for candidate in self._axis(step.axis, node)
            if self._matches_test(step.axis, step.node_test, candidate)
        ]
        reverse = step.axis in _REVERSE_AXES
        for predicate in step.predicates:
            candidates = self._filter_by_predicate(
                candidates, predicate, context, reverse=False
            )
            # Candidates are already ordered along the axis direction, so
            # position() inside the predicate counts axis order naturally;
            # no extra reversal is needed here.
        return candidates

    def _filter_by_predicate(
        self, nodes: list, predicate: Expr, context: XPathContext, reverse: bool
    ) -> list:
        size = len(nodes)
        kept: list = []
        for index, node in enumerate(nodes, start=1):
            sub_context = context.with_node(node, index, size)
            value = self.evaluate(predicate, sub_context)
            if isinstance(value, float):
                if value == index:
                    kept.append(node)
            elif to_boolean(value):
                kept.append(node)
        return kept

    # ------------------------------------------------------------------ #
    # Axes and node tests
    # ------------------------------------------------------------------ #

    def _axis(self, axis: str, node) -> list:
        if isinstance(node, AttributeNode):
            return self._attribute_axis_member(axis, node)
        if axis == "child":
            return list(node.children)
        if axis == "descendant":
            return list(node.descendants())
        if axis == "descendant-or-self":
            return list(node.self_and_descendants())
        if axis == "parent":
            return [node.parent] if node.parent is not None else []
        if axis == "ancestor":
            return list(node.ancestors())
        if axis == "ancestor-or-self":
            return [node, *node.ancestors()]
        if axis == "self":
            return [node]
        if axis == "following-sibling":
            if node.parent is None:
                return []
            index = node.index_in_parent
            return list(node.parent.children[index + 1 :])
        if axis == "preceding-sibling":
            if node.parent is None:
                return []
            index = node.index_in_parent
            return list(reversed(node.parent.children[:index]))
        if axis == "following":
            return list(node.following())
        if axis == "preceding":
            return list(node.preceding())
        if axis == "attribute":
            if isinstance(node, Element):
                return [
                    AttributeNode(node, name, value)
                    for name, value in node.attributes.items()
                ]
            return []
        raise XPathEvaluationError(f"unsupported axis {axis!r}")

    def _attribute_axis_member(self, axis: str, node: AttributeNode) -> list:
        """Axes evaluated from an attribute node context."""
        if axis == "parent":
            return [node.owner]
        if axis == "ancestor":
            return [node.owner, *node.owner.ancestors()]
        if axis == "ancestor-or-self":
            return [node, node.owner, *node.owner.ancestors()]
        if axis == "self":
            return [node]
        return []

    def _matches_test(self, axis: str, test, candidate) -> bool:
        if isinstance(test, NodeTypeTest):
            if test.node_type == "node":
                return True
            if test.node_type == "text":
                return isinstance(candidate, Text)
            if test.node_type == "comment":
                return isinstance(candidate, Comment)
            return False
        # NameTest: principal node type is attribute on the attribute
        # axis, element everywhere else.
        if axis == "attribute":
            if not isinstance(candidate, AttributeNode):
                return False
            return test.name == "*" or candidate.name == test.name.lower()
        if not isinstance(candidate, Element):
            return False
        return test.name == "*" or candidate.tag == test.name.upper()
