"""An XPath 1.0 engine for :mod:`repro.dom` trees.

The paper chose XPath as the *location* formalism of mapping rules
because it "allows to select node sets in DOM trees through node path
expressions", can "match simple leaf nodes or complex ones", can "return
multiple nodes or void results", and supports predicates "to constrain
or broaden their selection scope" (Section 2.3).  This package provides
exactly that capability set, built from scratch:

* a lexer and recursive-descent parser producing a typed AST
  (:mod:`repro.xpath.lexer`, :mod:`repro.xpath.parser`);
* an evaluator implementing 12 axes, node tests, positional and boolean
  predicates, the XPath 1.0 core function library, unions and arithmetic
  (:mod:`repro.xpath.evaluator`, :mod:`repro.xpath.functions`);
* a compile cache plus convenience API (:mod:`repro.xpath.engine`).

One deliberate leniency: ``contains("X")`` / ``starts-with("X")`` with a
single argument are accepted as ``contains(., "X")`` — the paper writes
its contextual predicates in this abbreviated style (Table 2, row b).

Example:
    >>> from repro.html import parse_html
    >>> from repro.xpath import select
    >>> doc = parse_html("<body><p>a</p><p>b</p></body>")
    >>> [n.text_content() for n in select(doc.document_element, "BODY[1]/P")]
    ['a', 'b']
"""

from repro.xpath.engine import (
    XPath,
    compile_xpath,
    evaluate,
    select,
    select_one,
    string_value,
)
from repro.xpath.evaluator import XPathContext

__all__ = [
    "XPath",
    "compile_xpath",
    "select",
    "select_one",
    "evaluate",
    "string_value",
    "XPathContext",
]
