"""XPath 1.0 lexer.

Tokenises an XPath expression string.  The grammar is mildly
context-sensitive: ``*`` is a multiplication operator when an operand
precedes it and a wildcard name test otherwise, and the names ``and``,
``or``, ``div``, ``mod`` are operators exactly in operand-follows
position (XPath 1.0 spec, section 3.7).  The lexer resolves this with
the standard "preceding token" rule so the parser stays context-free.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.errors import XPathSyntaxError


class TokenType(Enum):
    NAME = "name"                  # element name / axis name / function name
    NUMBER = "number"
    LITERAL = "literal"            # quoted string
    OPERATOR = "operator"          # and or div mod * + - = != <= < >= > | /  //
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    AT = "@"
    DOT = "."
    DOTDOT = ".."
    AXIS_SEP = "::"
    DOLLAR = "$"
    EOF = "eof"


@dataclass
class Token:
    type: TokenType
    value: str
    position: int

    def is_operator(self, *values: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value in values


_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.-]*")
_NUMBER_RE = re.compile(r"\d+(\.\d*)?|\.\d+")
_OPERATOR_NAMES = frozenset({"and", "or", "div", "mod"})

#: Token types/values after which a NAME or ``*`` must be an operand
#: (name test), not an operator.  Rule from XPath 1.0 section 3.7: a
#: ``*`` or operator-name is an operator iff there IS a preceding token
#: and it is none of ``@ :: ( [ ,`` or another operator.
_OPERAND_EXPECTED_AFTER = {
    TokenType.AT,
    TokenType.AXIS_SEP,
    TokenType.LPAREN,
    TokenType.LBRACKET,
    TokenType.COMMA,
    TokenType.OPERATOR,
}


def tokenize_xpath(expression: str) -> list[Token]:
    """Tokenise ``expression`` into a list ending with an EOF token.

    Raises:
        XPathSyntaxError: on an unterminated literal or illegal character.
    """
    tokens: list[Token] = []
    pos = 0
    length = len(expression)

    def previous() -> Token | None:
        return tokens[-1] if tokens else None

    def operator_position() -> bool:
        """True when the next ``*``/``and``/``or``... must be an operator."""
        prev = previous()
        if prev is None:
            return False
        return prev.type not in _OPERAND_EXPECTED_AFTER

    while pos < length:
        char = expression[pos]
        if char in " \t\r\n":
            pos += 1
            continue
        if char in "'\"":
            end = expression.find(char, pos + 1)
            if end == -1:
                raise XPathSyntaxError("unterminated string literal", expression, pos)
            tokens.append(Token(TokenType.LITERAL, expression[pos + 1 : end], pos))
            pos = end + 1
            continue
        number_match = _NUMBER_RE.match(expression, pos)
        if number_match and (char.isdigit() or (char == "." and pos + 1 < length and expression[pos + 1].isdigit())):
            tokens.append(Token(TokenType.NUMBER, number_match.group(0), pos))
            pos = number_match.end()
            continue
        if expression.startswith("..", pos):
            tokens.append(Token(TokenType.DOTDOT, "..", pos))
            pos += 2
            continue
        if char == ".":
            tokens.append(Token(TokenType.DOT, ".", pos))
            pos += 1
            continue
        if expression.startswith("::", pos):
            tokens.append(Token(TokenType.AXIS_SEP, "::", pos))
            pos += 2
            continue
        if expression.startswith("//", pos):
            tokens.append(Token(TokenType.OPERATOR, "//", pos))
            pos += 2
            continue
        if expression.startswith("!=", pos):
            tokens.append(Token(TokenType.OPERATOR, "!=", pos))
            pos += 2
            continue
        if expression.startswith("<=", pos):
            tokens.append(Token(TokenType.OPERATOR, "<=", pos))
            pos += 2
            continue
        if expression.startswith(">=", pos):
            tokens.append(Token(TokenType.OPERATOR, ">=", pos))
            pos += 2
            continue
        if char in "/|+-=<>":
            tokens.append(Token(TokenType.OPERATOR, char, pos))
            pos += 1
            continue
        if char == "*":
            if operator_position():
                tokens.append(Token(TokenType.OPERATOR, "*", pos))
            else:
                tokens.append(Token(TokenType.NAME, "*", pos))
            pos += 1
            continue
        if char == "[":
            tokens.append(Token(TokenType.LBRACKET, "[", pos))
            pos += 1
            continue
        if char == "]":
            tokens.append(Token(TokenType.RBRACKET, "]", pos))
            pos += 1
            continue
        if char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", pos))
            pos += 1
            continue
        if char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", pos))
            pos += 1
            continue
        if char == ",":
            tokens.append(Token(TokenType.COMMA, ",", pos))
            pos += 1
            continue
        if char == "@":
            tokens.append(Token(TokenType.AT, "@", pos))
            pos += 1
            continue
        if char == "$":
            tokens.append(Token(TokenType.DOLLAR, "$", pos))
            pos += 1
            continue
        name_match = _NAME_RE.match(expression, pos)
        if name_match:
            name = name_match.group(0)
            if name in _OPERATOR_NAMES and operator_position():
                tokens.append(Token(TokenType.OPERATOR, name, pos))
            else:
                tokens.append(Token(TokenType.NAME, name, pos))
            pos = name_match.end()
            continue
        raise XPathSyntaxError(f"illegal character {char!r}", expression, pos)

    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
