"""Public XPath API: compiled expressions with a cache.

The rule checker re-applies the same location expression to every page
of a working sample and, later, to every page of the cluster, so
expressions are compiled once and cached (keyed by source text).

Example:
    >>> from repro.html import parse_html
    >>> from repro.xpath import select_one
    >>> doc = parse_html("<body><b>Runtime:</b> 108 min</body>")
    >>> select_one(doc.document_element, "BODY[1]/B[1]/text()[1]").data
    'Runtime:'
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.dom.node import Node
from repro.errors import XPathTypeError
from repro.xpath.ast import Expr
from repro.xpath.evaluator import Evaluator, XPathContext
from repro.xpath.functions import node_string_value, to_string
from repro.xpath.parser import parse_xpath

_EVALUATOR = Evaluator()
_CACHE: "OrderedDict[str, XPath]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_LIMIT = 4096
_CACHE_HITS = 0
_CACHE_MISSES = 0


class XPath:
    """A compiled XPath expression.

    Instances are immutable and shareable; obtain them through
    :func:`compile_xpath` to benefit from the cache.
    """

    __slots__ = ("source", "ast")

    def __init__(self, source: str, ast: Expr):
        self.source = source
        self.ast = ast

    def evaluate(self, context_node: Node, variables: Optional[dict] = None):
        """Evaluate to whatever XPath type the expression produces."""
        context = XPathContext(context_node, 1, 1, variables or {})
        return _EVALUATOR.evaluate(self.ast, context)

    def select(self, context_node: Node, variables: Optional[dict] = None) -> list:
        """Evaluate and require a node-set result."""
        result = self.evaluate(context_node, variables)
        if not isinstance(result, list):
            raise XPathTypeError(
                f"expression {self.source!r} returned "
                f"{type(result).__name__}, not a node-set"
            )
        return result

    def __str__(self) -> str:
        return self.source

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XPath({self.source!r})"


def compile_xpath(expression: str) -> XPath:
    """Compile ``expression``, reusing a cached instance when possible.

    The cache is a bounded LRU: lookups refresh recency, and inserting
    past the limit evicts the least-recently-used entry (never the
    whole cache).  Both reads and writes take the lock, so concurrent
    callers always observe a consistent ``OrderedDict``; parsing itself
    happens outside the lock (a racing duplicate parse is harmless —
    the first recorded instance wins and is returned to everyone).
    """
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        cached = _CACHE.get(expression)
        if cached is not None:
            _CACHE.move_to_end(expression)
            _CACHE_HITS += 1
            return cached
        _CACHE_MISSES += 1
    compiled = XPath(expression, parse_xpath(expression))
    with _CACHE_LOCK:
        existing = _CACHE.get(expression)
        if existing is not None:
            _CACHE.move_to_end(expression)
            return existing
        _CACHE[expression] = compiled
        while len(_CACHE) > _CACHE_LIMIT:
            _CACHE.popitem(last=False)
    return compiled


def cache_stats() -> dict:
    """Cache observability: size/limit plus hit/miss counters."""
    with _CACHE_LOCK:
        return {
            "size": len(_CACHE),
            "limit": _CACHE_LIMIT,
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
        }


def clear_cache() -> None:
    """Drop every cached expression and reset the counters (tests)."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def select(context_node: Node, expression: str) -> list:
    """All nodes selected by ``expression`` from ``context_node``."""
    return compile_xpath(expression).select(context_node)


def select_one(context_node: Node, expression: str):
    """First selected node in document order, or ``None``."""
    nodes = select(context_node, expression)
    return nodes[0] if nodes else None


def evaluate(context_node: Node, expression: str):
    """Evaluate ``expression``; result may be node-set/str/float/bool."""
    return compile_xpath(expression).evaluate(context_node)


def string_value(node) -> str:
    """XPath string-value of a node (text content / attribute value)."""
    return node_string_value(node)


def evaluate_string(context_node: Node, expression: str) -> str:
    """Evaluate and convert the result to a string (XPath ``string()``)."""
    return to_string(evaluate(context_node, expression))
