"""Recursive-descent parser for XPath 1.0.

Grammar follows the W3C XPath 1.0 recommendation, sections 2 and 3,
with the operator-precedence chain::

    OrExpr > AndExpr > EqualityExpr > RelationalExpr
           > AdditiveExpr > MultiplicativeExpr > UnaryExpr
           > UnionExpr > PathExpr

Abbreviations supported: ``//`` (descendant-or-self::node()), ``.``
(self::node()), ``..`` (parent::node()), ``@name``
(attribute::name), and bare names (child axis).
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    Expr,
    FilterPath,
    FunctionCall,
    LocationPath,
    NameTest,
    NodeTypeTest,
    NumberLiteral,
    Step,
    StringLiteral,
    UnaryMinus,
    VariableRef,
)
from repro.xpath.lexer import Token, TokenType, tokenize_xpath

_AXES = frozenset(
    {
        "ancestor",
        "ancestor-or-self",
        "attribute",
        "child",
        "descendant",
        "descendant-or-self",
        "following",
        "following-sibling",
        "parent",
        "preceding",
        "preceding-sibling",
        "self",
    }
)

_NODE_TYPES = frozenset({"text", "node", "comment", "processing-instruction"})

_DESC_STEP = Step("descendant-or-self", NodeTypeTest("node"))


class _Parser:
    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.tokens = tokenize_xpath(expression)
        self.index = 0

    # -- token helpers --------------------------------------------------- #

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def expect(self, token_type: TokenType) -> Token:
        token = self.current
        if token.type is not token_type:
            raise XPathSyntaxError(
                f"expected {token_type.value!r}, found {token.value!r}",
                self.expression,
                token.position,
            )
        return self.advance()

    def error(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.expression, self.current.position)

    # -- entry ------------------------------------------------------------ #

    def parse(self) -> Expr:
        expr = self.parse_or()
        if self.current.type is not TokenType.EOF:
            raise self.error(f"unexpected trailing token {self.current.value!r}")
        return expr

    # -- precedence chain --------------------------------------------------#

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.current.is_operator("or"):
            self.advance()
            left = BinaryOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_equality()
        while self.current.is_operator("and"):
            self.advance()
            left = BinaryOp("and", left, self.parse_equality())
        return left

    def parse_equality(self) -> Expr:
        left = self.parse_relational()
        while self.current.is_operator("=", "!="):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_relational())
        return left

    def parse_relational(self) -> Expr:
        left = self.parse_additive()
        while self.current.is_operator("<", "<=", ">", ">="):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.current.is_operator("+", "-"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_unary()
        while self.current.is_operator("*", "div", "mod"):
            op = self.advance().value
            left = BinaryOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        if self.current.is_operator("-"):
            self.advance()
            return UnaryMinus(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> Expr:
        left = self.parse_path()
        while self.current.is_operator("|"):
            self.advance()
            left = BinaryOp("|", left, self.parse_path())
        return left

    # -- paths -------------------------------------------------------------#

    def parse_path(self) -> Expr:
        """PathExpr ::= LocationPath | FilterExpr (('/'|'//') RelativeLocationPath)?"""
        if self._starts_filter_expr():
            primary = self.parse_primary()
            predicates: list[Expr] = []
            while self.current.type is TokenType.LBRACKET:
                self.advance()
                predicates.append(self.parse_or())
                self.expect(TokenType.RBRACKET)
            if self.current.is_operator("/", "//"):
                descendant = self.advance().value == "//"
                steps = self.parse_relative_steps()
                if descendant:
                    steps = [_DESC_STEP, *steps]
                return FilterPath(primary, tuple(predicates), tuple(steps))
            if predicates:
                return FilterPath(primary, tuple(predicates))
            return primary
        return self.parse_location_path()

    def _starts_filter_expr(self) -> bool:
        """True when the next tokens begin a FilterExpr, not a LocationPath.

        A NAME followed by ``(`` is a function call — unless the name is
        a node-type test (``text()``), which belongs to a location path.
        """
        token = self.current
        if token.type in (TokenType.NUMBER, TokenType.LITERAL, TokenType.DOLLAR):
            return True
        if token.type is TokenType.LPAREN:
            return True
        if token.type is TokenType.NAME and token.value not in _NODE_TYPES:
            following = self.tokens[self.index + 1]
            return following.type is TokenType.LPAREN
        return False

    def parse_location_path(self) -> LocationPath:
        steps: list[Step] = []
        absolute = False
        if self.current.is_operator("/"):
            absolute = True
            self.advance()
            if not self._starts_step():
                return LocationPath(True, ())
        elif self.current.is_operator("//"):
            absolute = True
            self.advance()
            steps.append(_DESC_STEP)
        steps.extend(self.parse_relative_steps())
        return LocationPath(absolute, tuple(steps))

    def parse_relative_steps(self) -> list[Step]:
        steps = [self.parse_step()]
        while self.current.is_operator("/", "//"):
            if self.advance().value == "//":
                steps.append(_DESC_STEP)
            steps.append(self.parse_step())
        return steps

    def _starts_step(self) -> bool:
        token = self.current
        return token.type in (
            TokenType.NAME,
            TokenType.AT,
            TokenType.DOT,
            TokenType.DOTDOT,
        )

    def parse_step(self) -> Step:
        token = self.current
        if token.type is TokenType.DOT:
            self.advance()
            return Step("self", NodeTypeTest("node"))
        if token.type is TokenType.DOTDOT:
            self.advance()
            return Step("parent", NodeTypeTest("node"))

        axis = "child"
        if token.type is TokenType.AT:
            self.advance()
            axis = "attribute"
        elif (
            token.type is TokenType.NAME
            and self.tokens[self.index + 1].type is TokenType.AXIS_SEP
        ):
            if token.value not in _AXES:
                raise self.error(f"unknown axis {token.value!r}")
            axis = token.value
            self.advance()
            self.advance()  # '::'

        node_test = self.parse_node_test()
        predicates: list[Expr] = []
        while self.current.type is TokenType.LBRACKET:
            self.advance()
            predicates.append(self.parse_or())
            self.expect(TokenType.RBRACKET)
        return Step(axis, node_test, tuple(predicates))

    def parse_node_test(self):
        token = self.current
        if token.type is not TokenType.NAME:
            raise self.error(f"expected node test, found {token.value!r}")
        name = self.advance().value
        if name in _NODE_TYPES and self.current.type is TokenType.LPAREN:
            self.advance()
            if name == "processing-instruction" and self.current.type is TokenType.LITERAL:
                self.advance()  # target literal, accepted and ignored
            self.expect(TokenType.RPAREN)
            return NodeTypeTest(name)
        return NameTest(name)

    # -- primaries -----------------------------------------------------------#

    def parse_primary(self) -> Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type is TokenType.LITERAL:
            self.advance()
            return StringLiteral(token.value)
        if token.type is TokenType.DOLLAR:
            self.advance()
            name = self.expect(TokenType.NAME)
            return VariableRef(name.value)
        if token.type is TokenType.LPAREN:
            self.advance()
            inner = self.parse_or()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.NAME:
            name = self.advance().value
            self.expect(TokenType.LPAREN)
            args: list[Expr] = []
            if self.current.type is not TokenType.RPAREN:
                args.append(self.parse_or())
                while self.current.type is TokenType.COMMA:
                    self.advance()
                    args.append(self.parse_or())
            self.expect(TokenType.RPAREN)
            return FunctionCall(name, tuple(args))
        raise self.error(f"unexpected token {token.value!r}")


def parse_xpath(expression: str) -> Expr:
    """Parse ``expression`` into an AST.

    Raises:
        XPathSyntaxError: with the failing offset, when the expression
            is not valid XPath 1.0.

    Example:
        >>> ast = parse_xpath("BODY[1]/DIV[2]/text()[1]")
        >>> str(ast)
        'BODY[1]/DIV[2]/text()[1]'
    """
    if not isinstance(expression, str) or not expression.strip():
        raise XPathSyntaxError("empty XPath expression", str(expression))
    return _Parser(expression).parse()
