"""The Figure-1 end-to-end pipeline.

(1) clustering, (2) semantic analysis (rule building), (3) extraction
towards XML — wired together over a :class:`repro.sites.WebSite`.
The clustering step is pluggable: callers may pass precomputed clusters
(e.g. from :mod:`repro.clustering`) or let the pipeline compute them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.builder import BuildReport, MappingRuleBuilder
from repro.core.oracle import Oracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor, ExtractionResult
from repro.extraction.postprocess import PostProcessor
from repro.extraction.schema import generate_xml_schema
from repro.extraction.xml_writer import write_cluster_xml
from repro.sites.page import WebPage
from repro.sites.site import WebSite


@dataclass
class PipelineResult:
    """Everything one pipeline run produced for one cluster."""

    cluster: str
    build_report: BuildReport
    extraction: ExtractionResult
    xml: str
    schema: str
    repository: RuleRepository
    #: The working sample the rules were built from — exposed so
    #: callers can audit which pages validated the rules.
    sample: list[WebPage] = field(default_factory=list)


class ExtractionPipeline:
    """Cluster pages -> mapping rules -> XML document + XML Schema.

    Args:
        oracle: the human-operator stand-in used for rule building.
        sample_size: working-sample size (Section 3.1: about ten).
        seed: sampling/candidate-page RNG seed.
        postprocessor: optional value clean-up applied at extraction.
    """

    def __init__(
        self,
        oracle: Oracle,
        sample_size: int = 10,
        seed: Optional[int] = 0,
        postprocessor: Optional[PostProcessor] = None,
    ) -> None:
        self.oracle = oracle
        self.sample_size = sample_size
        self.seed = seed
        self.postprocessor = postprocessor

    def run_cluster(
        self,
        cluster_name: str,
        pages: Sequence[WebPage],
        component_names: Sequence[str],
        repository: Optional[RuleRepository] = None,
        sample: Optional[Sequence[WebPage]] = None,
    ) -> PipelineResult:
        """Run steps (2) and (3) for one page cluster.

        Args:
            cluster_name: name of the cluster (becomes the XML root).
            pages: all pages of the cluster.
            component_names: the components of interest — the approach
                "allows to address only the pieces of information that
                are of interest to the user" (Section 1).
            repository: reuse an existing repository (rules accumulate).
            sample: explicit working sample; defaults to a seeded random
                sample of ``sample_size`` pages.
        """
        if sample is None:
            sample = self._default_sample(pages)
        repository = repository if repository is not None else RuleRepository()
        builder = MappingRuleBuilder(
            sample,
            self.oracle,
            repository=repository,
            cluster_name=cluster_name,
            seed=self.seed,
        )
        build_report = builder.build_all(component_names)
        processor = ExtractionProcessor(
            repository, cluster_name, postprocessor=self.postprocessor
        )
        extraction = processor.extract(pages)
        xml = write_cluster_xml(extraction, repository)
        schema = generate_xml_schema(repository, cluster_name)
        return PipelineResult(
            cluster=cluster_name,
            build_report=build_report,
            extraction=extraction,
            xml=xml,
            schema=schema,
            repository=repository,
            sample=list(sample),
        )

    def run_site(
        self,
        site: WebSite,
        components_by_cluster: dict[str, Sequence[str]],
        clusters: Optional[dict[str, list[WebPage]]] = None,
    ) -> dict[str, PipelineResult]:
        """Run the full Figure-1 pipeline over a site.

        Args:
            site: the web site.
            components_by_cluster: cluster name -> components of
                interest.  Clusters without an entry are skipped — not
                every cluster interests every user.
            clusters: precomputed clusters (name -> pages); when absent
                the site generator's own hints partition the pages.
        """
        if clusters is None:
            clusters = {}
            for page in site:
                clusters.setdefault(page.cluster_hint or "unlabelled", []).append(page)
        results: dict[str, PipelineResult] = {}
        repository = RuleRepository()
        for cluster_name, component_names in components_by_cluster.items():
            pages = clusters.get(cluster_name, [])
            if not pages:
                continue
            results[cluster_name] = self.run_cluster(
                cluster_name, pages, component_names, repository=repository
            )
        return results

    def _default_sample(self, pages: Sequence[WebPage]) -> list[WebPage]:
        pool = list(pages)
        if len(pool) <= self.sample_size:
            return pool
        return random.Random(self.seed).sample(pool, self.sample_size)
