"""XML Schema generation (Section 4).

"First, it uses the information contained in the rule repository to
generate a data structure in the form of an XML Schema document.  To be
more precise, the name property of a mapping rule becomes the name of an
XML Schema element, while the optionality and multiplicity properties
are transformed into cardinality constraints in the target structure."

The mapping:

=====================  ==========================
Rule property          XSD cardinality
=====================  ==========================
optional               ``minOccurs="0"``
mandatory              ``minOccurs="1"``
single-valued          ``maxOccurs="1"``
multivalued            ``maxOccurs="unbounded"``
=====================  ==========================

Aggregations become intermediate complex types; mixed-format components
become ``mixed="true"`` complex types with ``xs:any`` inline content.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.component import Format, Multiplicity, Optionality
from repro.core.repository import RuleRepository
from repro.core.rule import MappingRule
from repro.extraction.xml_writer import aggregation_plan, page_element_name


def _cardinality(rule: MappingRule) -> str:
    min_occurs = "0" if rule.component.optionality is Optionality.OPTIONAL else "1"
    max_occurs = (
        "unbounded"
        if rule.component.multiplicity is Multiplicity.MULTIVALUED
        else "1"
    )
    return f'minOccurs="{min_occurs}" maxOccurs="{max_occurs}"'


def _leaf_element(rule: MappingRule, pad: str) -> list[str]:
    if rule.component.format is Format.MIXED:
        return [
            f'{pad}<xs:element name="{rule.name}" {_cardinality(rule)}>',
            f'{pad}  <xs:complexType mixed="true">',
            f'{pad}    <xs:sequence>',
            f'{pad}      <xs:any minOccurs="0" maxOccurs="unbounded" '
            'processContents="skip"/>',
            f"{pad}    </xs:sequence>",
            f"{pad}  </xs:complexType>",
            f"{pad}</xs:element>",
        ]
    return [
        f'{pad}<xs:element name="{rule.name}" type="xs:string" '
        f"{_cardinality(rule)}/>"
    ]


def generate_xml_schema(
    repository: RuleRepository,
    cluster: str,
    indent: str = "  ",
) -> str:
    """XSD text for a cluster's recorded rules and aggregations.

    The document validates the output of
    :func:`repro.extraction.xml_writer.write_cluster_xml` for the same
    repository.
    """
    rules = {rule.name: rule for rule in repository.rules(cluster)}
    aggregations = repository.aggregations(cluster)
    plan = aggregation_plan(list(rules), aggregations)
    child = page_element_name(cluster)

    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" '
        'elementFormDefault="qualified">',
        f'{indent}<xs:element name="{cluster}">',
        f"{indent * 2}<xs:complexType>",
        f"{indent * 3}<xs:sequence>",
        f'{indent * 4}<xs:element name="{child}" minOccurs="0" '
        'maxOccurs="unbounded">',
        f"{indent * 5}<xs:complexType>",
        f"{indent * 6}<xs:sequence>",
    ]
    lines.extend(_plan_elements(plan, rules, indent, 7))
    lines.extend(
        [
            f"{indent * 6}</xs:sequence>",
            f'{indent * 6}<xs:attribute name="uri" type="xs:anyURI" '
            'use="required"/>',
            f"{indent * 5}</xs:complexType>",
            f"{indent * 4}</xs:element>",
            f"{indent * 3}</xs:sequence>",
            f"{indent * 2}</xs:complexType>",
            f"{indent}</xs:element>",
            "</xs:schema>",
        ]
    )
    return "\n".join(lines)


def _plan_elements(
    plan: Sequence[tuple[str, Optional[list]]],
    rules: dict[str, MappingRule],
    indent: str,
    depth: int,
) -> list[str]:
    pad = indent * depth
    lines: list[str] = []
    for name, members in plan:
        if members is None:
            rule = rules.get(name)
            if rule is None:
                lines.append(
                    f'{pad}<xs:element name="{name}" type="xs:string" '
                    'minOccurs="0" maxOccurs="1"/>'
                )
            else:
                lines.extend(_leaf_element(rule, pad))
            continue
        # Aggregations are optional containers: they appear only when a
        # member has content on the page.
        lines.append(f'{pad}<xs:element name="{name}" minOccurs="0" maxOccurs="1">')
        lines.append(f"{pad}{indent}<xs:complexType>")
        lines.append(f"{pad}{indent * 2}<xs:sequence>")
        lines.extend(_plan_elements(members, rules, indent, depth + 3))
        lines.append(f"{pad}{indent * 2}</xs:sequence>")
        lines.append(f"{pad}{indent}</xs:complexType>")
        lines.append(f"{pad}</xs:element>")
    return lines
