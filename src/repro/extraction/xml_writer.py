"""The three-level XML document of Figure 5, with optional aggregation.

Default structure::

    <imdb-movies>
      <imdb-movie uri="http://imdb.com/title/tt0095159/">
        <runtime>108 min</runtime>
      </imdb-movie>
      ...
    </imdb-movies>

"If this three-level structure does not fit the user's view of the
data, it can be transformed by iterative aggregation of the component
elements into a richer tree structure" (Section 4) — aggregations
recorded in the repository group leaf elements under intermediate ones
(``users-opinion`` around ``comments`` and ``rating``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.repository import Aggregation, RuleRepository
from repro.dom.serialize import escape_attribute, escape_text
from repro.extraction.extractor import ExtractedPage, ExtractionResult


def page_element_name(cluster: str) -> str:
    """Singular element name for a page: ``imdb-movies`` -> ``imdb-movie``.

    Falls back to ``<cluster>-page`` when no plural ``s`` is present.
    """
    if cluster.endswith("s") and len(cluster) > 1:
        return cluster[:-1]
    return f"{cluster}-page"


def aggregation_plan(
    component_names: Sequence[str],
    aggregations: Sequence[Aggregation],
) -> list[tuple[str, list]]:
    """Top-level order of leaf components and aggregation groups.

    Returns a list of ``(name, members)`` where ``members`` is ``None``
    for a leaf component and a nested plan for an aggregation.  Members
    already claimed by an aggregation disappear from the top level;
    later aggregations may nest earlier ones ("iterative aggregation").
    """
    by_name = {aggregation.name: aggregation for aggregation in aggregations}
    claimed: set[str] = set()
    for aggregation in aggregations:
        claimed.update(aggregation.members)

    def expand(name: str) -> tuple[str, Optional[list]]:
        aggregation = by_name.get(name)
        if aggregation is None:
            return (name, None)
        return (name, [expand(member) for member in aggregation.members])

    plan: list[tuple[str, Optional[list]]] = []
    for name in component_names:
        if name in claimed:
            continue
        plan.append(expand(name))
    for aggregation in aggregations:
        if aggregation.name not in claimed:
            plan.append(expand(aggregation.name))
    return plan


def write_cluster_xml(
    result: ExtractionResult,
    repository: Optional[RuleRepository] = None,
    indent: str = "  ",
    encoding: str = "ISO-8859-1",
    include_markup: bool = False,
) -> str:
    """Serialise an extraction result as the Figure-5 XML document.

    Args:
        result: output of :class:`ExtractionProcessor.extract`.
        repository: when given, its recorded aggregations shape the
            nested structure; otherwise the flat three-level default.
        indent: indentation unit.
        encoding: declared encoding (the paper's example uses
            ISO-8859-1); the returned string itself is a ``str``.
        include_markup: emit mixed values with their inline markup
            instead of text content only.
    """
    aggregations: Sequence[Aggregation] = ()
    component_order: list[str] = []
    if result.pages:
        component_order = list(result.pages[0].values)
    if repository is not None and result.cluster in repository.clusters():
        aggregations = repository.aggregations(result.cluster)
        component_order = repository.component_names(result.cluster)
    plan = aggregation_plan(component_order, aggregations)

    lines: list[str] = [f'<?xml version="1.0" encoding="{encoding}"?>']
    lines.append(f"<{result.cluster}>")
    child = page_element_name(result.cluster)
    for page in result.pages:
        lines.extend(
            render_page_xml(page, plan, child, indent=indent,
                            include_markup=include_markup)
        )
    lines.append(f"</{result.cluster}>")
    return "\n".join(lines)


def cluster_plan(
    repository: RuleRepository, cluster: str
) -> list[tuple[str, Optional[list]]]:
    """The aggregation plan for one repository cluster.

    Public entry for incremental writers (the service XML sink) that
    emit page fragments one at a time instead of a whole
    :class:`ExtractionResult`.
    """
    if cluster in repository.clusters():
        return aggregation_plan(
            repository.component_names(cluster), repository.aggregations(cluster)
        )
    return []


def render_page_xml(
    page,
    plan: Sequence[tuple[str, Optional[list]]],
    child: str,
    indent: str = "  ",
    include_markup: bool = False,
) -> list[str]:
    """Serialise one page as Figure-5 XML lines (element + values).

    ``page`` may be any object with ``url``, ``get(name) -> list[str]``
    and a ``raw_values`` mapping — both :class:`ExtractedPage` and the
    service layer's ``PageRecord`` qualify.
    """
    lines = [f'{indent}<{child} uri="{escape_attribute(page.url)}">']
    _write_plan(lines, plan, page, indent, 2, include_markup)
    lines.append(f"{indent}</{child}>")
    return lines


def _write_plan(
    lines: list[str],
    plan: Sequence[tuple[str, Optional[list]]],
    page: ExtractedPage,
    indent: str,
    depth: int,
    include_markup: bool,
) -> None:
    pad = indent * depth
    for name, members in plan:
        if members is None:
            values = page.get(name)
            raw = page.raw_values.get(name, [])
            for index, value in enumerate(values):
                if include_markup and index < len(raw):
                    content = raw[index].as_xml()
                else:
                    content = escape_text(value)
                lines.append(f"{pad}<{name}>{content}</{name}>")
            continue
        # Aggregation: emit the group element only when any member has
        # content on this page.
        if not _plan_has_content(members, page):
            continue
        lines.append(f"{pad}<{name}>")
        _write_plan(lines, members, page, indent, depth + 1, include_markup)
        lines.append(f"{pad}</{name}>")


def _plan_has_content(
    plan: Sequence[tuple[str, Optional[list]]], page: ExtractedPage
) -> bool:
    for name, members in plan:
        if members is None:
            if page.get(name):
                return True
        elif _plan_has_content(members, page):
            return True
    return False
