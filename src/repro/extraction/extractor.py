"""Rule interpretation over cluster pages.

The extraction processor "relies on the mapping rules stored in the rule
repository to extract the targeted data from the HTML pages of the
corresponding cluster" (Section 4).  It also performs the semi-automatic
failure detection sketched in Section 7: "a failure in a rule could be
automatically detected when a mandatory component cannot be found in one
page or when the extraction of a single-valued text component returns
more than one node."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ExtractionError
from repro.core.component import Multiplicity, Optionality
from repro.core.repository import RuleRepository
from repro.core.rule import ComponentValue, MappingRule
from repro.extraction.postprocess import PostProcessor
from repro.sites.page import WebPage


@dataclass(frozen=True)
class ExtractionFailure:
    """A detected rule failure on one page (Section 7)."""

    page_url: str
    component_name: str
    reason: str  # "mandatory-missing" | "single-valued-multiple"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.component_name} on {self.page_url}: {self.reason}"


def classify_failure(rule: MappingRule, value_count: int) -> Optional[str]:
    """The Section-7 failure test for one rule application.

    Shared by the interactive :class:`ExtractionProcessor` and the
    compiled-wrapper service path so both report identical failures.
    """
    if value_count == 0 and rule.component.optionality is Optionality.MANDATORY:
        return "mandatory-missing"
    if (
        value_count > 1
        and rule.component.multiplicity is Multiplicity.SINGLE_VALUED
    ):
        return "single-valued-multiple"
    return None


@dataclass
class ExtractedPage:
    """All component values extracted from one page."""

    url: str
    values: dict[str, list[str]] = field(default_factory=dict)
    raw_values: dict[str, list[ComponentValue]] = field(default_factory=dict)

    def get(self, component_name: str) -> list[str]:
        return self.values.get(component_name, [])

    def first(self, component_name: str) -> Optional[str]:
        values = self.get(component_name)
        return values[0] if values else None


@dataclass
class ExtractionResult:
    """Extraction output for a whole cluster."""

    cluster: str
    pages: list[ExtractedPage] = field(default_factory=list)
    failures: list[ExtractionFailure] = field(default_factory=list)

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def values_of(self, component_name: str) -> list[str]:
        """All values of a component across pages, in page order."""
        collected: list[str] = []
        for page in self.pages:
            collected.extend(page.get(component_name))
        return collected

    def failure_pages(self) -> set[str]:
        return {failure.page_url for failure in self.failures}


class ExtractionProcessor:
    """Applies a cluster's recorded rules to pages.

    Args:
        repository: the rule repository (Section 3.5).
        cluster: which cluster's rules to interpret.
        postprocessor: optional value clean-up chains.

    Raises:
        ExtractionError: when the cluster has no recorded rules.
    """

    def __init__(
        self,
        repository: RuleRepository,
        cluster: str,
        postprocessor: Optional[PostProcessor] = None,
    ) -> None:
        rules = repository.rules(cluster) if cluster in repository.clusters() else []
        if not rules:
            raise ExtractionError(f"no rules recorded for cluster {cluster!r}")
        self.repository = repository
        self.cluster = cluster
        self.rules: list[MappingRule] = rules
        self.postprocessor = postprocessor

    # ------------------------------------------------------------------ #

    def extract_page(
        self, page: WebPage, failures: Optional[list[ExtractionFailure]] = None
    ) -> ExtractedPage:
        """Apply every rule of the cluster to one page."""
        extracted = ExtractedPage(url=page.url)
        for rule in self.rules:
            match = rule.apply(page.root_element)
            self._detect_failures(page, rule, len(match.values), failures)
            texts = [value.text for value in match.values]
            if self.postprocessor is not None:
                texts = self.postprocessor.apply_all(rule.name, texts)
            extracted.values[rule.name] = texts
            extracted.raw_values[rule.name] = list(match.values)
        return extracted

    def extract(self, pages: Iterable[WebPage]) -> ExtractionResult:
        """Apply the cluster's rules to every page."""
        result = ExtractionResult(cluster=self.cluster)
        for page in pages:
            result.pages.append(self.extract_page(page, result.failures))
        return result

    # ------------------------------------------------------------------ #

    def _detect_failures(
        self,
        page: WebPage,
        rule: MappingRule,
        value_count: int,
        failures: Optional[list[ExtractionFailure]],
    ) -> None:
        if failures is None:
            return
        reason = classify_failure(rule, value_count)
        if reason is not None:
            failures.append(ExtractionFailure(page.url, rule.name, reason))
