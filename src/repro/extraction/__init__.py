"""The extraction processor (Section 4 of the paper).

"The output of the analysis process can be understood as a primitive
three-level XML structure made of a root element representing the page
cluster, a second level element for each page of the cluster and a leaf
element for each page component."

* :mod:`repro.extraction.extractor` — interprets the rule repository
  over a cluster's pages, with the Section-7 failure detection (a
  mandatory component matching nothing, a single-valued component
  matching several nodes);
* :mod:`repro.extraction.xml_writer` — the three-level XML document
  (Figure 5), including a-posteriori aggregation into nested structures
  ("users-opinion");
* :mod:`repro.extraction.schema` — the XML Schema document whose
  cardinality constraints come from optionality/multiplicity;
* :mod:`repro.extraction.postprocess` — value clean-up ("the 'min'
  suffix will have to be removed in order to get the proper data",
  Section 3.3; regular-expression selection within a text node is the
  Section-7 extension);
* :mod:`repro.extraction.pipeline` — the Figure-1 end-to-end run:
  cluster -> rules -> XML.
"""

from repro.extraction.extractor import (
    ExtractionFailure,
    ExtractionProcessor,
    ExtractionResult,
    ExtractedPage,
)
from repro.extraction.postprocess import (
    PostProcessor,
    regex_extractor,
    strip_prefix,
    strip_suffix,
)
from repro.extraction.schema import generate_xml_schema
from repro.extraction.xml_writer import write_cluster_xml
from repro.extraction.pipeline import ExtractionPipeline, PipelineResult

__all__ = [
    "ExtractionProcessor",
    "ExtractionResult",
    "ExtractedPage",
    "ExtractionFailure",
    "write_cluster_xml",
    "generate_xml_schema",
    "PostProcessor",
    "strip_suffix",
    "strip_prefix",
    "regex_extractor",
    "ExtractionPipeline",
    "PipelineResult",
]
