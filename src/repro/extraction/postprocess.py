"""Value post-processing.

"XPath expressions always select full nodes.  That feature does not
allow a part only of a text node to be extracted.  Consequently, the
extracted data will sometimes require post processing in order to
remove their noisy parts" (Section 2.3).  Section 7 proposes "using
regular expressions ... to finely select the component values within a
text node"; this module implements that extension.

A :class:`PostProcessor` maps component names to value-transform
functions and is applied by the extraction processor after rule
application, so mapping rules stay purely locational.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

ValueTransform = Callable[[str], str]


def strip_suffix(suffix: str) -> ValueTransform:
    """Remove a literal suffix: ``strip_suffix(" min")("108 min") == "108"``."""

    def transform(value: str) -> str:
        if value.endswith(suffix):
            return value[: -len(suffix)].rstrip()
        return value

    return transform


def strip_prefix(prefix: str) -> ValueTransform:
    """Remove a literal prefix from the value."""

    def transform(value: str) -> str:
        if value.startswith(prefix):
            return value[len(prefix) :].lstrip()
        return value

    return transform


def regex_extractor(pattern: str, group: int = 1) -> ValueTransform:
    """Keep only the ``group``-th capture of ``pattern``.

    The Section-7 extension: "Using regular expressions would allow to
    finely select the component values within a text node".  When the
    pattern does not match, the value passes through unchanged (rules
    should degrade gracefully on unexpected pages).

    Example:
        >>> regex_extractor(r"(\\d+) min")("108 min")
        '108'
    """
    compiled = re.compile(pattern)

    def transform(value: str) -> str:
        match = compiled.search(value)
        if match is None:
            return value
        return match.group(group)

    return transform


def split_list(separator: str = ",") -> Callable[[str], list[str]]:
    """Split "a comma-separated list of values of a multivalued
    component" (Section 7) into individual values."""

    def transform(value: str) -> list[str]:
        return [part.strip() for part in value.split(separator) if part.strip()]

    return transform


class PostProcessor:
    """Per-component value transforms applied after extraction.

    Example:
        >>> post = PostProcessor()
        >>> post.register("runtime", regex_extractor(r"(\\d+) min"))
        >>> post.apply("runtime", "108 min")
        '108'
        >>> post.apply("country", "USA")  # unregistered: unchanged
        'USA'
    """

    def __init__(self) -> None:
        self._transforms: dict[str, list[ValueTransform]] = {}
        self._splitters: dict[str, Callable[[str], list[str]]] = {}

    def register(self, component_name: str, transform: ValueTransform) -> None:
        """Append a transform to the component's chain."""
        self._transforms.setdefault(component_name, []).append(transform)

    def register_splitter(
        self, component_name: str, splitter: Callable[[str], list[str]]
    ) -> None:
        """Register a one-value-to-many splitter (comma-separated lists)."""
        self._splitters[component_name] = splitter

    def apply(self, component_name: str, value: str) -> str:
        """Run the component's transform chain over ``value``."""
        for transform in self._transforms.get(component_name, []):
            value = transform(value)
        return value

    def apply_all(self, component_name: str, values: list[str]) -> list[str]:
        """Transform every value, then expand registered splitters.

        Delegates to :meth:`resolve` so the sequential path and the
        compiled-wrapper service path share one chain implementation
        (byte-identity between them depends on it).
        """
        chain = self.resolve(component_name)
        if chain is None:
            return list(values)
        return chain(values)

    def resolve(
        self, component_name: str
    ) -> Optional[Callable[[list[str]], list[str]]]:
        """Bind the component's chain into one reusable callable.

        Returns ``None`` when the component has neither transforms nor
        a splitter, so hot paths (the compiled wrappers of
        :mod:`repro.service.compiler`) can skip the per-value dict
        lookups of :meth:`apply_all` entirely.  The returned chain is
        behaviourally identical to ``apply_all(component_name, ...)``
        at resolve time; transforms registered later are not seen.
        """
        transforms = tuple(self._transforms.get(component_name, ()))
        splitter = self._splitters.get(component_name)
        if not transforms and splitter is None:
            return None

        def chain(values: list[str]) -> list[str]:
            transformed = list(values)
            for transform in transforms:
                transformed = [transform(value) for value in transformed]
            if splitter is None:
                return transformed
            expanded: list[str] = []
            for value in transformed:
                expanded.extend(splitter(value))
            return expanded

        return chain

    def components(self) -> list[str]:
        names = set(self._transforms) | set(self._splitters)
        return sorted(names)
