"""Per-page features used by the clustering heuristics.

Each feature corresponds to a technique the paper cites (Section 2.1):
"simple analysis of URLs [7], [20] ... tags periodicity [7], keywords
frequency [22]".
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass
from urllib.parse import urlparse

from repro.dom.traversal import iter_text_nodes, tag_path_profile, tag_sequence
from repro.sites.page import WebPage

_NUMBER_RE = re.compile(r"\d+")
_WORD_RE = re.compile(r"[a-zA-Z][a-zA-Z'-]+")

#: High-frequency words carrying no concept signal.
_STOPWORDS = frozenset(
    """a an and are as at be but by for from has have in is it its of on or
    that the this to was were will with all after more one two new"""
    .split()
)


def url_signature(url: str) -> str:
    """A URL pattern with volatile parts masked.

    ``http://imdb.example.org/title/tt1000004/`` and
    ``.../title/tt1000017/`` share the signature
    ``imdb.example.org/title/*/`` — the URL-analysis heuristic of
    [7]/[20]: pages produced by the same server template share a URL
    shape.

    >>> url_signature("http://x.org/title/tt123/")
    'x.org/title/*/'
    """
    parsed = urlparse(url)
    segments = [s for s in parsed.path.split("/")]
    masked: list[str] = []
    for segment in segments:
        if not segment:
            masked.append("")
            continue
        if _NUMBER_RE.search(segment):
            masked.append("*")
        else:
            masked.append(segment)
    path = "/".join(masked)
    query = "?*" if parsed.query else ""
    return f"{parsed.netloc}{path}{query}"


def keyword_profile(page: WebPage, limit: int = 30) -> Counter:
    """Frequency counter of the page's most telling words.

    The "keywords frequency" heuristic [22]: pages featuring instances
    of the same concept share template vocabulary (the constant labels
    — "Runtime:", "Directed by:" — dominate, because data values vary
    across pages while labels repeat across the cluster).
    """
    counter: Counter = Counter()
    for text in iter_text_nodes(page.root_element, skip_whitespace=True):
        for word in _WORD_RE.findall(text.data.lower()):
            if word not in _STOPWORDS and len(word) > 2:
                counter[word] += 1
    if limit and len(counter) > limit:
        return Counter(dict(counter.most_common(limit)))
    return counter


def tag_profile(page: WebPage) -> Counter:
    """Tag-frequency counter (coarse layout fingerprint)."""
    return Counter(tag_sequence(page.root_element))


def path_profile(page: WebPage) -> Counter:
    """Root-to-element tag-path multiset (fine layout fingerprint).

    Two pages rendered from the same template share most of their tag
    paths even when optional blocks differ — this is the "close HTML
    structure" membership criterion.
    """
    return Counter(tag_path_profile(page.root_element))


def page_tag_sequence(page: WebPage) -> list[str]:
    """The DFS tag sequence (input to periodicity/sequence similarity)."""
    return tag_sequence(page.root_element)


@dataclass(frozen=True)
class PageSignature:
    """All clustering features of one page, bundled.

    The three membership signals of Section 2.1 (URL shape, concept
    keywords, HTML structure) travel as one value for consumers that
    need them together — notably the service router
    (:mod:`repro.service.router`).  Each profile still runs its own
    DOM traversal; fusing them into a literal single walk is a
    follow-up optimisation.
    """

    url_signature: str
    keywords: Counter
    paths: Counter


def page_signature(page: WebPage, keyword_limit: int = 30) -> PageSignature:
    """Compute the page's full clustering signature."""
    return PageSignature(
        url_signature=url_signature(page.url),
        keywords=keyword_profile(page, limit=keyword_limit),
        paths=path_profile(page),
    )
