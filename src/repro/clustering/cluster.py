"""The page clusterer: combining the paper's heuristics.

Section 2.1's membership test — "two pages belong to the same page
cluster if they share the following intuitive features: they come from
the same Web site (domain); they display instances of the same concept;
they have a close HTML structure" — is applied pairwise, and clusters
are the connected components of the resulting similarity graph (via
networkx when available, with a small built-in union-find fallback).

A cheap URL-signature pre-grouping keeps the pairwise comparisons
within plausible groups, the way "several techniques are used in
parallel or sequentially in order to improve the accuracy".
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional
from urllib.parse import urlparse

from repro.errors import ClusteringError
from repro.clustering.features import (
    keyword_profile,
    page_tag_sequence,
    path_profile,
    url_signature,
)
from repro.clustering.similarity import (
    cosine_similarity,
    structure_similarity,
    tag_sequence_similarity,
)
from repro.sites.page import WebPage


@dataclass
class PageCluster:
    """One computed cluster, named after its dominant URL signature.

    "Each cluster is given a meaningful name that represents the main
    concept featured in its pages" — absent human input, the URL
    signature is the best automatic stand-in and callers may rename.
    """

    name: str
    pages: list[WebPage] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pages)

    def urls(self) -> list[str]:
        return [page.url for page in self.pages]


@dataclass
class ClusteringResult:
    clusters: list[PageCluster]

    def cluster_of(self, page: WebPage) -> Optional[PageCluster]:
        for cluster in self.clusters:
            if page in cluster.pages:
                return cluster
        return None

    def sizes(self) -> list[int]:
        return sorted((len(c) for c in self.clusters), reverse=True)

    # -- external evaluation against generator hints -------------------- #

    def purity(self) -> float:
        """Mean fraction of each cluster owned by its majority hint."""
        total = 0
        correct = 0
        for cluster in self.clusters:
            hints = Counter(page.cluster_hint for page in cluster.pages)
            correct += hints.most_common(1)[0][1]
            total += len(cluster)
        if total == 0:
            return 1.0
        return correct / total

    def recall(self) -> float:
        """Fraction of same-hint page pairs landing in the same cluster."""
        by_hint: dict[str, list[WebPage]] = defaultdict(list)
        cluster_index: dict[str, int] = {}
        for index, cluster in enumerate(self.clusters):
            for page in cluster.pages:
                cluster_index[page.url] = index
                by_hint[page.cluster_hint].append(page)
        same = total = 0
        for pages in by_hint.values():
            for i in range(len(pages)):
                for j in range(i + 1, len(pages)):
                    total += 1
                    if cluster_index[pages[i].url] == cluster_index[pages[j].url]:
                        same += 1
        if total == 0:
            return 1.0
        return same / total


class PageClusterer:
    """Heuristic page clusterer.

    Args:
        structure_threshold: minimum tag-path similarity for "close
            HTML structure".
        keyword_threshold: minimum keyword cosine for "same concept".
        sequence_threshold: minimum tag-sequence LCS similarity; applied
            as a tie-breaker when structure similarity is borderline.
        use_url_grouping: pre-group by URL signature before pairwise
            comparison (fast path; disable to test pure content-based
            clustering).
    """

    def __init__(
        self,
        structure_threshold: float = 0.6,
        keyword_threshold: float = 0.3,
        sequence_threshold: float = 0.7,
        use_url_grouping: bool = True,
    ) -> None:
        self.structure_threshold = structure_threshold
        self.keyword_threshold = keyword_threshold
        self.sequence_threshold = sequence_threshold
        self.use_url_grouping = use_url_grouping

    # ------------------------------------------------------------------ #

    def cluster(self, pages: Iterable[WebPage]) -> ClusteringResult:
        """Partition ``pages`` into page clusters.

        Raises:
            ClusteringError: when no pages are given.
        """
        pages = list(pages)
        if not pages:
            raise ClusteringError("no pages to cluster")

        groups = self._pre_group(pages)
        clusters: list[PageCluster] = []
        for group in groups:
            clusters.extend(self._cluster_group(group))
        clusters.sort(key=len, reverse=True)
        return ClusteringResult(clusters=clusters)

    # ------------------------------------------------------------------ #

    def _pre_group(self, pages: list[WebPage]) -> list[list[WebPage]]:
        if not self.use_url_grouping:
            # Still split by domain: the paper's first membership test.
            by_domain: dict[str, list[WebPage]] = defaultdict(list)
            for page in pages:
                by_domain[urlparse(page.url).netloc].append(page)
            return list(by_domain.values())
        by_signature: dict[str, list[WebPage]] = defaultdict(list)
        for page in pages:
            by_signature[url_signature(page.url)].append(page)
        return list(by_signature.values())

    def _cluster_group(self, pages: list[WebPage]) -> list[PageCluster]:
        if len(pages) == 1:
            return [self._make_cluster(pages)]
        profiles = [path_profile(page) for page in pages]
        keywords = [keyword_profile(page) for page in pages]
        sequences = [page_tag_sequence(page) for page in pages]

        edges: list[tuple[int, int]] = []
        for i in range(len(pages)):
            for j in range(i + 1, len(pages)):
                if self._similar(
                    profiles[i], profiles[j],
                    keywords[i], keywords[j],
                    sequences[i], sequences[j],
                ):
                    edges.append((i, j))
        components = _connected_components(len(pages), edges)
        return [
            self._make_cluster([pages[index] for index in sorted(component)])
            for component in components
        ]

    def _similar(self, paths_a, paths_b, kw_a, kw_b, seq_a, seq_b) -> bool:
        structure = structure_similarity(paths_a, paths_b)
        if structure < self.structure_threshold * 0.5:
            return False
        concept = cosine_similarity(kw_a, kw_b)
        if concept < self.keyword_threshold:
            return False
        if structure >= self.structure_threshold:
            return True
        # Borderline structure: let sequence similarity arbitrate.
        return tag_sequence_similarity(seq_a, seq_b) >= self.sequence_threshold

    def _make_cluster(self, pages: list[WebPage]) -> PageCluster:
        signature = url_signature(pages[0].url)
        return PageCluster(name=signature, pages=pages)


def _connected_components(
    n: int, edges: list[tuple[int, int]]
) -> list[set[int]]:
    """Connected components; uses networkx when importable."""
    try:
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        return [set(component) for component in nx.connected_components(graph)]
    except ImportError:  # pragma: no cover - networkx present in CI env
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        components: dict[int, set[int]] = defaultdict(set)
        for index in range(n):
            components[find(index)].add(index)
        return list(components.values())
