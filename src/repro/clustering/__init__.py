"""Page clustering (Section 2.1 / step 1 of Figure 1).

"The pages composing a Web site are partitioned into page clusters,
according to their semantic content and their layout."  The paper
deliberately treats clustering as a substrate ("being a field of
research by itself") and relies on heuristics; this package implements
the heuristics it cites:

* URL-pattern analysis [7][20] — :func:`repro.clustering.features.url_signature`;
* tag periodicity / structure similarity [7][20] —
  :mod:`repro.clustering.similarity`;
* keyword frequency [22] — :func:`repro.clustering.features.keyword_profile`;

combined by :class:`repro.clustering.cluster.PageClusterer`, which
applies the paper's membership test: same domain, same concept
(keyword similarity), close HTML structure.
"""

from repro.clustering.cluster import ClusteringResult, PageCluster, PageClusterer
from repro.clustering.features import (
    keyword_profile,
    url_signature,
)
from repro.clustering.similarity import (
    cosine_similarity,
    jaccard_similarity,
    structure_similarity,
    tag_sequence_similarity,
)

__all__ = [
    "PageClusterer",
    "PageCluster",
    "ClusteringResult",
    "url_signature",
    "keyword_profile",
    "structure_similarity",
    "tag_sequence_similarity",
    "cosine_similarity",
    "jaccard_similarity",
]
