"""Similarity measures between page fingerprints.

Small, dependency-free implementations; :mod:`repro.clustering.cluster`
combines them into the paper's membership test.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence


def cosine_similarity(a: Counter, b: Counter) -> float:
    """Cosine of two frequency vectors (0.0 when either is empty)."""
    if not a or not b:
        return 0.0
    dot = sum(count * b.get(key, 0) for key, count in a.items())
    norm_a = math.sqrt(sum(count * count for count in a.values()))
    norm_b = math.sqrt(sum(count * count for count in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


def jaccard_similarity(a: Counter, b: Counter) -> float:
    """Multiset Jaccard: |a ∩ b| / |a ∪ b| over counted elements."""
    if not a and not b:
        return 1.0
    keys = set(a) | set(b)
    intersection = sum(min(a.get(k, 0), b.get(k, 0)) for k in keys)
    union = sum(max(a.get(k, 0), b.get(k, 0)) for k in keys)
    if union == 0:
        return 1.0
    return intersection / union


def tag_sequence_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Normalised longest-common-subsequence similarity of tag sequences.

    ``2 * LCS(a, b) / (len(a) + len(b))`` — 1.0 for identical layouts,
    tolerant of optional blocks (which delete a contiguous run of tags).
    To bound cost on big pages the sequences are downsampled to at most
    400 events before the quadratic LCS.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    a, b = _downsample(a, 400), _downsample(b, 400)
    previous = [0] * (len(b) + 1)
    for tag_a in a:
        current = [0]
        for j, tag_b in enumerate(b, start=1):
            if tag_a == tag_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[-1]))
        previous = current
    lcs = previous[-1]
    return 2.0 * lcs / (len(a) + len(b))


def _downsample(sequence: Sequence[str], limit: int) -> Sequence[str]:
    if len(sequence) <= limit:
        return sequence
    step = len(sequence) / limit
    return [sequence[int(i * step)] for i in range(limit)]


def structure_similarity(paths_a: Counter, paths_b: Counter) -> float:
    """Similarity of root-to-element tag-path multisets (Jaccard).

    The primary "close HTML structure" measure: robust to text changes,
    sensitive to layout changes.
    """
    return jaccard_similarity(paths_a, paths_b)
