"""The human operator abstraction.

The approach is *semi-automated*: "mapping rules are based on both user
intervention and automatic computing" (Table 4).  The user contributes
two inputs (Section 3.2):

* **selection** — pointing at a component value in a rendered page;
* **interpretation** — naming the component.

and one judgement: visually inspecting the check table (Section 3.3).

:class:`Oracle` captures exactly that interface.  Two implementations:

* :class:`ScriptedOracle` answers from the synthetic pages' ground
  truth — this is what benchmarks and tests use, replacing the human
  with a reproducible stand-in;
* :class:`InteractiveOracle` asks a real human on the console — the
  offline equivalent of the Retrozilla control panel.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from repro.dom.node import Element, Node
from repro.dom.traversal import iter_elements, iter_text_nodes
from repro.errors import OracleError
from repro.core.rule import normalize_value
from repro.sites.page import WebPage


@dataclass(frozen=True)
class Selection:
    """A user selection: the DOM nodes of one component value instance.

    ``nodes`` holds one node per *instance* — a single text node for an
    ordinary value, a single element for a mixed value, several nodes
    when the user highlights a multivalued component's instances.
    """

    page: WebPage
    nodes: tuple[Node, ...]

    @property
    def first(self) -> Node:
        return self.nodes[0]

    @property
    def last(self) -> Node:
        return self.nodes[-1]

    @property
    def is_multiple(self) -> bool:
        return len(self.nodes) > 1


class Oracle(ABC):
    """What the library needs from the human operator."""

    @abstractmethod
    def select_value(self, page: WebPage, component_name: str) -> Optional[Selection]:
        """Point at the component's value(s) in ``page``.

        Returns ``None`` when the component has no value on this page
        (the selection step then has to be retried on another page).
        """

    @abstractmethod
    def expected_texts(self, page: WebPage, component_name: str) -> Optional[list[str]]:
        """The values the component *should* yield on ``page``.

        ``[]`` means "component absent here"; ``None`` means the oracle
        cannot tell (an interactive user judges rows instead).
        """

    def judge(self, page: WebPage, component_name: str, matched: list[str]) -> bool:
        """Is the matched value list correct for this page?

        Default implementation compares against :meth:`expected_texts`
        after whitespace normalisation.
        """
        expected = self.expected_texts(page, component_name)
        if expected is None:
            raise OracleError(
                f"oracle cannot judge {component_name!r} on {page.url}"
            )
        return [normalize_value(v) for v in matched] == [
            normalize_value(v) for v in expected
        ]


class ScriptedOracle(Oracle):
    """Answers selection/judgement queries from page ground truth.

    Selection works like a user's click: for each expected value the
    oracle finds the *smallest* DOM node whose normalised content equals
    the value — a text node when the value is pure text, an element when
    it spans markup (which the candidate-rule builder then records as a
    ``mixed`` component, cf. Section 3.2).
    """

    def select_value(self, page: WebPage, component_name: str) -> Optional[Selection]:
        expected = page.expected_values(component_name)
        if not expected:
            return None
        nodes: list[Node] = []
        for value in expected:
            node = self._locate(page, value)
            if node is None:
                raise OracleError(
                    f"ground truth value {value!r} for {component_name!r} "
                    f"not found in {page.url}"
                )
            nodes.append(node)
        return Selection(page=page, nodes=tuple(nodes))

    def expected_texts(self, page: WebPage, component_name: str) -> Optional[list[str]]:
        values = page.expected_values(component_name)
        if values is None:
            return None
        return [normalize_value(v) for v in values]

    def _locate(self, page: WebPage, value: str) -> Optional[Node]:
        wanted = normalize_value(value)
        # Selection mimics a click in the rendered page: BODY only.
        root = page.root_element.find_first("BODY") or page.root_element
        for text in iter_text_nodes(root, skip_whitespace=True):
            if normalize_value(text.data) == wanted:
                return text
        # The value spans several text nodes: find the smallest element
        # whose whole content is the value.
        best: Optional[Element] = None
        best_size = float("inf")
        for element in iter_elements(root):
            if normalize_value(element.text_content()) == wanted:
                size = sum(1 for _ in element.self_and_descendants())
                if size < best_size:
                    best, best_size = element, size
        return best


class InteractiveOracle(Oracle):
    """Console-driven oracle: the offline Retrozilla control panel.

    Selection is by value text: the user is shown the page URL and types
    the exact visible string of the component value (or presses Enter if
    the component is absent).  Judgement shows the matched values and
    asks y/n — the "visual inspection in a tabular view" of Section 3.3.

    Args:
        input_fn / print_fn: injectable I/O for testing.
    """

    def __init__(
        self,
        input_fn: Optional[Callable[[str], str]] = None,
        print_fn: Optional[Callable[[str], None]] = None,
    ) -> None:
        # Bind lazily so test harnesses that replace builtins.input after
        # import still take effect.
        self._input = input_fn if input_fn is not None else (lambda p: input(p))
        self._print = print_fn if print_fn is not None else print

    def select_value(self, page: WebPage, component_name: str) -> Optional[Selection]:
        self._print(f"-- select value of {component_name!r} in {page.url}")
        answer = self._input("visible value text (empty if absent): ").strip()
        if not answer:
            return None
        wanted = normalize_value(answer)
        scope = page.root_element.find_first("BODY") or page.root_element
        for text in iter_text_nodes(scope, skip_whitespace=True):
            if wanted in normalize_value(text.data):
                return Selection(page=page, nodes=(text,))
        self._print(f"!! text {answer!r} not found in page")
        return None

    def expected_texts(self, page: WebPage, component_name: str) -> Optional[list[str]]:
        return None  # interactive users judge rows instead

    def judge(self, page: WebPage, component_name: str, matched: list[str]) -> bool:
        self._print(f"-- {page.url}: {component_name!r} matched {matched!r}")
        answer = self._input("correct? [y/n] ").strip().lower()
        return answer.startswith("y")
