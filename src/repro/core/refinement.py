"""Rule refinement: turning a too-specific candidate into a valid rule.

Section 3.4: "Generated from one positive example, a candidate rule is
frequently too specific to locate the expected component values in all
the pages of the working sample. ... we enter an iterative process
during which the candidate rule is refined, each negative example being
handled one at a time."

The engine implements the paper's strategies and applies them according
to the outcome class of the failing row:

===================  ====================================================
Outcome              Strategy order
===================  ====================================================
WRONG_VALUE / VOID   1. contextual information (constant anchor string),
                     2. alternative path from the failing page
UNEXPECTED_PRESENT   optionality := optional, then contextual rewrite so
                     the anchor predicate rejects the intruding value
VOID_ABSENT          optionality := optional
INCOMPLETE           format := mixed, location re-targeted to the value's
                     enclosing element
NEEDS_MULTIVALUED    multiplicity := multivalued; repetitive tag deduced
                     from first/last instance XPaths; position predicate
                     broadened
===================  ====================================================

Every attempt is recorded in a :class:`RefinementTrace`, which examples,
tests and the Figure-3/Figure-4 benchmarks introspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import Element, Node
from repro.errors import RuleError
from repro.core.checking import (
    CheckOutcome,
    CheckReport,
    CheckRow,
    check_rule,
)
from repro.core.oracle import Oracle, Selection
from repro.core.rule import MappingRule
from repro.core.xpath_builder import (
    broaden_multiplicity,
    build_contextual_xpath,
    build_precise_xpath,
    deduce_repetitive_tag,
    nearest_following_label,
    nearest_preceding_label,
)
from repro.sites.page import WebPage


@dataclass(frozen=True)
class RefinementStep:
    """One applied strategy: what changed and why."""

    strategy: str
    page_url: str
    outcome: CheckOutcome
    before: MappingRule
    after: MappingRule

    def describe(self) -> str:
        return (
            f"[{self.strategy}] on {self.page_url} ({self.outcome.value}): "
            f"{self.before.primary_location} -> {self.after.locations}"
        )


@dataclass
class RefinementTrace:
    """The audit log of one refinement run."""

    steps: list[RefinementStep] = field(default_factory=list)
    iterations: int = 0

    def record(self, step: RefinementStep) -> None:
        self.steps.append(step)

    @property
    def strategies_used(self) -> list[str]:
        return [step.strategy for step in self.steps]


class RefinementEngine:
    """Iteratively refines a candidate rule against a working sample.

    Args:
        oracle: supplies selections in failing pages and judgements.
        max_iterations: safety bound on the refine/check loop; the loop
            otherwise runs until the check table is clean (Figure 3).
        prefer_contextual: try the contextual-information strategy
            before falling back to alternative paths (the ablation
            benchmark flips this).
    """

    def __init__(
        self,
        oracle: Oracle,
        max_iterations: int = 25,
        prefer_contextual: bool = True,
        enable_contextual: bool = True,
    ) -> None:
        self.oracle = oracle
        self.max_iterations = max_iterations
        self.prefer_contextual = prefer_contextual
        self.enable_contextual = enable_contextual

    # ------------------------------------------------------------------ #
    # Main loop (Figure 3's inner cycle)
    # ------------------------------------------------------------------ #

    def refine(
        self,
        candidate: MappingRule,
        sample: Sequence[WebPage],
    ) -> tuple[MappingRule, CheckReport, RefinementTrace]:
        """Refine ``candidate`` until it checks clean on ``sample``.

        Returns the final rule, its final check report, and the trace.
        The final report may still contain problems when no strategy
        applies within ``max_iterations`` — callers inspect
        ``report.is_valid`` (rule recording only happens on success).
        """
        trace = RefinementTrace()
        rule = candidate
        report = check_rule(rule, sample, self.oracle)
        while not report.is_valid and trace.iterations < self.max_iterations:
            trace.iterations += 1
            problem = report.first_problem()
            assert problem is not None
            refined = self._apply_strategy(rule, problem, sample, trace)
            if refined is None or refined == rule:
                break  # no applicable strategy: give up, report problems
            rule = refined
            report = check_rule(rule, sample, self.oracle)
        return rule, report, trace

    # ------------------------------------------------------------------ #
    # Strategy dispatch
    # ------------------------------------------------------------------ #

    def _apply_strategy(
        self,
        rule: MappingRule,
        problem: CheckRow,
        sample: Sequence[WebPage],
        trace: RefinementTrace,
    ) -> Optional[MappingRule]:
        outcome = problem.outcome
        if outcome is CheckOutcome.VOID and problem.expected == ():
            return self._record(
                trace, "optionality", rule,
                rule.with_component(rule.component.as_optional()), problem,
            )
        if outcome is CheckOutcome.NEEDS_MULTIVALUED:
            return self._refine_multivalued(rule, problem, trace)
        if outcome is CheckOutcome.INCOMPLETE:
            return self._refine_mixed(rule, problem, trace)
        if outcome is CheckOutcome.UNEXPECTED_PRESENT:
            refined = rule.with_component(rule.component.as_optional())
            contextual = self._refine_contextual(refined, problem, sample, trace)
            if contextual is not None:
                return contextual
            return self._record(trace, "optionality", rule, refined, problem)
        if outcome in (CheckOutcome.WRONG_VALUE, CheckOutcome.VOID):
            if self.prefer_contextual:
                refined = self._refine_contextual(rule, problem, sample, trace)
                if refined is not None:
                    return refined
                return self._refine_alternative(rule, problem, trace)
            refined = self._refine_alternative(rule, problem, trace)
            if refined is not None:
                return refined
            return self._refine_contextual(rule, problem, sample, trace)
        return None

    def _record(
        self,
        trace: RefinementTrace,
        strategy: str,
        before: MappingRule,
        after: MappingRule,
        problem: CheckRow,
    ) -> MappingRule:
        trace.record(
            RefinementStep(
                strategy=strategy,
                page_url=problem.page.url,
                outcome=problem.outcome,
                before=before,
                after=after,
            )
        )
        return after

    # ------------------------------------------------------------------ #
    # Strategy: adding contextual information (Section 3.4, Figure 4)
    # ------------------------------------------------------------------ #

    def _refine_contextual(
        self,
        rule: MappingRule,
        problem: CheckRow,
        sample: Sequence[WebPage],
        trace: RefinementTrace,
    ) -> Optional[MappingRule]:
        """Rewrite the primary location around a constant anchor label.

        The anchor is the nearest non-whitespace text that precedes (or
        follows) the true value, and it must be *constant*: the same
        string in every sample page where the component is present.

        For a multivalued component the anchor applies to the repetitive
        *container* (the list or table holding the consecutive
        instances) rather than to each value, because only the first
        instance directly follows the label.
        """
        if not self.enable_contextual:
            return None  # positional-only ablation mode
        selections = [
            selection
            for selection in (
                self.oracle.select_value(page, rule.name) for page in sample
            )
            if selection is not None
        ]
        if not selections:
            return None
        multi = next((s for s in selections if s.is_multiple), None)
        if multi is not None:
            location = self._container_location(selections, multi)
        else:
            location = self._value_location(selections)
        if location is None or location in rule.locations:
            return None  # nothing constant, or already tried
        refined = rule.with_primary_location(location)
        return self._record(trace, "contextual", rule, refined, problem)

    def _value_location(self, selections: Sequence[Selection]) -> Optional[str]:
        """Per-value anchoring: single-instance components."""
        nodes = [selection.first for selection in selections]
        before = [nearest_preceding_label(node) for node in nodes]
        if _constant(before):
            return build_contextual_xpath(nodes[0], before[0], side="before")
        after = [nearest_following_label(node) for node in nodes]
        if _constant(after):
            return build_contextual_xpath(nodes[0], after[0], side="after")
        return None

    def _container_location(
        self, selections: Sequence[Selection], multi: Selection
    ) -> Optional[str]:
        """Container anchoring: multivalued components."""
        from repro.core.xpath_builder import (
            ancestor_with_tag,
            build_contextual_container_xpath,
            common_ancestor,
        )

        container = common_ancestor(multi.first, multi.last)
        if container is None or not hasattr(container, "tag"):
            return None
        references: list[Node] = []
        for selection in selections:
            if selection.is_multiple:
                ref = common_ancestor(selection.first, selection.last)
            else:
                ref = ancestor_with_tag(selection.first, container.tag)
            if ref is None:
                return None
            references.append(ref)
        before = [nearest_preceding_label(ref) for ref in references]
        try:
            if _constant(before):
                return build_contextual_container_xpath(
                    multi.first, multi.last, before[0], side="before"
                )
            after = [nearest_following_label(ref) for ref in references]
            if _constant(after):
                return build_contextual_container_xpath(
                    multi.first, multi.last, after[0], side="after"
                )
        except RuleError:
            return None
        return None

    # ------------------------------------------------------------------ #
    # Strategy: optional / multivalued / mixed property changes
    # ------------------------------------------------------------------ #

    def _refine_multivalued(
        self,
        rule: MappingRule,
        problem: CheckRow,
        trace: RefinementTrace,
    ) -> Optional[MappingRule]:
        """Declare multivalued and broaden the repetitive tag's position.

        "The repetitive tag is automatically deduced by the comparison
        of the XPath expressions locating the first and the last
        instances of the multivalued component."
        """
        selection = self.oracle.select_value(problem.page, rule.name)
        if selection is None:
            return None
        refined_component = rule.component.as_multivalued()
        if not selection.is_multiple:
            # Only one instance on this page; property change suffices.
            refined = rule.with_component(refined_component)
            return self._record(trace, "multivalued", rule, refined, problem)
        first_xpath = build_precise_xpath(selection.first)
        last_xpath = build_precise_xpath(selection.last)
        try:
            repetitive = deduce_repetitive_tag(first_xpath, last_xpath)
            broadened = broaden_multiplicity(first_xpath, repetitive)
        except RuleError:
            return None
        refined = rule.with_component(refined_component).with_primary_location(
            broadened
        )
        return self._record(trace, "multivalued", rule, refined, problem)

    def _refine_mixed(
        self,
        rule: MappingRule,
        problem: CheckRow,
        trace: RefinementTrace,
    ) -> Optional[MappingRule]:
        """Set format := mixed and re-target the enclosing element.

        "The problem lies in the fact that the expected value is
        composed of a single text node in some pages and of text nodes
        and HTML tags in other pages.  To fix that, the format property
        is set to mixed."
        """
        selection = self.oracle.select_value(problem.page, rule.name)
        if selection is None:
            return None
        node = selection.first
        target: Node
        if isinstance(node, Element):
            target = node
        elif node.parent is not None:
            target = node.parent
        else:
            return None
        try:
            location = build_precise_xpath(target)
        except RuleError:
            return None
        refined = rule.with_component(rule.component.as_mixed()).with_primary_location(
            location
        )
        return self._record(trace, "mixed-format", rule, refined, problem)

    # ------------------------------------------------------------------ #
    # Strategy: adding an alternative path (Section 3.4, last resort)
    # ------------------------------------------------------------------ #

    def _refine_alternative(
        self,
        rule: MappingRule,
        problem: CheckRow,
        trace: RefinementTrace,
    ) -> Optional[MappingRule]:
        """Append a precise XPath selected in the failing page.

        "A component value is selected in a page where it could not be
        located to produce a new XPath expression that is appended to
        the mapping rule."
        """
        selection = self.oracle.select_value(problem.page, rule.name)
        if selection is None:
            return None
        location = self._page_local_location(selection)
        if location is None or location in rule.locations:
            try:
                location = build_precise_xpath(selection.first)
            except RuleError:
                return None
        if location in rule.locations:
            return None  # already tried; avoid oscillating swaps
        if problem.outcome is CheckOutcome.VOID:
            # The paper's formulation: the new expression "is appended
            # to the mapping rule".
            refined = rule.with_alternative(location)
        elif problem.outcome is CheckOutcome.WRONG_VALUE:
            # Appending cannot help here: locations are tried in order
            # and the current primary already matches (a wrong value) on
            # this page.  Promote the new path to primary instead; the
            # demoted location keeps covering the pages it was right on.
            refined = rule.with_locations((location, *rule.locations))
        else:
            return None
        if refined == rule:
            return None
        return self._record(trace, "alternative-path", rule, refined, problem)

    def _page_local_location(self, selection: Selection) -> Optional[str]:
        """A contextual location anchored on the failing page itself.

        When the cluster contains sub-layouts with *different* labels
        for the same component (e.g. a renamed "Length:" after wrapper
        drift), no anchor is constant across the whole sample — but the
        failing page's own label still beats a brittle positional path
        as the alternative location.  Anchors make the alternative
        cover the failing page's whole sub-layout, not just pages with
        identical positions.
        """
        if not self.enable_contextual:
            return None
        node = selection.first
        label = nearest_preceding_label(node)
        if label:
            return build_contextual_xpath(node, label, side="before")
        label = nearest_following_label(node)
        if label:
            return build_contextual_xpath(node, label, side="after")
        return None


def _constant(labels: Sequence[Optional[str]]) -> bool:
    """True when at least one label exists and all are equal/non-None."""
    if not labels:
        return False
    first = labels[0]
    if first is None:
        return False
    return all(label == first for label in labels)
