"""Mapping rules: a page component paired with XPath locations.

"A mapping rule is the formalization of the properties of a page
component.  Each mapping rule addresses exactly one page component, and,
conversely, a page component can be mapped by exactly one mapping rule"
(Section 2.3).

A rule carries an ordered tuple of location XPaths.  The first is the
primary location; later entries are *alternative paths* appended during
refinement ("a component value is selected in a page where it could not
be located to produce a new XPath expression that is appended to the
mapping rule", Section 3.4).  Application tries locations in order and
returns the first non-empty match.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.dom.node import Element, Node, Text
from repro.dom.serialize import to_xml
from repro.errors import RuleValidationError
from repro.core.component import Format, PageComponent
from repro.xpath.engine import compile_xpath


def normalize_value(text: str) -> str:
    """Whitespace-normalised form used for value comparison and export."""
    return " ".join(text.split())


@dataclass(frozen=True)
class ComponentValue:
    """One extracted component value.

    Attributes:
        text: whitespace-normalised string content.
        nodes: the DOM nodes the value is made of (one text node for a
            ``text`` component; several, interleaved with markup, for a
            ``mixed`` one).
    """

    text: str
    nodes: tuple[Node, ...]

    @property
    def first_node(self) -> Node:
        return self.nodes[0]

    def as_xml(self) -> str:
        """XML serialisation of the value, preserving inline markup.

        For a pure-text value this is just the escaped text; for a
        mixed value, the markup between the text nodes is preserved by
        serialising every node of the value.
        """
        return "".join(to_xml(node) for node in self.nodes).strip()


@dataclass(frozen=True)
class MatchResult:
    """Result of applying one rule to one page."""

    nodes: tuple[Node, ...]
    values: tuple[ComponentValue, ...]
    location_used: Optional[str]  # which XPath produced the match

    @property
    def is_void(self) -> bool:
        return not self.nodes

    @property
    def texts(self) -> list[str]:
        return [value.text for value in self.values]


@dataclass(frozen=True)
class MappingRule:
    """A page component plus its location(s) in the cluster's pages.

    Attributes:
        component: the model-independent properties.
        locations: ordered XPath expressions; evaluation context is the
            page's ``HTML`` element, so paper-style paths
            (``BODY[1]/DIV[2]/...``) work verbatim.
    """

    component: PageComponent
    locations: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.locations:
            raise RuleValidationError(
                f"rule for {self.component.name!r} needs at least one location"
            )
        for location in self.locations:
            compile_xpath(location)  # validates syntax eagerly

    # -- convenience accessors ------------------------------------------- #

    @property
    def name(self) -> str:
        return self.component.name

    @property
    def primary_location(self) -> str:
        return self.locations[0]

    # -- refinement helpers (immutable updates) ---------------------------- #

    def with_component(self, component: PageComponent) -> "MappingRule":
        return replace(self, component=component)

    def with_locations(self, locations: tuple[str, ...]) -> "MappingRule":
        return replace(self, locations=locations)

    def with_primary_location(self, location: str) -> "MappingRule":
        return replace(self, locations=(location, *self.locations[1:]))

    def with_alternative(self, location: str) -> "MappingRule":
        """Append an alternative path (Section 3.4, last strategy)."""
        if location in self.locations:
            return self
        return replace(self, locations=(*self.locations, location))

    # -- application --------------------------------------------------------#

    def apply(self, context: Node) -> MatchResult:
        """Apply the rule to a page.

        Args:
            context: the page's ``HTML`` element (or any context node
                the locations are meant to be resolved against).

        Returns:
            A :class:`MatchResult`; ``is_void`` when no location
            matched anything.
        """
        for location in self.locations:
            nodes = compile_xpath(location).select(context)
            if nodes:
                return self.match_from_nodes(nodes, location)
        return MatchResult(nodes=(), values=(), location_used=None)

    def match_from_nodes(
        self, nodes: list[Node], location: Optional[str]
    ) -> MatchResult:
        """Build a :class:`MatchResult` from nodes selected elsewhere.

        The compiled-wrapper path (:mod:`repro.service.compiler`)
        evaluates locations through a shared prefix trie and hands the
        selected nodes back here, so value grouping stays identical to
        :meth:`apply`.
        """
        if not nodes:
            return MatchResult(nodes=(), values=(), location_used=None)
        return MatchResult(
            nodes=tuple(nodes),
            values=tuple(self._group_values(list(nodes))),
            location_used=location,
        )

    def _group_values(self, nodes: list[Node]) -> list[ComponentValue]:
        """Group matched nodes into component values.

        * ``text`` format: every matched text node is one value
          (a single-valued rule is *expected* to match exactly one —
          the checker flags violations, cf. Section 7 on failure
          detection).
        * ``mixed`` format: consecutive matched nodes sharing the same
          parent element form one value — "the component value is a
          list of text nodes separated by HTML tags" (Section 7).
        """
        if self.component.format is Format.TEXT:
            return [
                ComponentValue(normalize_value(_node_text(node)), (node,))
                for node in nodes
            ]
        values: list[ComponentValue] = []
        group: list[Node] = []
        group_parent: Optional[Node] = None

        def flush() -> None:
            nonlocal group, group_parent
            if group:
                values.append(_make_mixed_value(group))
            group, group_parent = [], None

        for node in nodes:
            if isinstance(node, Element):
                # A matched element IS one mixed value (its whole content).
                flush()
                values.append(_make_mixed_value([node]))
                continue
            parent = node.parent
            if group and parent is not group_parent:
                flush()
            group.append(node)
            group_parent = parent
        flush()
        return values

    # -- (de)serialisation ---------------------------------------------------#

    def to_dict(self) -> dict:
        data = self.component.to_dict()
        data["locations"] = list(self.locations)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MappingRule":
        component = PageComponent.from_dict(data)
        locations = data.get("locations")
        if not locations:
            # Backwards-compatible single-location form.
            single = data.get("location")
            if not single:
                raise RuleValidationError("rule dict has no location(s)")
            locations = [single]
        return cls(component=component, locations=tuple(locations))

    def describe(self) -> str:
        """The paper's rule rendering (Section 2.3 sample)."""
        lines = [
            f"name         : {self.component.name}",
            f"optionality  : {self.component.optionality.value}",
            f"multiplicity : {self.component.multiplicity.value}",
            f"format       : {self.component.format.value}",
        ]
        for index, location in enumerate(self.locations):
            label = "location" if index == 0 else f"location[{index}]"
            lines.append(f"{label:<13}: {location}")
        return "\n".join(lines)


def _node_text(node: Node) -> str:
    if isinstance(node, Text):
        return node.data
    return node.text_content()


def _make_mixed_value(nodes: list[Node]) -> ComponentValue:
    text = normalize_value(" ".join(_node_text(node) for node in nodes))
    return ComponentValue(text, tuple(nodes))
