"""The semi-automated rule-building scenario of Figure 3.

For each component of interest the driver performs:

1. **Candidate rule building** (Section 3.2) — a component value is
   selected in one (randomly chosen) page of the working sample; its
   precise XPath becomes the location, the user-given name the
   interpretation, and the remaining properties take their defaults:
   ``mandatory``, ``single-valued``, and ``text`` (or ``mixed`` when
   the selected node is not a simple text node).
2. **Rule checking** (Section 3.3) — the candidate is applied to every
   page of the sample.
3. **Rule refinement** (Section 3.4) — negative examples are resolved
   one at a time by :class:`repro.core.refinement.RefinementEngine`.
4. **Rule recording** (Section 3.5) — a validated rule goes into the
   :class:`repro.core.repository.RuleRepository`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.dom.node import Element
from repro.errors import RefinementError
from repro.core.checking import CheckReport, check_rule, render_check_table
from repro.core.component import PageComponent
from repro.core.oracle import Oracle, Selection
from repro.core.refinement import RefinementEngine, RefinementTrace
from repro.core.repository import RuleRepository
from repro.core.rule import MappingRule
from repro.core.xpath_builder import build_precise_xpath
from repro.sites.page import WebPage


@dataclass
class BuildOutcome:
    """Everything the builder produced for one component."""

    component_name: str
    rule: Optional[MappingRule]
    report: Optional[CheckReport]
    trace: RefinementTrace
    recorded: bool

    @property
    def succeeded(self) -> bool:
        return self.recorded


@dataclass
class BuildReport:
    """Summary of a whole build session over several components."""

    outcomes: list[BuildOutcome] = field(default_factory=list)

    @property
    def recorded_rules(self) -> list[MappingRule]:
        return [o.rule for o in self.outcomes if o.recorded and o.rule is not None]

    @property
    def failed_components(self) -> list[str]:
        return [o.component_name for o in self.outcomes if not o.recorded]

    def summary(self) -> str:
        lines = []
        for outcome in self.outcomes:
            status = "recorded" if outcome.recorded else "FAILED"
            refinements = len(outcome.trace.steps)
            lines.append(
                f"{outcome.component_name:<20} {status:<9} "
                f"({refinements} refinement(s): "
                f"{', '.join(outcome.trace.strategies_used) or 'none'})"
            )
        return "\n".join(lines)


class MappingRuleBuilder:
    """Drives the Figure-3 scenario for a working sample.

    Args:
        sample: the working sample pages (Section 3.1 suggests ~10).
        oracle: the human-operator stand-in.
        repository: where validated rules are recorded.
        cluster_name: the page cluster these rules address.
        seed: RNG seed for the "randomly chosen" candidate page.
        prefer_contextual: refinement strategy preference (ablation).
    """

    def __init__(
        self,
        sample: Sequence[WebPage],
        oracle: Oracle,
        repository: Optional[RuleRepository] = None,
        cluster_name: str = "cluster",
        seed: Optional[int] = None,
        prefer_contextual: bool = True,
        enable_contextual: bool = True,
        max_iterations: int = 25,
    ) -> None:
        if not sample:
            raise ValueError("working sample must not be empty")
        self.sample = list(sample)
        self.oracle = oracle
        self.repository = repository if repository is not None else RuleRepository()
        self.cluster_name = cluster_name
        self._rng = random.Random(seed)
        self.engine = RefinementEngine(
            oracle,
            max_iterations=max_iterations,
            prefer_contextual=prefer_contextual,
            enable_contextual=enable_contextual,
        )

    # ------------------------------------------------------------------ #
    # Candidate rule building (Section 3.2)
    # ------------------------------------------------------------------ #

    def build_candidate(self, component_name: str) -> MappingRule:
        """Candidate rule from a selection in one random sample page.

        Properties follow Section 3.2 exactly: location and name come
        from selection and interpretation; optionality and multiplicity
        default to ``mandatory`` / ``single-valued``; format is ``text``
        iff the selected value is a simple text node.

        Raises:
            RefinementError: when no sample page yields a selection.
        """
        pages = self.sample[:]
        self._rng.shuffle(pages)
        for page in pages:
            selection = self.oracle.select_value(page, component_name)
            if selection is None:
                continue
            return self.candidate_from_selection(component_name, selection)
        raise RefinementError(
            f"component {component_name!r} could not be selected in any "
            "page of the working sample"
        )

    def candidate_from_selection(
        self, component_name: str, selection: Selection
    ) -> MappingRule:
        """Deterministic candidate construction from an explicit selection."""
        node = selection.first
        component = PageComponent(name=component_name)
        if isinstance(node, Element):
            component = component.as_mixed()
        location = build_precise_xpath(node)
        return MappingRule(component=component, locations=(location,))

    # ------------------------------------------------------------------ #
    # Whole scenario per component (Figure 3)
    # ------------------------------------------------------------------ #

    def build_rule(self, component_name: str) -> BuildOutcome:
        """Candidate -> check -> refine -> record, for one component."""
        try:
            candidate = self.build_candidate(component_name)
        except RefinementError:
            return BuildOutcome(
                component_name=component_name,
                rule=None,
                report=None,
                trace=RefinementTrace(),
                recorded=False,
            )
        rule, report, trace = self.engine.refine(candidate, self.sample)
        recorded = report.is_valid
        if recorded:
            self.repository.record(self.cluster_name, rule)
        return BuildOutcome(
            component_name=component_name,
            rule=rule,
            report=report,
            trace=trace,
            recorded=recorded,
        )

    def build_all(self, component_names: Sequence[str]) -> BuildReport:
        """Run the scenario for every component of interest."""
        report = BuildReport()
        for name in component_names:
            report.outcomes.append(self.build_rule(name))
        return report

    # ------------------------------------------------------------------ #
    # Semi-automated error recovery (Section 7)
    # ------------------------------------------------------------------ #

    def repair_rule(
        self,
        rule: MappingRule,
        failing_pages: Sequence[WebPage],
    ) -> BuildOutcome:
        """Repair a rule that failed on pages outside the original sample.

        Section 7 sketches this workflow: "a failure in a rule could be
        automatically detected when a mandatory component cannot be
        found in one page ...  When such a failure is detected, the rule
        should be refined manually from the negative examples."  The
        failing pages join the working sample (each one "is likely to
        enhance the quality and the accuracy of the mapping rules",
        Section 3.1) and the refinement loop re-runs; a repaired rule
        replaces the recorded one.
        """
        extended = list(self.sample)
        for page in failing_pages:
            if page not in extended:
                extended.append(page)
        repaired, report, trace = self.engine.refine(rule, extended)
        recorded = report.is_valid
        if recorded:
            self.repository.record(self.cluster_name, repaired)
        return BuildOutcome(
            component_name=rule.name,
            rule=repaired,
            report=report,
            trace=trace,
            recorded=recorded,
        )

    # ------------------------------------------------------------------ #
    # Convenience: the Table-1 view for any rule
    # ------------------------------------------------------------------ #

    def check_table(self, rule: MappingRule) -> str:
        """Render the tabular check view (Section 3.3 / Table 1)."""
        return render_check_table(check_rule(rule, self.sample, self.oracle))
