"""Page components and their model-independent properties.

Section 2.2 of the paper: "An information unit identified in a page is
called a *page component*.  Semantically speaking, a page component is
an interesting attribute of the main concept featured in the pages of a
given cluster (e.g., the runtime of a movie)."

The first four properties (name, optionality, multiplicity, format) are
model-independent — "they could be reused for the same purpose with
non-HTML documents" — and follow the paper's EBNF (Section 2.3)::

    name         ::= [a-zA-Z]([a-zA-Z] | [-_] | [0-9])*
    optionality  ::= 'optional' | 'mandatory'
    multiplicity ::= 'single-valued' | 'multivalued'
    format       ::= 'text' | 'mixed'
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from enum import Enum

from repro.errors import InvalidComponentNameError

_NAME_RE = re.compile(r"^[a-zA-Z][a-zA-Z_\-0-9]*$")


class Optionality(Enum):
    """Whether the component may be missing in some pages of the cluster."""

    MANDATORY = "mandatory"
    OPTIONAL = "optional"


class Multiplicity(Enum):
    """Whether one or several consecutive instances can appear in a page."""

    SINGLE_VALUED = "single-valued"
    MULTIVALUED = "multivalued"


class Format(Enum):
    """``TEXT``: a simple text node; ``MIXED``: text and formatting tags."""

    TEXT = "text"
    MIXED = "mixed"


def validate_component_name(name: str) -> str:
    """Validate ``name`` against the paper's EBNF grammar and return it.

    Raises:
        InvalidComponentNameError: when the name is empty, starts with a
            non-letter, or contains characters outside letters, digits,
            ``-`` and ``_``.

    Example:
        >>> validate_component_name("runtime")
        'runtime'
        >>> validate_component_name("users-opinion2")
        'users-opinion2'
    """
    if not isinstance(name, str) or not _NAME_RE.match(name or ""):
        raise InvalidComponentNameError(
            f"invalid component name {name!r}: must match "
            "[a-zA-Z]([a-zA-Z]|[-_]|[0-9])*"
        )
    return name


@dataclass(frozen=True)
class PageComponent:
    """A page component's model-independent properties.

    The location property lives on :class:`repro.core.rule.MappingRule`,
    which pairs a component with where to find it ("while a page
    component is linked to a cluster, each of its instances in the pages
    of the cluster are called *component values*").

    Attributes:
        name: unique identifying name (paper EBNF enforced).
        optionality: may the component be missing in some pages?
        multiplicity: can several consecutive instances appear?
        format: pure text value or text mixed with markup?
    """

    name: str
    optionality: Optionality = Optionality.MANDATORY
    multiplicity: Multiplicity = Multiplicity.SINGLE_VALUED
    format: Format = Format.TEXT

    def __post_init__(self) -> None:
        validate_component_name(self.name)

    # -- refinement helpers (return modified copies) --------------------- #

    def as_optional(self) -> "PageComponent":
        """Copy with optionality set to ``optional`` (Section 3.4)."""
        return replace(self, optionality=Optionality.OPTIONAL)

    def as_multivalued(self) -> "PageComponent":
        """Copy with multiplicity set to ``multivalued`` (Section 3.4)."""
        return replace(self, multiplicity=Multiplicity.MULTIVALUED)

    def as_mixed(self) -> "PageComponent":
        """Copy with format set to ``mixed`` (Section 3.4)."""
        return replace(self, format=Format.MIXED)

    # -- (de)serialisation ----------------------------------------------- #

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "optionality": self.optionality.value,
            "multiplicity": self.multiplicity.value,
            "format": self.format.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PageComponent":
        return cls(
            name=data["name"],
            optionality=Optionality(data.get("optionality", "mandatory")),
            multiplicity=Multiplicity(data.get("multiplicity", "single-valued")),
            format=Format(data.get("format", "text")),
        )
