"""XPath generation and rewriting for mapping rules.

Three families of operations, matching Sections 3.2 and 3.4 of the paper:

* **precise XPath generation** — from a selected DOM node, produce "an
  XPath where each HTML element is associated with its parent-relative
  position, leading to the focused value"
  (``BODY[1]/DIV[2]/TABLE[3]/TR[1]/TD[3]/.../text()[1]``);
* **contextual rewriting** — "remove the position information where the
  shift occurs and add contextual information in terms of a constant
  character string that always visually appears before (or after) the
  targeted value", with the tree "traversed according to a Depth First
  Search";
* **multiplicity broadening** — "the position predicate associated to
  the repetitive tag is broadened in order to select consecutive
  component values", the repetitive tag being "automatically deduced by
  the comparison of the XPath expressions locating the first and the
  last instances".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dom.node import Element, Node, Text
from repro.errors import RuleError
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    NameTest,
    NumberLiteral,
    Step,
)
from repro.xpath.parser import parse_xpath

# --------------------------------------------------------------------- #
# Precise (positional) XPath generation — Section 3.2
# --------------------------------------------------------------------- #


def build_precise_xpath(node: Node) -> str:
    """Precise positional XPath from the page's HTML element to ``node``.

    The returned expression is relative to the ``HTML`` document element
    (so it starts with ``BODY[1]/...`` like the paper's examples) and
    pins every step with its parent-relative position.

    Args:
        node: a :class:`Text` or :class:`Element` inside a parsed page.

    Raises:
        RuleError: when the node is detached or outside an HTML element.

    Example:
        >>> from repro.html import parse_html
        >>> from repro.dom.traversal import find_text_node
        >>> doc = parse_html("<body><div></div><div><p>v</p></div></body>")
        >>> build_precise_xpath(find_text_node(doc, "v"))
        'BODY[1]/DIV[2]/P[1]/text()[1]'
    """
    steps: list[str] = []
    current: Optional[Node] = node
    if isinstance(node, Text):
        steps.append(f"text()[{node.position_among_text_siblings()}]")
        current = node.parent
    while isinstance(current, Element) and current.tag != "HTML":
        steps.append(f"{current.tag}[{current.position_among_same_tag()}]")
        current = current.parent
    if not isinstance(current, Element) or current.tag != "HTML":
        raise RuleError("node is not attached under an HTML element")
    if not steps:
        raise RuleError("cannot build an XPath for the HTML element itself")
    return "/".join(reversed(steps))


def ancestor_tag_chain(node: Node) -> list[str]:
    """Tags from BODY (exclusive) down to the node's parent element."""
    tags: list[str] = []
    current = node.parent if isinstance(node, Text) else node
    while isinstance(current, Element) and current.tag not in ("HTML", "BODY"):
        tags.append(current.tag)
        current = current.parent
    return list(reversed(tags))


# --------------------------------------------------------------------- #
# Contextual (anchor-based) XPaths — Section 3.4, first strategy
# --------------------------------------------------------------------- #


def xpath_string_literal(value: str) -> str:
    """Render ``value`` as an XPath string literal.

    XPath 1.0 has no escape mechanism inside literals; values containing
    both quote kinds are assembled with ``concat()``.
    """
    if '"' not in value:
        return f'"{value}"'
    if "'" not in value:
        return f"'{value}'"
    # Both quote kinds present: assemble with concat().  A separator
    # literal is emitted between consecutive chunks even when the first
    # chunk is empty (value starting with a double quote).
    parts: list[str] = []
    for index, chunk in enumerate(value.split('"')):
        if index:
            parts.append("'\"'")
        if chunk:
            parts.append(f'"{chunk}"')
    if len(parts) == 1:
        return parts[0]
    return f"concat({', '.join(parts)})"


def nearest_preceding_label(node: Node) -> Optional[str]:
    """Nearest non-whitespace text before ``node`` in DFS order.

    This implements the paper's notion of "a constant character string
    that always visually appears before the targeted value": the label
    a reader sees immediately before the value.
    """
    for candidate in node.preceding():
        if isinstance(candidate, Text) and not candidate.is_whitespace():
            return " ".join(candidate.data.split())
    return None


def nearest_following_label(node: Node) -> Optional[str]:
    """Nearest non-whitespace text after ``node`` in DFS order."""
    for candidate in node.following():
        if isinstance(candidate, Text) and not candidate.is_whitespace():
            return " ".join(candidate.data.split())
    return None


def build_contextual_xpath(
    value_node: Node,
    anchor: str,
    side: str = "before",
    tag_suffix_length: int = 1,
    use_contains: bool = False,
) -> str:
    """Anchor-based XPath for ``value_node``.

    Replaces the brittle positional spine with a structural tail (the
    last ``tag_suffix_length`` ancestor tags, unindexed) plus a
    predicate requiring the nearest preceding (or following)
    non-whitespace text to match ``anchor``.

    Example output::

        BODY//TD/text()[normalize-space(preceding::text()
            [normalize-space(.) != ""][1]) = "Runtime:"]

    Args:
        value_node: the text node (or element) holding the value.
        anchor: the constant label string.
        side: ``"before"`` or ``"after"`` — where the anchor sits.
        tag_suffix_length: how many unindexed ancestor tags to keep for
            structural context.
        use_contains: match with ``contains()`` instead of equality
            (for labels with variable suffixes).
    """
    if side not in ("before", "after"):
        raise ValueError(f"side must be 'before' or 'after', not {side!r}")
    chain = ancestor_tag_chain(value_node)
    suffix = "/".join(chain[-tag_suffix_length:]) if chain else "*"
    axis = "preceding" if side == "before" else "following"
    literal = xpath_string_literal(" ".join(anchor.split()))
    nearest = f'{axis}::text()[normalize-space(.) != ""][1]'
    if use_contains:
        predicate = f"contains(normalize-space({nearest}), {literal})"
    else:
        predicate = f"normalize-space({nearest}) = {literal}"
    leaf = "text()" if isinstance(value_node, Text) else value_node.tag  # type: ignore[union-attr]
    return f"BODY//{suffix}/{leaf}[{predicate}]"


def common_ancestor(a: Node, b: Node) -> Optional[Node]:
    """Lowest common ancestor of two nodes of the same tree."""
    ancestors_a = [a, *a.ancestors()]
    seen = {id(node) for node in ancestors_a}
    node: Optional[Node] = b
    while node is not None:
        if id(node) in seen:
            return node
        node = node.parent
    return None


def ancestor_with_tag(node: Node, tag: str) -> Optional[Element]:
    """Nearest ancestor element with the given tag (or ``None``)."""
    wanted = tag.upper()
    current = node.parent
    while isinstance(current, Element):
        if current.tag == wanted:
            return current
        current = current.parent
    return None


def build_contextual_container_xpath(
    first_value: Node,
    last_value: Node,
    anchor: str,
    side: str = "before",
) -> str:
    """Anchor-based XPath for a *multivalued* component.

    A multivalued component's instances are "consecutive pieces of
    information of the same type" (Section 3.4) living under one
    repetitive container (the ``<UL>`` of a list, the ``<TABLE>`` of
    rows).  Anchoring each value individually cannot work — only the
    first instance directly follows the constant label.  Instead the
    *container* is anchored and the repetitive step below it loses its
    position predicate::

        BODY//UL[normalize-space(preceding::text()
            [normalize-space(.) != ""][1]) = "Features"]/LI/text()[1]

    Args:
        first_value / last_value: nodes of the first and last instances
            (as selected by the user); their lowest common ancestor is
            the container.
        anchor: the constant label preceding (or following) the
            container.
        side: ``"before"`` or ``"after"``.

    Raises:
        RuleError: when the two nodes share no ancestor below BODY.
    """
    if side not in ("before", "after"):
        raise ValueError(f"side must be 'before' or 'after', not {side!r}")
    container = common_ancestor(first_value, last_value)
    if not isinstance(container, Element) or container.tag in ("HTML", "BODY"):
        raise RuleError("multivalued instances share no container element")
    # Steps from the container down to the first value, positions kept
    # except on the repetitive step (the container's direct child).
    steps: list[str] = []
    current: Optional[Node] = first_value
    if isinstance(first_value, Text):
        steps.append(f"text()[{first_value.position_among_text_siblings()}]")
        current = first_value.parent
    while isinstance(current, Element) and current is not container:
        steps.append(f"{current.tag}[{current.position_among_same_tag()}]")
        current = current.parent
    if current is not container:
        raise RuleError("value node is not inside the deduced container")
    if not steps:
        raise RuleError("the selected value is the container itself")
    # The last collected step is the container's child: the repetitive
    # element; drop its position predicate.
    repetitive = steps[-1]
    steps[-1] = repetitive.split("[", 1)[0]
    axis = "preceding" if side == "before" else "following"
    literal = xpath_string_literal(" ".join(anchor.split()))
    nearest = f'{axis}::text()[normalize-space(.) != ""][1]'
    predicate = f"normalize-space({nearest}) = {literal}"
    tail = "/".join(reversed(steps))
    return f"BODY//{container.tag}[{predicate}]/{tail}"


# --------------------------------------------------------------------- #
# Multiplicity broadening — Section 3.4
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class RepetitiveStep:
    """The step identified as repetitive between two instance XPaths."""

    index: int          # step index within the location path
    tag: str            # e.g. "TR" — "the repetitive element is undoubtedly <TR>"
    first_position: int  # position of the first instance (e.g. 2 for TR[2])
    last_position: int   # position of the last instance (e.g. 17 for TR[17])


def _positional_steps(expression: str) -> tuple[LocationPath, list[Step]]:
    ast = parse_xpath(expression)
    if not isinstance(ast, LocationPath):
        raise RuleError(f"not a location path: {expression!r}")
    return ast, list(ast.steps)


def _step_position(step: Step) -> Optional[int]:
    """The integer position a step pins, when its predicate is ``[n]``."""
    if len(step.predicates) != 1:
        return None
    predicate = step.predicates[0]
    if isinstance(predicate, NumberLiteral) and predicate.value == int(predicate.value):
        return int(predicate.value)
    return None


def deduce_repetitive_tag(first_xpath: str, last_xpath: str) -> RepetitiveStep:
    """Deduce the repetitive tag from first/last instance XPaths.

    "For example, if rows e and f in Table 2 lead to the first and the
    last values of a multivalued component, the repetitive element is
    undoubtedly <TR>" — the two paths must be identical except for one
    step's position predicate.

    Raises:
        RuleError: when the paths differ structurally, or in more or
            fewer than exactly one position.
    """
    _, first_steps = _positional_steps(first_xpath)
    _, last_steps = _positional_steps(last_xpath)
    if len(first_steps) != len(last_steps):
        raise RuleError("instance XPaths have different lengths")
    found: Optional[RepetitiveStep] = None
    for index, (a, b) in enumerate(zip(first_steps, last_steps)):
        if a.axis != b.axis or str(a.node_test) != str(b.node_test):
            raise RuleError(
                f"instance XPaths diverge structurally at step {index}: "
                f"{a} vs {b}"
            )
        if a == b:
            continue
        pos_a, pos_b = _step_position(a), _step_position(b)
        if pos_a is None or pos_b is None:
            raise RuleError(f"non-positional difference at step {index}: {a} vs {b}")
        if found is not None:
            raise RuleError("instance XPaths differ at more than one step")
        if not isinstance(a.node_test, NameTest):
            raise RuleError(f"repetitive step {a} is not an element step")
        found = RepetitiveStep(
            index=index,
            tag=a.node_test.name,
            first_position=min(pos_a, pos_b),
            last_position=max(pos_a, pos_b),
        )
    if found is None:
        raise RuleError("instance XPaths are identical; nothing repetitive")
    return found


def broaden_multiplicity(
    expression: str,
    repetitive: RepetitiveStep,
    open_ended: bool = True,
) -> str:
    """Broaden the repetitive step's position predicate.

    ``TR[2]`` becomes ``TR[position()>=2]`` (Table 2, row d shows the
    ``position()>=1`` form).  With ``open_ended=False`` the range is
    closed with the last observed position, which is safer when
    unrelated rows follow the repetition.
    """
    path, steps = _positional_steps(expression)
    if repetitive.index >= len(steps):
        raise RuleError("repetitive step index out of range")
    step = steps[repetitive.index]
    lower = BinaryOp(
        ">=", FunctionCall("position"), NumberLiteral(float(repetitive.first_position))
    )
    if open_ended:
        predicate = lower
    else:
        upper = BinaryOp(
            "<=",
            FunctionCall("position"),
            NumberLiteral(float(repetitive.last_position)),
        )
        predicate = BinaryOp("and", lower, upper)
    steps[repetitive.index] = step.with_predicates((predicate,))
    return str(LocationPath(path.absolute, tuple(steps)))


def strip_position_at(expression: str, step_index: int) -> str:
    """Remove the position predicate of one step (used by refinements)."""
    path, steps = _positional_steps(expression)
    if step_index >= len(steps):
        raise RuleError("step index out of range")
    steps[step_index] = steps[step_index].with_predicates(())
    return str(LocationPath(path.absolute, tuple(steps)))
