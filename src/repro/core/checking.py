"""Rule checking: apply a candidate rule across the working sample.

Section 3.3: "The candidate rule is applied on the successive pages of
the working sample to check whether it can retrieve the pertinent
component values in all of them.  This checking is carried out by means
of visual inspection in a tabular view."

:func:`check_rule` produces that table programmatically and classifies
every row, so the refinement engine knows *which* negative-example
situation of Section 3.4 it is facing:

* ``WRONG_VALUE`` — "the value matched by the candidate rule is an
  unwanted value" (Table 1, row c);
* ``VOID`` — "the candidate rule cannot match any value" (row d);
* ``INCOMPLETE`` — "the value matched ... is incomplete" (mixed format);
* ``NEEDS_MULTIVALUED`` — "the value appears to be multivalued";
* ``UNEXPECTED_PRESENT`` — a value matched on a page where the
  component is absent (optionality/shift problem);
* ``VOID_ABSENT`` — void on a page where the component is genuinely
  absent (consistent once the rule is ``optional``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

from repro.core.oracle import Oracle
from repro.core.rule import MappingRule, MatchResult, normalize_value
from repro.core.component import Multiplicity, Optionality
from repro.sites.page import WebPage


class CheckOutcome(Enum):
    CORRECT = "correct"
    WRONG_VALUE = "wrong-value"
    VOID = "void"
    VOID_ABSENT = "void-absent"
    UNEXPECTED_PRESENT = "unexpected-present"
    INCOMPLETE = "incomplete"
    NEEDS_MULTIVALUED = "needs-multivalued"

    @property
    def is_problem(self) -> bool:
        return self not in (CheckOutcome.CORRECT, CheckOutcome.VOID_ABSENT)


@dataclass(frozen=True)
class CheckRow:
    """One row of the Table-1 view: a page and what the rule matched."""

    page: WebPage
    outcome: CheckOutcome
    matched: tuple[str, ...]
    expected: Optional[tuple[str, ...]]

    @property
    def display_value(self) -> str:
        """The 'Component value' cell: '-' for void, like Table 1 row d."""
        if not self.matched:
            return "-"
        return "; ".join(self.matched)


@dataclass(frozen=True)
class CheckReport:
    """All rows plus the verdict used by the Figure-3 exit test."""

    rule: MappingRule
    rows: tuple[CheckRow, ...]

    @property
    def is_valid(self) -> bool:
        """"Rule for C is OK" — no row is a problem."""
        return all(not row.outcome.is_problem for row in self.rows)

    @property
    def problems(self) -> list[CheckRow]:
        return [row for row in self.rows if row.outcome.is_problem]

    @property
    def correct_count(self) -> int:
        return sum(1 for row in self.rows if not row.outcome.is_problem)

    def first_problem(self) -> Optional[CheckRow]:
        """Refinement handles "each negative example ... one at a time"."""
        problems = self.problems
        return problems[0] if problems else None


def classify_row(
    rule: MappingRule,
    page: WebPage,
    match: MatchResult,
    expected: Optional[list[str]],
) -> CheckOutcome:
    """Classify one page's match against the oracle's expectation."""
    matched = [normalize_value(text) for text in match.texts]
    if expected is None:
        # No ground truth: only structural self-checks are possible
        # (Section 7: failure detected "when the extraction of a
        # single-valued text component returns more than one node").
        if not matched:
            if rule.component.optionality is Optionality.OPTIONAL:
                return CheckOutcome.VOID_ABSENT
            return CheckOutcome.VOID
        if (
            rule.component.multiplicity is Multiplicity.SINGLE_VALUED
            and len(matched) > 1
        ):
            return CheckOutcome.NEEDS_MULTIVALUED
        return CheckOutcome.CORRECT
    expected_norm = [normalize_value(text) for text in expected]
    if not expected_norm:
        if matched:
            return CheckOutcome.UNEXPECTED_PRESENT
        if rule.component.optionality is Optionality.OPTIONAL:
            return CheckOutcome.VOID_ABSENT
        # Void result, component genuinely absent, but the rule still
        # claims the component is mandatory: the rule must be refined.
        return CheckOutcome.VOID
    if not matched:
        return CheckOutcome.VOID
    if matched == expected_norm:
        if (
            len(matched) > 1
            and rule.component.multiplicity is Multiplicity.SINGLE_VALUED
        ):
            return CheckOutcome.NEEDS_MULTIVALUED
        return CheckOutcome.CORRECT
    if len(expected_norm) > 1 and matched == expected_norm[: len(matched)]:
        # Matched a proper prefix of a repetition: the component is
        # multivalued and the location must be broadened (this also
        # covers an already-multivalued rule whose broadening was
        # deduced on a page with fewer instances).
        return CheckOutcome.NEEDS_MULTIVALUED
    if len(matched) == len(expected_norm) and all(
        m != e and m in e for m, e in zip(matched, expected_norm)
    ):
        # Matched values are proper fragments of the expected ones: the
        # value mixes text and markup on this page.
        return CheckOutcome.INCOMPLETE
    return CheckOutcome.WRONG_VALUE


def check_rule(
    rule: MappingRule,
    sample: Sequence[WebPage],
    oracle: Oracle,
) -> CheckReport:
    """Apply ``rule`` to every page of ``sample`` and classify each row."""
    rows: list[CheckRow] = []
    for page in sample:
        match = rule.apply(page.root_element)
        expected = oracle.expected_texts(page, rule.name)
        if expected is None:
            # Interactive oracles judge instead of providing expectations.
            outcome = classify_row(rule, page, match, None)
            if outcome is CheckOutcome.CORRECT and match.texts:
                if not oracle.judge(page, rule.name, list(match.texts)):
                    outcome = CheckOutcome.WRONG_VALUE
        else:
            outcome = classify_row(rule, page, match, expected)
        rows.append(
            CheckRow(
                page=page,
                outcome=outcome,
                matched=tuple(normalize_value(t) for t in match.texts),
                expected=tuple(expected) if expected is not None else None,
            )
        )
    return CheckReport(rule=rule, rows=tuple(rows))


def render_check_table(report: CheckReport, uri_width: int = 28) -> str:
    """Render the report as the paper's Table 1.

    >>> # produces:
    >>> # Page URI                      | Component value
    >>> # ------------------------------+----------------
    >>> # ./title/tt0095159/            | 108 min
    >>> # ./title/tt0102059/            | -
    """
    header_left = "Page URI"
    lines = [
        f"{header_left:<{uri_width}} | Component value",
        "-" * uri_width + "-+-" + "-" * 16,
    ]
    for row in report.rows:
        uri = _short_uri(row.page.url)
        flag = "" if not row.outcome.is_problem else f"   <-- {row.outcome.value}"
        lines.append(f"{uri:<{uri_width}} | {row.display_value}{flag}")
    return "\n".join(lines)


def _short_uri(url: str) -> str:
    """Shorten 'http://host/path' to './path' as the paper's tables do."""
    for scheme in ("http://", "https://"):
        if url.startswith(scheme):
            rest = url[len(scheme) :]
            slash = rest.find("/")
            return "." + rest[slash:] if slash >= 0 else url
    return url
