"""Schema-guided rule building (the paper's Section-7 future work).

> "In the near future we will also explore the opportunity to build
> mapping rules according to a pre-existing data structure (XML Schema,
> RDF, OWL).  Such an improvement would allow schema reusability and
> sharing, and would make it easier to integrate data coming from
> various Web sites."

A :class:`SchemaTemplate` declares the components a user expects — with
their optionality/multiplicity — *before* any page is opened.  The
guided builder then runs the ordinary Figure-3 scenario for each
declared component and **validates the learned properties against the
declared ones**: a component the schema calls mandatory must not come
out optional, a single-valued one must not come out multivalued, and so
on.  Templates round-trip through the XSD subset this library itself
generates, so a schema produced on one site can guide rule building on
another — the "integration of data coming from various Web sites".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import RuleValidationError
from repro.core.builder import BuildOutcome, MappingRuleBuilder
from repro.core.component import (
    Format,
    Multiplicity,
    Optionality,
    PageComponent,
    validate_component_name,
)
from repro.core.repository import Aggregation


@dataclass(frozen=True)
class ComponentSpec:
    """A declared component: name plus the cardinalities the schema fixes.

    ``None`` for a property means the schema does not constrain it and
    the learned value is accepted as-is.
    """

    name: str
    optionality: Optional[Optionality] = None
    multiplicity: Optional[Multiplicity] = None
    format: Optional[Format] = None

    def __post_init__(self) -> None:
        validate_component_name(self.name)

    def conflicts_with(self, component: PageComponent) -> list[str]:
        """Property names where the learned component contradicts the spec."""
        conflicts: list[str] = []
        if self.optionality is not None and component.optionality is not self.optionality:
            conflicts.append("optionality")
        if (
            self.multiplicity is not None
            and component.multiplicity is not self.multiplicity
        ):
            conflicts.append("multiplicity")
        if self.format is not None and component.format is not self.format:
            conflicts.append("format")
        return conflicts


@dataclass
class SchemaTemplate:
    """A pre-existing target structure for a page cluster."""

    cluster: str
    components: list[ComponentSpec] = field(default_factory=list)
    aggregations: list[Aggregation] = field(default_factory=list)

    def component_names(self) -> list[str]:
        return [spec.name for spec in self.components]

    def spec_for(self, name: str) -> Optional[ComponentSpec]:
        for spec in self.components:
            if spec.name == name:
                return spec
        return None

    # ------------------------------------------------------------------ #
    # XSD round-trip (the subset repro.extraction.schema emits)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_xsd(cls, xsd_text: str) -> "SchemaTemplate":
        """Parse a template from the library's own XSD output.

        Only the generated subset is understood: one root element (the
        cluster), one page element, and leaf/aggregation elements with
        ``minOccurs``/``maxOccurs``.  ``mixed="true"`` complex types map
        to the ``mixed`` format.

        Raises:
            RuleValidationError: when the document lacks the expected
                root/page structure.
        """
        elements = _scan_xsd_elements(xsd_text)
        if len(elements) < 2:
            raise RuleValidationError("XSD lacks root/page element structure")
        cluster = elements[0].name
        template = cls(cluster=cluster)
        # elements[1] is the page element; deeper ones are components or
        # aggregation containers.
        depth_of_page = elements[1].depth
        current_aggregation: Optional[tuple[str, int, list[str]]] = None
        for entry in elements[2:]:
            if current_aggregation is not None and entry.depth <= current_aggregation[1]:
                name, _, members = current_aggregation
                template.aggregations.append(Aggregation(name, tuple(members)))
                current_aggregation = None
            if entry.is_container:
                current_aggregation = (entry.name, entry.depth, [])
                continue
            spec = ComponentSpec(
                name=entry.name,
                optionality=(
                    Optionality.OPTIONAL
                    if entry.min_occurs == "0"
                    else Optionality.MANDATORY
                ),
                multiplicity=(
                    Multiplicity.MULTIVALUED
                    if entry.max_occurs == "unbounded"
                    else Multiplicity.SINGLE_VALUED
                ),
                format=Format.MIXED if entry.mixed else Format.TEXT,
            )
            template.components.append(spec)
            if current_aggregation is not None:
                current_aggregation[2].append(entry.name)
        if current_aggregation is not None:
            name, _, members = current_aggregation
            template.aggregations.append(Aggregation(name, tuple(members)))
        if not template.components:
            raise RuleValidationError("XSD declares no leaf components")
        return template


@dataclass
class _XsdElement:
    name: str
    depth: int
    min_occurs: str
    max_occurs: str
    mixed: bool
    is_container: bool


_ELEMENT_RE = re.compile(
    r'<xs:element\s+name="(?P<name>[^"]+)"(?P<attrs>[^>]*?)(?P<selfclose>/?)>'
)
_MIN_RE = re.compile(r'minOccurs="([^"]+)"')
_MAX_RE = re.compile(r'maxOccurs="([^"]+)"')
_TYPE_RE = re.compile(r'type="xs:string"')


def _scan_xsd_elements(xsd_text: str) -> list[_XsdElement]:
    """Linear scan of xs:element declarations with their nesting depth."""
    entries: list[_XsdElement] = []
    for match in _ELEMENT_RE.finditer(xsd_text):
        name = match.group("name")
        attrs = match.group("attrs")
        line_start = xsd_text.rfind("\n", 0, match.start()) + 1
        indent = match.start() - line_start
        body_start = match.end()
        # A leaf either self-closes with type="xs:string" or wraps a
        # mixed complexType; containers wrap a plain complexType with a
        # sequence of further elements.
        self_closing = bool(match.group("selfclose"))
        mixed = False
        is_container = False
        if not self_closing:
            closer = xsd_text.find("</xs:element>", body_start)
            body = xsd_text[body_start : closer if closer >= 0 else None]
            inner_element = "<xs:element" in body
            # A container wraps further element declarations; a mixed
            # LEAF wraps only a mixed complexType (a container whose
            # descendants happen to be mixed is still a container).
            is_container = inner_element
            mixed = not inner_element and 'mixed="true"' in body
        min_match = _MIN_RE.search(attrs)
        max_match = _MAX_RE.search(attrs)
        entries.append(
            _XsdElement(
                name=name,
                depth=indent,
                min_occurs=min_match.group(1) if min_match else "1",
                max_occurs=max_match.group(1) if max_match else "1",
                mixed=mixed,
                is_container=is_container,
            )
        )
    return entries


@dataclass
class GuidedOutcome:
    """Result of schema-guided building for one component."""

    spec: ComponentSpec
    outcome: BuildOutcome
    conflicts: list[str]

    @property
    def conforms(self) -> bool:
        return self.outcome.recorded and not self.conflicts


class SchemaGuidedBuilder:
    """Runs the Figure-3 scenario under a pre-existing structure.

    Args:
        builder: an ordinary :class:`MappingRuleBuilder` over the
            working sample.
        template: the declared target structure.
    """

    def __init__(self, builder: MappingRuleBuilder, template: SchemaTemplate):
        self.builder = builder
        self.template = template

    def build(self) -> list[GuidedOutcome]:
        """Build every declared component and validate its properties.

        Conforming rules are recorded under the template's cluster name
        together with its aggregations; non-conforming ones are left in
        the outcome for the user to inspect (the schema, being the
        contract, wins over the learned properties).
        """
        results: list[GuidedOutcome] = []
        for spec in self.template.components:
            outcome = self.builder.build_rule(spec.name)
            conflicts: list[str] = []
            if outcome.rule is not None:
                conflicts = spec.conflicts_with(outcome.rule.component)
            results.append(GuidedOutcome(spec=spec, outcome=outcome,
                                         conflicts=conflicts))
        if all(result.conforms for result in results):
            for aggregation in self.template.aggregations:
                self.builder.repository.record_aggregation(
                    self.template.cluster, aggregation
                )
        return results

    def summary(self, results: Sequence[GuidedOutcome]) -> str:
        lines = []
        for result in results:
            status = "conforms" if result.conforms else (
                f"CONFLICTS: {', '.join(result.conflicts)}"
                if result.conflicts
                else "FAILED to build"
            )
            lines.append(f"{result.spec.name:<20} {status}")
        return "\n".join(lines)
