"""The paper's primary contribution: semi-automated mapping rules.

A *mapping rule* (Section 2.3) formalises the properties of a *page
component* — an information unit recurring across the pages of a *page
cluster*:

=============  =======================================================
Property       Meaning
=============  =======================================================
name           semantic interpretation, supplied by the human operator
optionality    ``mandatory`` / ``optional``
multiplicity   ``single-valued`` / ``multivalued``
format         ``text`` / ``mixed`` (text interleaved with markup)
location       one or more XPath expressions locating component values
=============  =======================================================

This package implements the whole Figure-3 scenario:

* :mod:`repro.core.xpath_builder` — generation of *precise* positional
  XPaths from a selected node, contextual (anchor-based) rewrites, and
  multiplicity broadening;
* :mod:`repro.core.checking` — applying a candidate rule to every page
  of the working sample and classifying the outcome per page (the
  Table-1 view);
* :mod:`repro.core.refinement` — the four refinement strategies of
  Section 3.4;
* :mod:`repro.core.builder` — the semi-automated driver loop
  (candidate → check → refine → record);
* :mod:`repro.core.oracle` — the "human operator" abstraction:
  scripted (ground truth) or interactive (console);
* :mod:`repro.core.repository` — persistent rule repository.
"""

from repro.core.builder import BuildReport, MappingRuleBuilder
from repro.core.checking import (
    CheckOutcome,
    CheckReport,
    CheckRow,
    check_rule,
    render_check_table,
)
from repro.core.component import (
    Format,
    Multiplicity,
    Optionality,
    PageComponent,
    validate_component_name,
)
from repro.core.oracle import (
    InteractiveOracle,
    Oracle,
    ScriptedOracle,
    Selection,
)
from repro.core.refinement import (
    RefinementEngine,
    RefinementTrace,
)
from repro.core.repository import Aggregation, RuleRepository
from repro.core.rule import MappingRule, MatchResult
from repro.core.schema_guided import (
    ComponentSpec,
    SchemaGuidedBuilder,
    SchemaTemplate,
)
from repro.core.xpath_builder import (
    broaden_multiplicity,
    build_contextual_xpath,
    build_precise_xpath,
    deduce_repetitive_tag,
)

__all__ = [
    "Aggregation",
    "ComponentSpec",
    "SchemaTemplate",
    "SchemaGuidedBuilder",
    "PageComponent",
    "Optionality",
    "Multiplicity",
    "Format",
    "validate_component_name",
    "MappingRule",
    "MatchResult",
    "RuleRepository",
    "build_precise_xpath",
    "build_contextual_xpath",
    "broaden_multiplicity",
    "deduce_repetitive_tag",
    "check_rule",
    "render_check_table",
    "CheckReport",
    "CheckRow",
    "CheckOutcome",
    "RefinementEngine",
    "RefinementTrace",
    "MappingRuleBuilder",
    "BuildReport",
    "Oracle",
    "ScriptedOracle",
    "InteractiveOracle",
    "Selection",
]
