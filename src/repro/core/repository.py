"""The rule repository (Section 3.5).

"Once the candidate rule has been validated for the component values in
all the pages of the working sample, it is recorded in a rule
repository.  This repository will be used by external agents, for
instance by the XML extractor."

The repository groups rules by page cluster and optionally stores the
cluster's *enhanced structure* — the a-posteriori aggregation tree of
Section 4 ("the leaf components comments and rating could be embedded
into a higher level component called users-opinion ... this enhanced
structure is recorded in the rule repository").

Persistence is JSON on disk; the format is versioned and stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

from repro.errors import RepositoryError, RuleError, XPathSyntaxError
from repro.core.component import validate_component_name
from repro.core.rule import MappingRule

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Aggregation:
    """An enhanced-structure node: a named group of component names.

    Example: ``Aggregation("users-opinion", ("comments", "rating"))``.
    Groups may nest by referring to other aggregation names.
    """

    name: str
    members: tuple[str, ...]

    def __post_init__(self) -> None:
        validate_component_name(self.name)
        if not self.members:
            raise RepositoryError(f"aggregation {self.name!r} has no members")


class RuleRepository:
    """Validated mapping rules, grouped by page cluster."""

    def __init__(self) -> None:
        self._clusters: dict[str, dict[str, MappingRule]] = {}
        self._aggregations: dict[str, list[Aggregation]] = {}

    # -- recording --------------------------------------------------------- #

    def record(self, cluster: str, rule: MappingRule) -> None:
        """Record ``rule`` for ``cluster``, replacing any same-name rule.

        "Each mapping rule addresses exactly one page component, and,
        conversely, a page component can be mapped by exactly one
        mapping rule" — re-recording a component overwrites.
        """
        self._clusters.setdefault(cluster, {})[rule.name] = rule

    def record_aggregation(self, cluster: str, aggregation: Aggregation) -> None:
        """Record an enhanced-structure grouping for ``cluster``.

        Raises:
            RepositoryError: when a member is neither a recorded
                component nor a previously recorded aggregation.
        """
        known = set(self.component_names(cluster))
        known.update(a.name for a in self._aggregations.get(cluster, []))
        for member in aggregation.members:
            if member not in known:
                raise RepositoryError(
                    f"aggregation {aggregation.name!r} refers to unknown "
                    f"member {member!r}"
                )
        self._aggregations.setdefault(cluster, []).append(aggregation)

    # -- access ------------------------------------------------------------ #

    def clusters(self) -> list[str]:
        return list(self._clusters)

    def rules(self, cluster: str) -> list[MappingRule]:
        """Rules for a cluster, in recording order."""
        if cluster not in self._clusters:
            raise RepositoryError(f"unknown cluster {cluster!r}")
        return list(self._clusters[cluster].values())

    def rule(self, cluster: str, component_name: str) -> MappingRule:
        try:
            return self._clusters[cluster][component_name]
        except KeyError:
            raise RepositoryError(
                f"no rule for component {component_name!r} in cluster "
                f"{cluster!r}"
            ) from None

    def component_names(self, cluster: str) -> list[str]:
        return list(self._clusters.get(cluster, {}))

    def aggregations(self, cluster: str) -> list[Aggregation]:
        return list(self._aggregations.get(cluster, []))

    # -- compilation (service subsystem entry point) ----------------------- #

    def compile_cluster(self, cluster: str, postprocessor=None, automaton=True):
        """Compile one cluster's rules into a :class:`CompiledWrapper`.

        The compiled wrapper is the deployable serving artifact: XPath
        ASTs are pre-parsed, shared location-path prefixes are factored
        so sibling components reuse one DOM walk, and post-processor
        chains are pre-resolved.  With ``automaton=True`` (default)
        eligible locations additionally fuse into a single-pass DOM
        automaton.  See :mod:`repro.service.compiler`.
        """
        from repro.service.compiler import compile_wrapper

        return compile_wrapper(
            self, cluster, postprocessor=postprocessor, automaton=automaton
        )

    def compile_all(self, postprocessor=None, automaton=True) -> dict:
        """Compile every cluster: cluster name -> :class:`CompiledWrapper`."""
        return {
            cluster: self.compile_cluster(
                cluster, postprocessor=postprocessor, automaton=automaton
            )
            for cluster in self.clusters()
        }

    def __len__(self) -> int:
        return sum(len(rules) for rules in self._clusters.values())

    def __iter__(self) -> Iterator[tuple[str, MappingRule]]:
        for cluster, rules in self._clusters.items():
            for rule in rules.values():
                yield cluster, rule

    # -- persistence --------------------------------------------------------#

    def to_dict(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "clusters": {
                cluster: {
                    "rules": [rule.to_dict() for rule in rules.values()],
                    "aggregations": [
                        {"name": a.name, "members": list(a.members)}
                        for a in self._aggregations.get(cluster, [])
                    ],
                }
                for cluster, rules in self._clusters.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RuleRepository":
        if not isinstance(data, dict):
            raise RepositoryError(
                f"repository payload must be a JSON object, "
                f"got {type(data).__name__}"
            )
        version = data.get("version")
        if version != _FORMAT_VERSION:
            raise RepositoryError(f"unsupported repository version {version!r}")
        repository = cls()
        clusters = data.get("clusters", {})
        if not isinstance(clusters, dict):
            raise RepositoryError("'clusters' must be a JSON object")
        for cluster, payload in clusters.items():
            try:
                for rule_data in payload.get("rules", []):
                    repository.record(cluster, MappingRule.from_dict(rule_data))
                for agg in payload.get("aggregations", []):
                    repository.record_aggregation(
                        cluster, Aggregation(agg["name"], tuple(agg["members"]))
                    )
            except RepositoryError:
                raise
            except (
                AttributeError,
                KeyError,
                TypeError,
                ValueError,
                RuleError,
                XPathSyntaxError,
            ) as exc:
                raise RepositoryError(
                    f"malformed payload for cluster {cluster!r}: {exc}"
                ) from exc
        return repository

    def save(self, path: Union[str, Path]) -> None:
        """Write the repository as JSON to ``path``."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RuleRepository":
        """Read a repository previously written by :meth:`save`.

        Raises:
            RepositoryError: on malformed content or version mismatch.
        """
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RepositoryError(f"cannot load repository: {exc}") from exc
        return cls.from_dict(data)
