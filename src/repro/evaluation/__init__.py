"""Evaluation: metrics, experiments, and the paper's qualitative audit.

* :mod:`repro.evaluation.metrics` — per-component precision / recall /
  F1 of extracted values against ground truth;
* :mod:`repro.evaluation.convergence` — accuracy vs working-sample size
  (Section 3.1's "rules converge after the analysis of about 5 pages");
* :mod:`repro.evaluation.experiments` — the drift-resilience study, the
  nesting-depth ablation (Section 7), and the baseline comparison
  (Section 6);
* :mod:`repro.evaluation.features_audit` — the Table-4 feature audit,
  computed from the implementation instead of asserted;
* :mod:`repro.evaluation.tables` — fixed-width table rendering shared
  by benchmarks and examples.
"""

from repro.evaluation.metrics import (
    ComponentScore,
    EvaluationSummary,
    evaluate_extraction,
    score_values,
)
from repro.evaluation.convergence import ConvergencePoint, convergence_study
from repro.evaluation.features_audit import FeatureAudit, audit_features
from repro.evaluation.tables import format_table
from repro.evaluation.experiments import (
    baseline_comparison,
    drift_resilience_study,
    nesting_depth_study,
)

__all__ = [
    "ComponentScore",
    "EvaluationSummary",
    "evaluate_extraction",
    "score_values",
    "convergence_study",
    "ConvergencePoint",
    "audit_features",
    "FeatureAudit",
    "format_table",
    "baseline_comparison",
    "drift_resilience_study",
    "nesting_depth_study",
]
