"""Sample-size convergence study (Section 3.1).

"Practice has shown that a sample of about ten randomly selected pages
usually includes most of these variants.  Other works [6] report that
mapping rules converge after the analysis of about 5 pages."

The study builds rules from working samples of increasing size and
measures extraction F1 on the *held-out* rest of the cluster, averaged
over several seeds.  The expected shape: low accuracy at size 1 (a
candidate rule from a single positive example is "frequently too
specific"), convergence near 1.0 by about five pages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import Oracle, ScriptedOracle
from repro.core.repository import RuleRepository
from repro.errors import ExtractionError
from repro.extraction.extractor import ExtractionProcessor
from repro.evaluation.metrics import EvaluationSummary, evaluate_extraction
from repro.sites.page import WebPage


@dataclass
class ConvergencePoint:
    """Mean scores for one working-sample size."""

    sample_size: int
    mean_f1: float
    mean_precision: float
    mean_recall: float
    mean_refinements: float
    runs: int


def build_and_evaluate(
    pages: Sequence[WebPage],
    sample: Sequence[WebPage],
    component_names: Sequence[str],
    oracle: Optional[Oracle] = None,
    seed: int = 0,
    prefer_contextual: bool = True,
) -> tuple[EvaluationSummary, int]:
    """Build rules on ``sample``, evaluate on ``pages`` minus sample.

    Returns the evaluation summary and the number of refinement steps
    performed.  Components that fail to validate simply stay missing
    from the repository — they score zero recall, which is the honest
    accounting for a rule the scenario could not produce.
    """
    oracle = oracle if oracle is not None else ScriptedOracle()
    repository = RuleRepository()
    builder = MappingRuleBuilder(
        sample,
        oracle,
        repository=repository,
        cluster_name="study",
        seed=seed,
        prefer_contextual=prefer_contextual,
    )
    report = builder.build_all(component_names)
    refinements = sum(len(outcome.trace.steps) for outcome in report.outcomes)
    held_out = [page for page in pages if page not in sample]
    if not held_out:
        held_out = list(pages)
    summary = EvaluationSummary()
    try:
        processor = ExtractionProcessor(repository, "study")
    except ExtractionError:
        processor = None
    if processor is not None:
        result = processor.extract(held_out)
        summary = evaluate_extraction(result, held_out, None)
    # Score unbuilt components as fully missed.
    extracted_names = set(repository.component_names("study"))
    for name in component_names:
        if name in extracted_names:
            continue
        for page in held_out:
            expected = page.expected_values(name)
            if expected is not None:
                summary.score(name).add(expected, [])
    return summary, refinements


def convergence_study(
    pages: Sequence[WebPage],
    component_names: Sequence[str],
    sample_sizes: Sequence[int] = tuple(range(1, 11)),
    seeds: Sequence[int] = tuple(range(10)),
    oracle: Optional[Oracle] = None,
) -> list[ConvergencePoint]:
    """Mean extraction quality as a function of working-sample size."""
    points: list[ConvergencePoint] = []
    for size in sample_sizes:
        f1_values: list[float] = []
        precision_values: list[float] = []
        recall_values: list[float] = []
        refinement_counts: list[float] = []
        for seed in seeds:
            rng = random.Random(seed)
            sample = (
                list(pages)
                if size >= len(pages)
                else rng.sample(list(pages), size)
            )
            summary, refinements = build_and_evaluate(
                pages, sample, component_names, oracle=oracle, seed=seed
            )
            f1_values.append(summary.micro_f1)
            precision_values.append(summary.micro_precision)
            recall_values.append(summary.micro_recall)
            refinement_counts.append(float(refinements))
        runs = len(seeds)
        points.append(
            ConvergencePoint(
                sample_size=size,
                mean_f1=sum(f1_values) / runs,
                mean_precision=sum(precision_values) / runs,
                mean_recall=sum(recall_values) / runs,
                mean_refinements=sum(refinement_counts) / runs,
                runs=runs,
            )
        )
    return points
