"""Fixed-width table rendering shared by benchmarks and examples.

The benchmark harness prints the same rows the paper's tables report;
this module provides the single formatting routine they share so the
output stays uniform.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
    align_right: Optional[Sequence[int]] = None,
) -> str:
    """Render a fixed-width ASCII table.

    Args:
        headers: column headers.
        rows: row cells (converted with ``str``).
        title: optional title line above the table.
        align_right: indices of right-aligned (numeric) columns.

    Example:
        >>> print(format_table(["a", "b"], [["1", "22"]]))
        a | b
        --+---
        1 | 22
    """
    right = set(align_right or ())
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))

    def render_row(cells: Sequence[str]) -> str:
        rendered = []
        for index, width in enumerate(widths):
            cell = cells[index] if index < len(cells) else ""
            if index in right:
                rendered.append(cell.rjust(width))
            else:
                rendered.append(cell.ljust(width))
        return " | ".join(rendered).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
