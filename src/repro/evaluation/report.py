"""One-shot reproduction report.

Runs every experiment of the reproduction (the four tables, the
quantified studies) and renders a single markdown report — the
generator behind EXPERIMENTS.md's measured numbers.  Intended for
regenerating the record after changes:

    python -m repro.evaluation.report > report.md

Sizes are parameterisable so CI can run a quick pass and a nightly can
run the full one.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

from repro.core.builder import MappingRuleBuilder
from repro.core.checking import check_rule, render_check_table
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.extraction.xml_writer import write_cluster_xml
from repro.evaluation.convergence import convergence_study
from repro.evaluation.experiments import (
    baseline_comparison,
    drift_resilience_study,
    nesting_depth_study,
)
from repro.evaluation.features_audit import audit_features
from repro.evaluation.tables import format_table
from repro.sites.imdb import ImdbOptions, generate_imdb_site, make_paper_sample


@dataclass
class ReportOptions:
    """Experiment sizes (defaults match EXPERIMENTS.md)."""

    cluster_pages: int = 30
    convergence_seeds: int = 6
    comparison_pages: int = 30
    drift_pages: int = 24
    depth_pages: int = 24
    seed: int = 7


def generate_report(options: ReportOptions | None = None) -> str:
    """Run all experiments and return the markdown report."""
    options = options or ReportOptions()
    out = io.StringIO()

    def section(title: str) -> None:
        out.write(f"\n## {title}\n\n")

    out.write("# Reproduction report — Estiévenart et al., ICDE WS 2006\n")

    # -- Tables 1 and 3 ------------------------------------------------- #
    sample = make_paper_sample()
    oracle = ScriptedOracle()
    repository = RuleRepository()
    builder = MappingRuleBuilder(
        sample, oracle, repository=repository,
        cluster_name="imdb-movies", seed=1,
    )
    candidate = builder.candidate_from_selection(
        "runtime", oracle.select_value(sample[0], "runtime")
    )
    section("Table 1 — candidate rule checking")
    out.write("```\n" + render_check_table(
        check_rule(candidate, sample, oracle)) + "\n```\n")

    rule, report, trace = builder.engine.refine(candidate, sample)
    section("Table 3 — after refinement")
    out.write(f"strategies: {trace.strategies_used}\n\n")
    out.write("```\n" + render_check_table(report) + "\n```\n")

    # -- Figure 5 --------------------------------------------------------- #
    repository.record("imdb-movies", rule)
    processor = ExtractionProcessor(repository, "imdb-movies")
    section("Figure 5 — generated XML")
    out.write("```xml\n" + write_cluster_xml(
        processor.extract(sample), repository) + "\n```\n")

    # -- Table 4 ------------------------------------------------------------#
    section("Table 4 — feature audit")
    audit = audit_features(n_pages=12, seed=21)
    out.write("```\n" + format_table(
        ["Feature", "Value", "Verified", "Argumentation"],
        [row.row() for row in audit.rows],
    ) + "\n```\n")

    # -- Convergence --------------------------------------------------------#
    section("Convergence — F1 vs working-sample size")
    site = generate_imdb_site(
        options=ImdbOptions(n_pages=options.cluster_pages, seed=options.seed)
    )
    pages = site.pages_with_hint("imdb-movies")
    points = convergence_study(
        pages,
        ["runtime", "director", "aka", "language", "genres"],
        sample_sizes=(1, 2, 3, 5, 8, 10),
        seeds=tuple(range(options.convergence_seeds)),
    )
    out.write("```\n" + format_table(
        ["sample size", "mean F1", "mean P", "mean R", "mean refinements"],
        [
            [str(p.sample_size), f"{p.mean_f1:.3f}", f"{p.mean_precision:.3f}",
             f"{p.mean_recall:.3f}", f"{p.mean_refinements:.1f}"]
            for p in points
        ],
        align_right=[0, 1, 2, 3, 4],
    ) + "\n```\n")

    # -- Baselines ------------------------------------------------------------#
    section("Baseline comparison — targeted extraction")
    results = baseline_comparison(n_pages=options.comparison_pages,
                                  seed=11, train_size=10)
    out.write("```\n" + format_table(
        ["system", "precision", "recall", "F1", "note"],
        [r.row() for r in results],
        align_right=[1, 2, 3],
    ) + "\n```\n")

    # -- Drift ------------------------------------------------------------------#
    section("Resilience — F1 before/after wrapper drift")
    drift = drift_resilience_study(n_pages=options.drift_pages, seed=5)
    out.write("```\n" + format_table(
        ["rule style", "F1 before drift", "F1 after drift"],
        [d.row() for d in drift],
        align_right=[1, 2],
    ) + "\n```\n")

    # -- Depth ---------------------------------------------------------------- #
    section("Ablation — F1 vs structural granularity")
    depth = nesting_depth_study(n_pages=options.depth_pages, seed=9)
    out.write("```\n" + format_table(
        ["depth", "micro-F1", "rules built"],
        [d.row() for d in depth],
        align_right=[0, 1],
    ) + "\n```\n")

    return out.getvalue()


def main() -> int:  # pragma: no cover - thin CLI shim
    print(generate_report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
