"""The Table-4 feature audit, computed rather than asserted.

The paper evaluates Retrozilla against the tool-characterisation
criteria of Laender et al. [11]: degree of automation, support for
complex objects, page content, ease of use, XML output, support for
non-HTML sources, resilience/adaptiveness.  Each row here is backed by
a *probe*: a small end-to-end run whose outcome verifies the claimed
value on this implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import MappingRuleBuilder
from repro.core.component import PageComponent
from repro.core.oracle import ScriptedOracle
from repro.core.repository import Aggregation, RuleRepository
from repro.extraction.extractor import ExtractionProcessor
from repro.extraction.schema import generate_xml_schema
from repro.extraction.xml_writer import write_cluster_xml
from repro.evaluation.metrics import evaluate_extraction
from repro.sites.imdb import ImdbOptions, generate_imdb_site
from repro.sites.variation import drift_site


@dataclass
class FeatureRow:
    feature: str
    value: str
    argumentation: str
    verified: bool

    def row(self) -> list[str]:
        return [
            self.feature,
            self.value,
            "yes" if self.verified else "NO",
            self.argumentation,
        ]


@dataclass
class FeatureAudit:
    rows: list[FeatureRow] = field(default_factory=list)

    @property
    def all_verified(self) -> bool:
        return all(row.verified for row in self.rows)


def audit_features(n_pages: int = 16, seed: int = 21) -> FeatureAudit:
    """Run the probes and assemble the Table-4 rows."""
    options = ImdbOptions(n_pages=n_pages, seed=seed)
    site = generate_imdb_site(options=options)
    pages = site.pages_with_hint("imdb-movies")
    sample = pages[:6]
    oracle = ScriptedOracle()
    repository = RuleRepository()
    builder = MappingRuleBuilder(
        sample, oracle, repository=repository, cluster_name="imdb-movies", seed=seed
    )
    components = ["title", "runtime", "rating", "comment", "genres"]
    report = builder.build_all(components)
    processor = ExtractionProcessor(repository, "imdb-movies")
    extraction = processor.extract(pages)

    audit = FeatureAudit()

    # Automation: Semi — user supplies selections/names; XPaths and
    # refinements are computed.  Probe: every recorded rule required at
    # least one oracle selection, and the builder produced its location
    # automatically (no location appears in any user input).
    user_inputs = len(components)  # one selection+interpretation each
    automatic_locations = all(
        rule.primary_location for rule in report.recorded_rules
    )
    audit.rows.append(
        FeatureRow(
            "Automation",
            "Semi",
            "rules are based on both user intervention and automatic computing",
            user_inputs > 0 and automatic_locations,
        )
    )

    # Complex objects: Yes — a-posteriori aggregation produces nested
    # elements in the export.
    repository.record_aggregation(
        "imdb-movies", Aggregation("users-opinion", ("comment", "rating"))
    )
    xml = write_cluster_xml(
        ExtractionProcessor(repository, "imdb-movies").extract(pages[:2]),
        repository,
    )
    audit.rows.append(
        FeatureRow(
            "Complex objects",
            "Yes",
            "a posteriori definition of complex components",
            "<users-opinion>" in xml and "<rating>" in xml,
        )
    )

    # Page content: Data — near-perfect extraction on the data-oriented
    # cluster.
    f1 = evaluate_extraction(extraction, pages, components).micro_f1
    audit.rows.append(
        FeatureRow(
            "Page content",
            "Data",
            "XPath expressions are best suited to data-oriented documents",
            f1 > 0.95,
        )
    )

    # Ease of use: Easy — the only user inputs are one selection and one
    # name per component; no XPath is ever typed by the user.
    audit.rows.append(
        FeatureRow(
            "Ease of use",
            "Easy",
            "user intervention in a browser view; no technical skills required",
            user_inputs == len(components),
        )
    )

    # XML output: Yes — document plus schema are generated.
    schema = generate_xml_schema(repository, "imdb-movies")
    audit.rows.append(
        FeatureRow(
            "Xml output",
            "Yes",
            "the extraction of data towards XML is already supported",
            xml.startswith("<?xml") and "xs:schema" in schema,
        )
    )

    # Non-HTML: Could be — the first four rule properties are
    # model-independent (no HTML anywhere in PageComponent).
    component = PageComponent("probe")
    model_independent = not any(
        "html" in str(value).lower() for value in component.to_dict().values()
    )
    audit.rows.append(
        FeatureRow(
            "Non-HTML",
            "Could be",
            "mapping rules could be adapted to other source formats",
            model_independent,
        )
    )

    # Resilience/adaptiveness: No — drift degrades extraction and no
    # automatic repair happens.
    drifted = drift_site(options).pages_with_hint("imdb-movies")
    drift_f1 = evaluate_extraction(
        processor.extract(drifted), drifted, components
    ).micro_f1
    audit.rows.append(
        FeatureRow(
            "Resilience/adaptiveness",
            "No",
            "changes over time are not automatically detected",
            drift_f1 <= f1,
        )
    )
    return audit
