"""The quantified experiments behind the paper's qualitative claims.

* :func:`baseline_comparison` — Section 6: targeted semi-automatic
  rules vs automatic grammar inference (RoadRunner / EXALG) vs LR
  wrapper induction;
* :func:`drift_resilience_study` — Table 4's "Resilience/adaptiveness:
  No", and the value of contextual anchors under structural drift;
* :func:`nesting_depth_study` — Section 7: "empirically more effective
  on fine-grained HTML structures ... than on poorly structured
  documents".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.exalg import ExalgWrapper
from repro.baselines.lr_wrapper import LRWrapper
from repro.baselines.roadrunner import RoadRunnerWrapper
from repro.core.builder import MappingRuleBuilder
from repro.core.oracle import ScriptedOracle
from repro.core.repository import RuleRepository
from repro.errors import ExtractionError
from repro.extraction.extractor import ExtractionProcessor
from repro.evaluation.convergence import build_and_evaluate
from repro.evaluation.metrics import (
    ComponentScore,
    EvaluationSummary,
    evaluate_extraction,
)
from repro.sites.imdb import ImdbOptions, generate_imdb_site
from repro.sites.variation import (
    DEPTH_COMPONENTS,
    MAX_DEPTH,
    drift_site,
    generate_depth_cluster,
)


@dataclass
class SystemScore:
    """One system's micro scores in a comparison experiment."""

    system: str
    precision: float
    recall: float
    f1: float
    note: str = ""

    def row(self) -> list[str]:
        return [
            self.system,
            f"{self.precision:.3f}",
            f"{self.recall:.3f}",
            f"{self.f1:.3f}",
            self.note,
        ]


# --------------------------------------------------------------------- #
# Baseline comparison (Section 6)
# --------------------------------------------------------------------- #


def baseline_comparison(
    n_pages: int = 40,
    seed: int = 11,
    components: Sequence[str] = (
        "title",
        "runtime",
        "director",
        "country",
        "genres",
    ),
    train_size: int = 10,
) -> list[SystemScore]:
    """Compare Retrozilla rules against the Section-6 baselines.

    All systems train on the same ``train_size`` pages and are scored on
    the held-out rest, against the *targeted* components only — the
    scenario the paper's flexibility argument is about.
    """
    site = generate_imdb_site(options=ImdbOptions(n_pages=n_pages, seed=seed))
    pages = site.pages_with_hint("imdb-movies")
    train, test = pages[:train_size], pages[train_size:]

    results: list[SystemScore] = []

    # Retrozilla (this paper).
    summary, _ = build_and_evaluate(pages, train, components, seed=seed)
    results.append(
        SystemScore(
            "retrozilla",
            summary.micro_precision,
            summary.micro_recall,
            summary.micro_f1,
            "semi-automatic, targeted",
        )
    )

    # LR wrapper (supervised, string-level).
    lr = LRWrapper.induce(train, components)
    lr_summary = EvaluationSummary()
    for page in test:
        extracted = lr.extract(page)
        for name in components:
            expected = page.expected_values(name)
            if expected is None:
                continue
            lr_summary.score(name).add(expected, extracted.get(name, []))
    results.append(
        SystemScore(
            "lr-wrapper",
            lr_summary.micro_precision,
            lr_summary.micro_recall,
            lr_summary.micro_f1,
            "supervised, string delimiters",
        )
    )

    # Automatic systems: untargeted chunks vs targeted values.
    for name, wrapper in (
        ("roadrunner", RoadRunnerWrapper.induce(train)),
        ("exalg", ExalgWrapper.induce(train)),
    ):
        score = ComponentScore(name)
        for page in test:
            targeted: list[str] = []
            for component in components:
                targeted.extend(page.expected_values(component) or [])
            score.add(targeted, wrapper.extract(page))
        results.append(
            SystemScore(
                name,
                score.precision,
                score.recall,
                score.f1,
                "automatic, extracts all varying chunks",
            )
        )
    return results


# --------------------------------------------------------------------- #
# Drift resilience (Table 4, last row)
# --------------------------------------------------------------------- #


@dataclass
class DriftResult:
    variant: str            # "positional" | "contextual"
    f1_before_drift: float
    f1_after_drift: float

    def row(self) -> list[str]:
        return [
            self.variant,
            f"{self.f1_before_drift:.3f}",
            f"{self.f1_after_drift:.3f}",
        ]


def drift_resilience_study(
    n_pages: int = 30,
    seed: int = 5,
    components: Sequence[str] = (
        "runtime",
        "country",
        "language",
        "director",
        "title",
    ),
    sample_size: int = 8,
) -> list[DriftResult]:
    """Extraction quality before/after wrapper drift, per rule style.

    Rules are built once on the un-drifted cluster, then applied to the
    drifted re-rendering of the *same data*.  ``prefer_contextual``
    toggles the paper's contextual-information strategy; with it off the
    engine leans on positional alternatives only (the ablation).
    """
    options = ImdbOptions(n_pages=n_pages, seed=seed)
    site = generate_imdb_site(options=options)
    pages = site.pages_with_hint("imdb-movies")
    drifted_pages = drift_site(options).pages_with_hint("imdb-movies")
    sample = pages[:sample_size]
    oracle = ScriptedOracle()

    results: list[DriftResult] = []
    for variant, enable_contextual in (("positional", False), ("contextual", True)):
        repository = RuleRepository()
        builder = MappingRuleBuilder(
            sample,
            oracle,
            repository=repository,
            cluster_name="imdb-movies",
            seed=seed,
            enable_contextual=enable_contextual,
        )
        builder.build_all(components)
        try:
            processor = ExtractionProcessor(repository, "imdb-movies")
        except ExtractionError:
            results.append(DriftResult(variant, 0.0, 0.0))
            continue
        before = evaluate_extraction(
            processor.extract(pages), pages, components
        ).micro_f1
        after = evaluate_extraction(
            processor.extract(drifted_pages), drifted_pages, components
        ).micro_f1
        results.append(DriftResult(variant, before, after))
    return results


# --------------------------------------------------------------------- #
# Nesting-depth ablation (Section 7)
# --------------------------------------------------------------------- #


@dataclass
class DepthResult:
    depth: int
    f1: float
    rules_built: int
    rules_total: int

    def row(self) -> list[str]:
        return [
            str(self.depth),
            f"{self.f1:.3f}",
            f"{self.rules_built}/{self.rules_total}",
        ]


def nesting_depth_study(
    n_pages: int = 30,
    seed: int = 9,
    sample_size: int = 8,
    depths: Sequence[int] = tuple(range(MAX_DEPTH + 1)),
) -> list[DepthResult]:
    """Extraction quality vs structural granularity of the cluster."""
    results: list[DepthResult] = []
    for depth in depths:
        pages = generate_depth_cluster(depth, n_pages=n_pages, seed=seed)
        sample = pages[:sample_size]
        oracle = ScriptedOracle()
        repository = RuleRepository()
        builder = MappingRuleBuilder(
            sample,
            oracle,
            repository=repository,
            cluster_name=f"depth-{depth}",
            seed=seed,
        )
        report = builder.build_all(DEPTH_COMPONENTS)
        summary, _ = build_and_evaluate(
            pages, sample, DEPTH_COMPONENTS, seed=seed
        )
        results.append(
            DepthResult(
                depth=depth,
                f1=summary.micro_f1,
                rules_built=len(report.recorded_rules),
                rules_total=len(DEPTH_COMPONENTS),
            )
        )
    return results
