"""Extraction quality metrics.

Values are compared after whitespace normalisation.  Multisets are used
(an extractor that returns a correct value twice is penalised on
precision), and per-component scores aggregate micro-averaged across
pages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.rule import normalize_value
from repro.extraction.extractor import ExtractionResult
from repro.sites.page import WebPage


@dataclass
class ComponentScore:
    """Micro-averaged precision/recall/F1 for one component."""

    component: str
    true_positives: int = 0
    extracted_total: int = 0
    expected_total: int = 0

    @property
    def precision(self) -> float:
        if self.extracted_total == 0:
            return 1.0 if self.expected_total == 0 else 0.0
        return self.true_positives / self.extracted_total

    @property
    def recall(self) -> float:
        if self.expected_total == 0:
            return 1.0
        return self.true_positives / self.expected_total

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def add(self, expected: Sequence[str], extracted: Sequence[str]) -> None:
        """Accumulate one page's values (multiset overlap)."""
        expected_counts = Counter(normalize_value(v) for v in expected)
        extracted_counts = Counter(normalize_value(v) for v in extracted)
        overlap = sum((expected_counts & extracted_counts).values())
        self.true_positives += overlap
        self.extracted_total += sum(extracted_counts.values())
        self.expected_total += sum(expected_counts.values())


@dataclass
class EvaluationSummary:
    """Scores for all components plus micro/macro aggregates."""

    scores: dict[str, ComponentScore] = field(default_factory=dict)

    def score(self, component: str) -> ComponentScore:
        if component not in self.scores:
            self.scores[component] = ComponentScore(component)
        return self.scores[component]

    @property
    def macro_f1(self) -> float:
        if not self.scores:
            return 0.0
        return sum(score.f1 for score in self.scores.values()) / len(self.scores)

    @property
    def micro_f1(self) -> float:
        total = ComponentScore("__micro__")
        for score in self.scores.values():
            total.true_positives += score.true_positives
            total.extracted_total += score.extracted_total
            total.expected_total += score.expected_total
        return total.f1

    @property
    def micro_precision(self) -> float:
        tp = sum(s.true_positives for s in self.scores.values())
        ex = sum(s.extracted_total for s in self.scores.values())
        if ex == 0:
            return 1.0 if all(s.expected_total == 0 for s in self.scores.values()) else 0.0
        return tp / ex

    @property
    def micro_recall(self) -> float:
        tp = sum(s.true_positives for s in self.scores.values())
        expected = sum(s.expected_total for s in self.scores.values())
        if expected == 0:
            return 1.0
        return tp / expected

    def rows(self) -> list[list[str]]:
        """Table rows: component, P, R, F1 (for the report tables)."""
        out = [
            [
                name,
                f"{score.precision:.3f}",
                f"{score.recall:.3f}",
                f"{score.f1:.3f}",
            ]
            for name, score in sorted(self.scores.items())
        ]
        out.append(
            [
                "micro-avg",
                f"{self.micro_precision:.3f}",
                f"{self.micro_recall:.3f}",
                f"{self.micro_f1:.3f}",
            ]
        )
        return out


def score_values(
    component: str,
    pairs: Iterable[tuple[Sequence[str], Sequence[str]]],
) -> ComponentScore:
    """Score (expected, extracted) pairs for one component."""
    score = ComponentScore(component)
    for expected, extracted in pairs:
        score.add(expected, extracted)
    return score


def evaluate_extraction(
    result: ExtractionResult,
    pages: Sequence[WebPage],
    component_names: Optional[Sequence[str]] = None,
) -> EvaluationSummary:
    """Score an extraction run against the pages' ground truth.

    Args:
        result: extractor output (pages in the same order as ``pages``).
        pages: the ground-truth-bearing pages.
        component_names: restrict scoring to these components; default
            is every component present in the extraction output.
    """
    summary = EvaluationSummary()
    by_url = {page.url: page for page in pages}
    for extracted_page in result.pages:
        page = by_url.get(extracted_page.url)
        if page is None:
            continue
        names = component_names or list(extracted_page.values)
        for name in names:
            expected = page.expected_values(name)
            if expected is None:
                continue
            summary.score(name).add(expected, extracted_page.get(name))
    return summary


def untargeted_scores(
    targeted_values: Sequence[str],
    extracted_chunks: Sequence[str],
) -> tuple[float, float, float]:
    """(precision, recall, F1) of an *untargeted* extractor's chunks
    against the targeted value set — used to compare RoadRunner/EXALG
    output ("all varying chunks") to what the user actually wanted."""
    score = ComponentScore("__untargeted__")
    score.add(targeted_values, extracted_chunks)
    return score.precision, score.recall, score.f1
