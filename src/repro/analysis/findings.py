"""The analyzer's finding model and declared error-code catalogue.

Every defect the rule-set static analyzer (:mod:`repro.analysis`) can
report is declared **once**, here, in :data:`LINT_SPECS` — the same
single-source-of-truth pattern the metrics layer uses for its series
catalogue (:data:`repro.service.metrics.METRIC_SPECS`).  Analyzer code
cannot emit an undeclared code: every :class:`Finding` is built
through :func:`make_finding`, which resolves the code's severity and
fix hint from the catalogue and raises ``KeyError`` for anything not
declared.  ``docs/lint.md`` is generated from the same catalogue
(:func:`render_lint_table`) with a byte-identity sync test, so the
operator reference can never drift from what the analyzer ships.

Severity semantics:

* ``error`` — the artifact is defective: it will extract wrong data,
  route ambiguously, or fail integrity checks.  Error findings refuse
  ``registry publish`` unless ``--allow-findings`` is passed.
* ``warning`` — almost certainly an induction defect (dead rule parts,
  colliding rules) but the artifact still serves; fails ``lint`` at
  the default gate without blocking deploys.
* ``info`` — performance or eligibility diagnostics; never gates.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Finding",
    "LINT_SPECS",
    "LintSpec",
    "SEVERITIES",
    "gate_findings",
    "make_finding",
    "parse_report",
    "render_report",
    "render_lint_table",
    "render_text",
    "sort_findings",
    "spec_for",
    "worst_severity",
]

#: Severity levels, mildest first (the index is the gate ordering).
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

_SEVERITY_RANK: Dict[str, int] = {
    name: rank for rank, name in enumerate(SEVERITIES)
}


@dataclass(frozen=True)
class LintSpec:
    """One declared analyzer code: identity, severity and meaning.

    Attributes:
        code: stable ``RW###`` identifier (never renumbered; retired
            codes are removed, not reused).
        severity: ``error`` / ``warning`` / ``info`` — fixed per code.
        title: short defect name (the docs table's "meaning" column
            lead-in; findings carry a specific ``message`` besides).
        hint: the one-line fix hint every finding of this code carries.
    """

    code: str
    severity: str
    title: str
    hint: str


LINT_SPECS: Tuple[LintSpec, ...] = (
    LintSpec(
        "RW101", "error",
        "unsatisfiable position predicate",
        "drop the predicate or use a 1-based position the step can "
        "actually take (positions are integers >= 1)",
    ),
    LintSpec(
        "RW102", "error",
        "provably-void step",
        "remove the steps after the text()/comment() step; text and "
        "comment nodes have no children or attributes to select",
    ),
    LintSpec(
        "RW201", "warning",
        "dead/shadowed alternative",
        "delete the alternative: an earlier location of the same rule "
        "selects exactly the same nodes, so it can never contribute",
    ),
    LintSpec(
        "RW202", "warning",
        "duplicate location across rules",
        "re-induce one of the rules: two components mapping the same "
        "location extract the same nodes under two names",
    ),
    LintSpec(
        "RW301", "info",
        "automaton-ineligible location",
        "rewrite as a relative child-axis path with at most one "
        "positional predicate per step to ride the single-pass scan",
    ),
    LintSpec(
        "RW302", "info",
        "estimated scan-cost outlier",
        "shorten the path or replace descendant-axis scans with "
        "explicit child steps; this location dominates the cluster's "
        "per-page evaluation cost",
    ),
    LintSpec(
        "RW401", "error",
        "router signature collision / ambiguous cluster margin",
        "refit the router with more distinctive exemplars or merge the "
        "clusters; indistinguishable profiles route traffic by tie-break",
    ),
    LintSpec(
        "RW501", "error",
        "registry artifact integrity drift",
        "republish the artifact or roll back to a healthy version; the "
        "stored bytes no longer match their recorded content hash",
    ),
)

_SPEC_BY_CODE: Dict[str, LintSpec] = {spec.code: spec for spec in LINT_SPECS}


def spec_for(code: str) -> LintSpec:
    """The declared spec of ``code``.

    Raises:
        KeyError: when ``code`` is not declared in :data:`LINT_SPECS` —
            an undeclared finding cannot exist.
    """
    spec = _SPEC_BY_CODE.get(code)
    if spec is None:
        raise KeyError(
            f"analyzer code {code!r} is not declared "
            "(see LINT_SPECS in repro.analysis.findings)"
        )
    return spec


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, fully self-describing.

    Attributes:
        code: declared ``RW###`` code.
        severity: the code's declared severity (denormalised so a
            parsed report needs no catalogue lookup).
        message: what is wrong, specifically, at this site.
        target: the artifact examined (file path, registry version id,
            or ``""`` for in-memory analysis).
        cluster: cluster name the finding belongs to (``""`` for
            router/registry-level findings).
        rule: component name of the offending rule (``""`` when the
            finding is not rule-scoped).
        location: the offending XPath location, profile name, or
            registry file (``""`` when not applicable).
        hint: the code's one-line fix hint.
    """

    code: str
    severity: str
    message: str
    target: str = ""
    cluster: str = ""
    rule: str = ""
    location: str = ""
    hint: str = ""

    def to_dict(self) -> dict:
        """The JSON object form (machine output; round-trips exactly)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown finding field(s): {', '.join(unknown)}")
        return cls(**data)

    @property
    def scope(self) -> str:
        """The human rendering's ``target:cluster/rule`` prefix."""
        parts = [part for part in (self.cluster, self.rule) if part]
        scope = "/".join(parts)
        if self.target:
            scope = f"{self.target}:{scope}" if scope else self.target
        return scope


def make_finding(
    code: str,
    message: str,
    target: str = "",
    cluster: str = "",
    rule: str = "",
    location: str = "",
) -> Finding:
    """Build a finding for a declared code (severity/hint from the spec)."""
    spec = spec_for(code)
    return Finding(
        code=code,
        severity=spec.severity,
        message=message,
        target=target,
        cluster=cluster,
        rule=rule,
        location=location,
        hint=spec.hint,
    )


# --------------------------------------------------------------------- #
# Ordering, gating
# --------------------------------------------------------------------- #


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Stable severity-first ordering (then code, then scope)."""
    return sorted(
        findings,
        key=lambda f: (
            -_SEVERITY_RANK.get(f.severity, 0),
            f.code,
            f.target,
            f.cluster,
            f.rule,
            f.location,
        ),
    )


def worst_severity(findings: Iterable[Finding]) -> Optional[str]:
    """The most severe level present, or ``None`` for no findings."""
    worst = None
    for finding in findings:
        if worst is None or (
            _SEVERITY_RANK[finding.severity] > _SEVERITY_RANK[worst]
        ):
            worst = finding.severity
    return worst


def gate_findings(
    findings: Iterable[Finding], gate: str = "warning"
) -> List[Finding]:
    """The findings at or above ``gate`` severity (the lint exit gate).

    Raises:
        ValueError: for a gate level outside :data:`SEVERITIES`.
    """
    if gate not in _SEVERITY_RANK:
        raise ValueError(
            f"unknown severity gate {gate!r}; pick one of "
            f"{', '.join(SEVERITIES)}"
        )
    floor = _SEVERITY_RANK[gate]
    return [f for f in findings if _SEVERITY_RANK[f.severity] >= floor]


# --------------------------------------------------------------------- #
# Rendering: human text, machine JSON, docs table
# --------------------------------------------------------------------- #


def render_text(findings: Iterable[Finding]) -> str:
    """Human output: one ``CODE [severity] scope — message`` line each.

    Findings come out severity-first; the fix hint rides each line so
    an operator reading a deploy refusal knows the next move without
    opening ``docs/lint.md``.
    """
    lines = []
    for finding in sort_findings(findings):
        scope = finding.scope
        where = f" {scope}" if scope else ""
        at = f" @ {finding.location}" if finding.location else ""
        lines.append(
            f"{finding.code} [{finding.severity}]{where}{at}: "
            f"{finding.message} (fix: {finding.hint})"
        )
    return "\n".join(lines)


def render_report(
    findings: Iterable[Finding], gate: str = "warning"
) -> str:
    """Machine output: one JSON document (parse with :func:`parse_report`)."""
    ordered = sort_findings(findings)
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in ordered:
        counts[finding.severity] += 1
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in ordered],
            "counts": counts,
            "gate": gate,
            "clean": not gate_findings(ordered, gate),
        },
        indent=2,
        sort_keys=True,
    )


def parse_report(text: str) -> List[Finding]:
    """The findings inside a :func:`render_report` document.

    Raises:
        ValueError: malformed document or unknown finding fields.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not a lint report: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(
        data.get("findings"), list
    ):
        raise ValueError("not a lint report: missing 'findings' list")
    return [Finding.from_dict(entry) for entry in data["findings"]]


def render_lint_table() -> str:
    """The ``docs/lint.md`` reference table, straight from the catalogue.

    Same contract as :func:`repro.service.metrics.render_metrics_table`:
    the docs file embeds this text verbatim between markers and a test
    regenerates it on every run, so the error-code reference can never
    drift from :data:`LINT_SPECS`.
    """
    lines = [
        "| Code | Severity | Meaning | Fix hint |",
        "| --- | --- | --- | --- |",
    ]
    for spec in LINT_SPECS:
        lines.append(
            f"| `{spec.code}` | {spec.severity} | {spec.title} "
            f"| {spec.hint} |"
        )
    return "\n".join(lines) + "\n"


# `field` is imported for dataclass consumers of this module's model;
# keep the namespace stable for them.
_ = field
