"""Defect-injection harness: prove every analyzer check actually fires.

A static analyzer that has never seen its defects is a no-op with good
marketing.  This module injects each defect class the catalogue
declares into a *known-good* artifact — a rule-set that lints clean at
the default gate — and asserts the specific ``RW*`` code fires, by
diffing the mutant's findings against the clean baseline:

* no false negatives — the expected code appears among the findings
  the mutation introduced;
* no false positives — the mutation introduces findings of *only*
  the expected code (pre-existing info diagnostics such as RW301 on
  descendant-axis locations are baseline, not noise).

Mutations are pure: each one deep-copies the repository (via its own
serialization round trip) or rebuilds the router, so a harness run
never contaminates the artifact it was handed.  CI runs the harness
through ``tools/lint_rule_families.py`` against the rule-sets induced
from all five site-generator families.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.core.repository import RuleRepository
from repro.core.rule import MappingRule
from repro.service.automaton import location_ineligibility
from repro.service.router import ClusterRouter
from repro.xpath.ast import (
    BinaryOp,
    FunctionCall,
    LocationPath,
    NodeTypeTest,
    NumberLiteral,
)
from repro.xpath.engine import compile_xpath

from repro.analysis.analyzer import (
    analyze_artifact,
    analyze_registry,
)
from repro.analysis.findings import Finding

__all__ = [
    "MUTATIONS",
    "Mutation",
    "MutationOutcome",
    "run_mutation",
    "verify_mutations",
]


@dataclass(frozen=True)
class Mutation:
    """One injectable defect class.

    Attributes:
        name: defect-class slug (stable; CI reports use it).
        code: the analyzer code that must fire, and the only one the
            mutation may introduce.
        description: what the injection does to the artifact.
    """

    name: str
    code: str
    description: str


@dataclass(frozen=True)
class MutationOutcome:
    """Result of injecting one defect class and re-linting."""

    mutation: Mutation
    introduced: Tuple[Finding, ...]   # findings absent from the baseline
    missing: Tuple[Finding, ...]      # baseline findings the mutant lost

    @property
    def fired(self) -> bool:
        """Whether the expected code is among the introduced findings."""
        return any(f.code == self.mutation.code for f in self.introduced)

    @property
    def spurious(self) -> Tuple[Finding, ...]:
        """Introduced findings of any *other* code (false positives)."""
        return tuple(
            f for f in self.introduced if f.code != self.mutation.code
        )

    @property
    def ok(self) -> bool:
        return self.fired and not self.spurious


# --------------------------------------------------------------------- #
# Rule surgery helpers
# --------------------------------------------------------------------- #


def _clone_repository(repository: RuleRepository) -> RuleRepository:
    """An independent deep copy, via the repository's own round trip."""
    return RuleRepository.from_dict(repository.to_dict())


def _rewrite_last_predicates(location: str, predicates: tuple) -> str:
    """``location`` with its final step's predicates replaced."""
    ast = compile_xpath(location).ast
    assert isinstance(ast, LocationPath) and ast.steps
    last = ast.steps[-1].with_predicates(predicates)
    return str(LocationPath(ast.absolute, (*ast.steps[:-1], last)))


def _eligible_rule(
    repository: RuleRepository,
    accept: Optional[Callable[[MappingRule], bool]] = None,
) -> Tuple[str, MappingRule]:
    """The first rule (cluster order) with an automaton-eligible primary.

    Mutations build on eligible child-axis locations so the mutant
    introduces exactly its own defect — an ineligible location would
    drag an RW301 along and muddy the false-positive check.
    """
    for cluster in repository.clusters():
        for rule in repository.rules(cluster):
            if location_ineligibility(
                compile_xpath(rule.primary_location)
            ) is not None:
                continue
            if accept is None or accept(rule):
                return cluster, rule
    raise LookupError(
        "no automaton-eligible rule to mutate; the harness needs a "
        "known-good rule-set"
    )


def _ends_in_literal_position(rule: MappingRule) -> bool:
    ast = compile_xpath(rule.primary_location).ast
    if not (isinstance(ast, LocationPath) and ast.steps):
        return False
    predicates = ast.steps[-1].predicates
    return len(predicates) == 1 and isinstance(predicates[0], NumberLiteral)


def _ends_in_text_step(rule: MappingRule) -> bool:
    ast = compile_xpath(rule.primary_location).ast
    if not (isinstance(ast, LocationPath) and ast.steps):
        return False
    test = ast.steps[-1].node_test
    return isinstance(test, NodeTypeTest) and test.node_type == "text"


# --------------------------------------------------------------------- #
# The injections
# --------------------------------------------------------------------- #


def _inject_unsatisfiable_predicate(repository, router):
    """RW101: the primary's final step gets a ``[0]`` predicate."""
    mutant = _clone_repository(repository)
    cluster, rule = _eligible_rule(mutant)
    location = _rewrite_last_predicates(
        rule.primary_location, (NumberLiteral(0),)
    )
    mutant.record(cluster, rule.with_primary_location(location))
    return mutant, router


def _inject_void_step(repository, router):
    """RW102: a child step appended after a ``text()`` leaf step."""
    mutant = _clone_repository(repository)
    cluster, rule = _eligible_rule(mutant, _ends_in_text_step)
    mutant.record(
        cluster,
        rule.with_primary_location(rule.primary_location + "/SPAN[1]"),
    )
    return mutant, router


def _inject_shadowed_alternative(repository, router):
    """RW201: an alternative spelling the primary already covers.

    ``.../text()[1]`` gains the alternative ``.../text()[position() =
    1]`` — not string-identical (so the rule's own dedup keeps it) but
    provably the same selection, which first-match semantics kill.
    """
    mutant = _clone_repository(repository)
    cluster, rule = _eligible_rule(mutant, _ends_in_literal_position)
    ast = compile_xpath(rule.primary_location).ast
    value = ast.steps[-1].predicates[0]
    shadowed = _rewrite_last_predicates(
        rule.primary_location,
        (BinaryOp("=", FunctionCall("position"), value),),
    )
    assert shadowed != rule.primary_location
    mutant.record(cluster, rule.with_alternative(shadowed))
    return mutant, router


def _inject_duplicate_location(repository, router):
    """RW202: a second component mapped to an existing rule's location."""
    mutant = _clone_repository(repository)
    cluster, rule = _eligible_rule(mutant)
    twin = rule.with_component(
        replace(rule.component, name=f"{rule.name}-twin")
    )
    mutant.record(cluster, twin)
    return mutant, router


def _inject_signature_collision(repository, router):
    """RW401: a second profile with an existing profile's exact payload."""
    assert router is not None and router.profiles, (
        "signature-collision mutation needs a fitted router"
    )
    source = router.profiles[0]
    twin = replace(source, name=f"{source.name}-twin")
    return repository, ClusterRouter(
        [*router.profiles, twin], threshold=router.threshold
    )


MUTATIONS: Tuple[Mutation, ...] = (
    Mutation(
        "unsatisfiable-predicate", "RW101",
        "rewrite a primary location's final predicate to [0]",
    ),
    Mutation(
        "void-step", "RW102",
        "append a child step after a text() leaf step",
    ),
    Mutation(
        "shadowed-alternative", "RW201",
        "add an alternative that re-spells the primary location",
    ),
    Mutation(
        "duplicate-location", "RW202",
        "map a second component to an existing rule's location",
    ),
    Mutation(
        "signature-collision", "RW401",
        "clone a router profile's scoring payload under a new name",
    ),
    Mutation(
        "corrupted-artifact", "RW501",
        "flip a byte inside a published version's artifact file",
    ),
)

_INJECTORS = {
    "unsatisfiable-predicate": _inject_unsatisfiable_predicate,
    "void-step": _inject_void_step,
    "shadowed-alternative": _inject_shadowed_alternative,
    "duplicate-location": _inject_duplicate_location,
    "signature-collision": _inject_signature_collision,
}


# --------------------------------------------------------------------- #
# Running the harness
# --------------------------------------------------------------------- #


def _finding_set(findings: List[Finding]) -> set:
    return set(findings)


def _diff(
    mutation: Mutation,
    baseline: List[Finding],
    mutant: List[Finding],
) -> MutationOutcome:
    base = _finding_set(baseline)
    after = _finding_set(mutant)
    return MutationOutcome(
        mutation=mutation,
        introduced=tuple(sorted(
            after - base, key=lambda f: (f.code, f.rule, f.location)
        )),
        missing=tuple(sorted(
            base - after, key=lambda f: (f.code, f.rule, f.location)
        )),
    )


def _corrupt_version(registry, version: str) -> None:
    """Tamper one byte of the stored artifact (breaks its content hash)."""
    path = registry._version_dir(version) / "artifact.json"
    text = path.read_text(encoding="utf-8")
    path.write_text(text[:-1] + ("}" if text[-1] != "}" else "]"),
                    encoding="utf-8")


def run_mutation(
    name: str,
    repository: RuleRepository,
    router: Optional[ClusterRouter],
    registry_root=None,
) -> MutationOutcome:
    """Inject defect class ``name`` and diff findings against baseline.

    Args:
        name: a :data:`MUTATIONS` slug.
        repository: the known-good rule-set (never modified).
        router: its fitted router (required by ``signature-collision``).
        registry_root: a *writable scratch directory* for the
            ``corrupted-artifact`` class, which publishes the artifact
            and then tampers with the stored bytes (other classes
            ignore it).

    Raises:
        KeyError: unknown mutation name.
    """
    mutation = next((m for m in MUTATIONS if m.name == name), None)
    if mutation is None:
        raise KeyError(
            f"unknown mutation {name!r}; pick one of "
            f"{', '.join(m.name for m in MUTATIONS)}"
        )
    if mutation.name == "corrupted-artifact":
        if registry_root is None:
            raise ValueError(
                "corrupted-artifact needs a scratch registry_root"
            )
        from repro.service.registry.store import ArtifactRegistry

        registry = ArtifactRegistry(registry_root)
        manifest = registry.publish(
            repository, router, source="import", allow_findings=True
        )
        baseline = analyze_registry(registry, [manifest.version])
        _corrupt_version(registry, manifest.version)
        mutant = analyze_registry(registry, [manifest.version])
        return _diff(mutation, baseline, mutant)
    baseline = analyze_artifact(repository, router)
    mutant_repo, mutant_router = _INJECTORS[mutation.name](
        repository, router
    )
    mutant = analyze_artifact(mutant_repo, mutant_router)
    return _diff(mutation, baseline, mutant)


def verify_mutations(
    repository: RuleRepository,
    router: Optional[ClusterRouter],
    registry_root=None,
) -> List[MutationOutcome]:
    """Run every defect class; outcomes in :data:`MUTATIONS` order."""
    return [
        run_mutation(m.name, repository, router, registry_root)
        for m in MUTATIONS
    ]
