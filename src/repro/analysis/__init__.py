"""Static analyzer for wrapper rule-sets, routers and registry artifacts.

``repro.analysis`` is to *artifacts* what ruff is to the codebase: a
pre-deploy pass that walks :class:`~repro.core.rule.MappingRule` /
XPath ASTs, router profile-sets and registry versions, and reports
defects as stable-coded findings (``RW101``–``RW501``) before they
can ship.  See ``docs/lint.md`` for the error-code reference and
``docs/operations.md`` for the deploy-gate runbook.

The package splits into:

* :mod:`repro.analysis.findings` — the declared code catalogue
  (:data:`LINT_SPECS`), the :class:`Finding` model, severity gating
  and the text/JSON renderers;
* :mod:`repro.analysis.analyzer` — the checks themselves, from
  single rules up to whole registries;
* :mod:`repro.analysis.mutations` — the defect-injection harness CI
  uses to prove each check actually fires.
"""

from repro.analysis.analyzer import (
    analyze_artifact,
    analyze_path,
    analyze_registry,
    analyze_repository,
    analyze_router,
    analyze_rule,
    location_cost,
    location_key,
)
from repro.analysis.findings import (
    LINT_SPECS,
    SEVERITIES,
    Finding,
    LintSpec,
    gate_findings,
    make_finding,
    parse_report,
    render_lint_table,
    render_report,
    render_text,
    sort_findings,
    spec_for,
    worst_severity,
)

__all__ = [
    "Finding",
    "LINT_SPECS",
    "LintSpec",
    "SEVERITIES",
    "analyze_artifact",
    "analyze_path",
    "analyze_registry",
    "analyze_repository",
    "analyze_router",
    "analyze_rule",
    "gate_findings",
    "location_cost",
    "location_key",
    "make_finding",
    "parse_report",
    "render_lint_table",
    "render_report",
    "render_text",
    "sort_findings",
    "spec_for",
    "worst_severity",
]
