"""Static analysis over rule-sets, router profile-sets and registries.

The analyzer never executes a wrapper: every check walks the compiled
XPath ASTs (:mod:`repro.xpath.ast`), the automaton's eligibility
calculus (:mod:`repro.service.automaton`) or the router's scoring
payloads, so a defect is reported *before* the artifact sees a page.
Checks map one-to-one onto the declared codes in
:data:`~repro.analysis.findings.LINT_SPECS`:

======  ==============================================================
RW101   a positional predicate no 1-based position can satisfy
RW102   steps after a ``text()``/``comment()`` test or attribute step
RW201   an alternative location its predecessors provably shadow
RW202   the same location mapped by two different rules of a cluster
RW301   a location the extraction automaton cannot serve (with the
        eligibility calculus's exact reason)
RW302   a location whose estimated scan cost dwarfs its cluster's
RW401   router profiles that collide or route by a hair-thin margin
RW501   a registry version whose stored bytes fail their content hash
======  ==============================================================

Entry points nest: :func:`analyze_rule` → :func:`analyze_repository` →
:func:`analyze_artifact` (adds the router) → :func:`analyze_registry`
(adds integrity) → :func:`analyze_path` (files and directories on
disk).  All of them return plain lists of
:class:`~repro.analysis.findings.Finding`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.repository import RuleRepository
from repro.core.rule import MappingRule
from repro.errors import RegistryError, RepositoryError
from repro.service.automaton import location_ineligibility, step_constraint
from repro.service.router import ClusterRouter
from repro.xpath.ast import (
    FilterPath,
    LocationPath,
    NodeTypeTest,
    Step,
)
from repro.xpath.engine import compile_xpath

from repro.analysis.findings import Finding, make_finding

__all__ = [
    "analyze_artifact",
    "analyze_path",
    "analyze_registry",
    "analyze_repository",
    "analyze_router",
    "analyze_rule",
    "location_cost",
    "location_key",
]

# --------------------------------------------------------------------- #
# Location structure helpers
# --------------------------------------------------------------------- #


def _location_steps(location: str) -> Tuple[Step, ...]:
    """The steps of ``location`` (the trailing steps of a filter path)."""
    ast = compile_xpath(location).ast
    if isinstance(ast, LocationPath):
        return ast.steps
    if isinstance(ast, FilterPath):
        return ast.steps
    return ()


def location_key(location: str) -> Tuple:
    """A semantic equivalence key for a location expression.

    Two locations with equal keys provably select the same nodes from
    any context.  Positionally-constrained child steps normalise to
    their :func:`~repro.service.automaton.step_constraint` bounds, so
    spelling variants of the same selection — ``TD[2]`` and
    ``TD[position()=2]``, or ``TR`` and ``TR[position()>=1]`` —
    compare equal; anything the calculus cannot bound falls back to
    the AST's canonical rendering (which already normalises
    whitespace and abbreviations).
    """
    ast = compile_xpath(location).ast
    if isinstance(ast, LocationPath):
        parts: List = ["absolute" if ast.absolute else "relative"]
        for step in ast.steps:
            constraint = step_constraint(step)
            if constraint is not None:
                parts.append(("child", str(step.node_test), constraint))
            else:
                parts.append(("step", str(step)))
        return tuple(parts)
    return ("expr", str(ast))


#: Per-step cost units of the RW302 scan-cost model.  Shaped after the
#: evaluator's traversal orders: an automaton-eligible child step is a
#: single sibling scan, a ``descendant-or-self`` step walks the whole
#: subtree, other axes re-anchor, and a filter primary pays a full
#:  expression evaluation.  Extra predicates add per-node work.
_COST_CHILD = 1
_COST_DESCENDANT = 12
_COST_OTHER_AXIS = 4
_COST_FILTER = 8
_COST_EXTRA_PREDICATE = 2

#: RW302 fires only when a location costs more than this floor *and*
#: more than ``_COST_OUTLIER_FACTOR`` times the cluster median, over a
#: cluster with at least ``_COST_MIN_POPULATION`` locations — small
#: clusters have no meaningful cost distribution.
_COST_FLOOR = 24
_COST_OUTLIER_FACTOR = 3.0
_COST_MIN_POPULATION = 4


def location_cost(location: str) -> int:
    """Estimated per-page scan cost of ``location`` (RW302's model)."""
    ast = compile_xpath(location).ast
    cost = 0
    steps: Tuple[Step, ...] = ()
    if isinstance(ast, LocationPath):
        steps = ast.steps
    elif isinstance(ast, FilterPath):
        cost += _COST_FILTER + _COST_EXTRA_PREDICATE * len(ast.predicates)
        steps = ast.steps
    else:
        return _COST_FILTER
    for step in steps:
        if step.axis == "child":
            cost += _COST_CHILD
        elif step.axis in ("descendant-or-self", "descendant"):
            cost += _COST_DESCENDANT
        else:
            cost += _COST_OTHER_AXIS
        if len(step.predicates) > 1:
            cost += _COST_EXTRA_PREDICATE * (len(step.predicates) - 1)
    return cost


# --------------------------------------------------------------------- #
# Per-rule checks: RW101, RW102, RW201, RW301
# --------------------------------------------------------------------- #


def _unsatisfiable_steps(location: str) -> List[Tuple[int, Step]]:
    """``(1-based index, step)`` of each provably-empty step (RW101).

    Positional satisfiability is axis-independent (``position()`` is
    an integer >= 1 on every axis), so each step's predicates are run
    through the automaton's bound calculus on a synthetic child step;
    a bounded-empty range (``hi < lo``) can never match a node.
    """
    hits: List[Tuple[int, Step]] = []
    for index, step in enumerate(_location_steps(location), start=1):
        for predicate in step.predicates:
            probe = Step("child", step.node_test, (predicate,))
            constraint = step_constraint(probe)
            if constraint is not None and constraint[1] < constraint[0]:
                hits.append((index, step))
                break
    return hits


def _void_steps(location: str) -> List[Tuple[int, Step, str]]:
    """``(index, offending step, why)`` for steps after a leaf (RW102).

    Text and comment nodes have no children or attributes, and an
    attribute node has no children, so any step following a
    ``text()``/``comment()`` test (or an attribute step, on a
    downward axis) selects nothing — the location's tail is dead.
    """
    hits: List[Tuple[int, Step, str]] = []
    steps = _location_steps(location)
    for index, step in enumerate(steps[:-1], start=1):
        following = steps[index]
        test = step.node_test
        if isinstance(test, NodeTypeTest) and test.node_type in (
            "text",
            "comment",
        ):
            hits.append((
                index,
                following,
                f"{test.node_type}() nodes have no children",
            ))
        elif step.axis == "attribute" and following.axis in (
            "child",
            "descendant",
            "descendant-or-self",
            "attribute",
        ):
            hits.append((
                index,
                following,
                "attribute nodes have no children",
            ))
    return hits


def analyze_rule(
    rule: MappingRule, cluster: str = "", target: str = ""
) -> List[Finding]:
    """All per-rule findings: RW101, RW102, RW201, RW301."""
    findings: List[Finding] = []
    seen_keys: Dict[Tuple, str] = {}
    for position, location in enumerate(rule.locations):
        label = (
            "primary location"
            if position == 0
            else f"alternative {position}"
        )
        for index, step in _unsatisfiable_steps(location):
            findings.append(make_finding(
                "RW101",
                f"step {index} ({step}) of the {label} has a position "
                "predicate no node can satisfy — the location always "
                "selects nothing",
                target=target, cluster=cluster, rule=rule.name,
                location=location,
            ))
        for index, following, why in _void_steps(location):
            findings.append(make_finding(
                "RW102",
                f"step {index + 1} ({following}) of the {label} follows "
                f"a leaf step: {why}",
                target=target, cluster=cluster, rule=rule.name,
                location=location,
            ))
        key = location_key(location)
        earlier = seen_keys.get(key)
        if earlier is not None and position > 0:
            findings.append(make_finding(
                "RW201",
                f"alternative {position} selects exactly the same nodes "
                f"as the earlier location {earlier!r}; first-match "
                "semantics make it dead",
                target=target, cluster=cluster, rule=rule.name,
                location=location,
            ))
        else:
            seen_keys.setdefault(key, location)
        reason = location_ineligibility(compile_xpath(location))
        if reason is not None:
            findings.append(make_finding(
                "RW301",
                f"the {label} cannot ride the extraction automaton: "
                f"{reason}",
                target=target, cluster=cluster, rule=rule.name,
                location=location,
            ))
    return findings


# --------------------------------------------------------------------- #
# Cross-rule / cluster checks: RW202, RW302
# --------------------------------------------------------------------- #


def _duplicate_locations(
    rules: List[MappingRule], cluster: str, target: str
) -> List[Finding]:
    """RW202: two rules of one cluster mapping the same primary location."""
    findings: List[Finding] = []
    by_key: Dict[Tuple, Tuple[str, str]] = {}
    for rule in rules:
        key = location_key(rule.primary_location)
        earlier = by_key.get(key)
        if earlier is not None:
            earlier_rule, earlier_location = earlier
            findings.append(make_finding(
                "RW202",
                f"primary location duplicates rule {earlier_rule!r} "
                f"({earlier_location!r}) — both components extract the "
                "same nodes",
                target=target, cluster=cluster, rule=rule.name,
                location=rule.primary_location,
            ))
        else:
            by_key[key] = (rule.name, rule.primary_location)
    return findings


def _cost_outliers(
    rules: List[MappingRule], cluster: str, target: str
) -> List[Finding]:
    """RW302: locations whose estimated cost dwarfs the cluster median."""
    costed: List[Tuple[int, MappingRule, str]] = [
        (location_cost(location), rule, location)
        for rule in rules
        for location in rule.locations
    ]
    if len(costed) < _COST_MIN_POPULATION:
        return []
    ordered = sorted(cost for cost, _, _ in costed)
    median = ordered[len(ordered) // 2]
    findings: List[Finding] = []
    for cost, rule, location in costed:
        if cost >= _COST_FLOOR and cost > _COST_OUTLIER_FACTOR * median:
            findings.append(make_finding(
                "RW302",
                f"estimated scan cost {cost} vs cluster median {median} "
                "— this location dominates per-page evaluation",
                target=target, cluster=cluster, rule=rule.name,
                location=location,
            ))
    return findings


def analyze_repository(
    repository: RuleRepository, target: str = ""
) -> List[Finding]:
    """All rule-set findings of every cluster in ``repository``."""
    findings: List[Finding] = []
    for cluster in repository.clusters():
        rules = repository.rules(cluster)
        for rule in rules:
            findings.extend(analyze_rule(rule, cluster=cluster, target=target))
        findings.extend(_duplicate_locations(rules, cluster, target))
        findings.extend(_cost_outliers(rules, cluster, target))
    return findings


# --------------------------------------------------------------------- #
# Router checks: RW401
# --------------------------------------------------------------------- #

#: A profile whose own centroid another profile scores within this
#: margin routes by tie-break noise rather than signal.  The five
#: synthetic families separate by a comfortable multiple of this, so
#: the check stays silent on healthy fits.
_AMBIGUITY_MARGIN = 0.02


def analyze_router(
    router: Optional[ClusterRouter], target: str = ""
) -> List[Finding]:
    """RW401: profile collisions and ambiguous routing margins.

    Each profile's own centroid (rebuilt as a page signature) is scored
    against every profile.  A healthy profile wins its own centroid
    with room to spare; a rival scoring it within
    :data:`_AMBIGUITY_MARGIN` — or an outright scoring-payload
    duplicate — means pages of that cluster route by tie-break.
    """
    if router is None:
        return []
    from repro.clustering.features import PageSignature

    findings: List[Finding] = []
    profiles = list(router.profiles)
    payloads = [
        (profile.url_signatures, profile.keywords, profile.paths)
        for profile in profiles
    ]
    for index, profile in enumerate(profiles):
        for other_index in range(index):
            if payloads[other_index] == payloads[index]:
                findings.append(make_finding(
                    "RW401",
                    f"profile {profile.name!r} has exactly the same "
                    f"scoring payload as {profiles[other_index].name!r} "
                    "— routing between them is pure tie-break",
                    target=target, location=profile.name,
                ))
    collided = {f.location for f in findings}
    for profile in profiles:
        if profile.name in collided or len(profiles) < 2:
            continue
        centroid = PageSignature(
            url_signature=min(profile.url_signatures, default=""),
            keywords=profile.keywords,
            paths=profile.paths,
        )
        own = profile.score(centroid)
        rival_name, rival_score = "", float("-inf")
        for other in profiles:
            if other.name == profile.name:
                continue
            score = other.score(centroid)
            if score > rival_score:
                rival_name, rival_score = other.name, score
        if rival_score >= own - _AMBIGUITY_MARGIN:
            findings.append(make_finding(
                "RW401",
                f"profile {rival_name!r} scores {profile.name!r}'s own "
                f"centroid at {rival_score:.3f} vs {own:.3f} — margin "
                f"{own - rival_score:.3f} is inside the ambiguity "
                f"threshold {_AMBIGUITY_MARGIN}",
                target=target, location=profile.name,
            ))
    return findings


# --------------------------------------------------------------------- #
# Whole artifacts, registries, paths
# --------------------------------------------------------------------- #


def analyze_artifact(
    repository: RuleRepository,
    router: Optional[ClusterRouter] = None,
    target: str = "",
) -> List[Finding]:
    """Everything the analyzer can say about one deployable artifact."""
    findings = analyze_repository(repository, target=target)
    findings.extend(analyze_router(router, target=target))
    return findings


def analyze_registry(
    registry, versions: Optional[List[str]] = None
) -> List[Finding]:
    """Lint registry versions: RW501 integrity plus artifact findings.

    Args:
        registry: an :class:`~repro.service.registry.store.
            ArtifactRegistry`.
        versions: version ids to lint (default: every stored id).

    A version that fails to load — content-hash mismatch, truncation,
    foreign format, missing pieces — yields one RW501 finding carrying
    the registry's own diagnostic; healthy versions get the full
    artifact analysis under their version id as the target.
    """
    findings: List[Finding] = []
    for version in (
        registry.version_ids() if versions is None else versions
    ):
        try:
            repository, router, _ = registry.load(version)
        except RegistryError as exc:
            findings.append(make_finding(
                "RW501",
                f"version fails integrity verification: {exc}",
                target=version,
            ))
            continue
        findings.extend(
            analyze_artifact(repository, router, target=version)
        )
    return findings


def _load_payload_file(path: Path):
    """``(repository, router-or-None)`` from one JSON file.

    Accepts both on-disk shapes the system writes: a bare repository
    (:meth:`~repro.core.repository.RuleRepository.save`) and a full
    registry artifact payload (``artifact.json``).
    """
    import json

    from repro.service.registry.artifacts import (
        repository_from_payload,
        router_from_payload,
    )

    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise RepositoryError(f"cannot read {path}: {exc}") from exc
    if isinstance(data, dict) and "repository" in data:
        return repository_from_payload(data), router_from_payload(data)
    return RuleRepository.from_dict(data), None


def analyze_path(path: Union[str, Path]) -> List[Finding]:
    """Lint rule-set files on disk: one file or a directory of them.

    A directory is a *cluster dir*: every ``*.json`` inside (sorted,
    non-recursive) is linted as a rule-set or artifact file.  Files
    that do not parse yield an RW501 finding (the on-disk artifact has
    drifted from any shape the system ever wrote) rather than raising,
    so one broken file cannot hide the findings of its siblings.
    """
    path = Path(path)
    if path.is_dir():
        findings: List[Finding] = []
        for entry in sorted(path.glob("*.json")):
            findings.extend(analyze_path(entry))
        return findings
    target = str(path)
    try:
        repository, router = _load_payload_file(path)
    except (RepositoryError, RegistryError) as exc:
        return [make_finding(
            "RW501",
            f"file is not a readable rule-set artifact: {exc}",
            target=target,
        )]
    return analyze_artifact(repository, router, target=target)
