"""HTML character-reference decoding.

Supports the named entities that appear in real data-intensive pages
(the full HTML 4 Latin-1 set plus common symbol entities) and numeric
references in decimal (``&#233;``) and hexadecimal (``&#xE9;``) form.

Unknown references are left verbatim, which is what browsers do for
strings like ``&nosuchthing;`` — important for pages that contain raw
ampersands in data values (e.g. movie titles such as "Fast & Furious").
"""

from __future__ import annotations

import re

#: Named entity table (name -> replacement character).
NAMED_ENTITIES: dict[str, str] = {
    # Core markup entities
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    # Latin-1 letters frequently seen in names/titles
    "agrave": "à",
    "aacute": "á",
    "acirc": "â",
    "atilde": "ã",
    "auml": "ä",
    "aring": "å",
    "aelig": "æ",
    "ccedil": "ç",
    "egrave": "è",
    "eacute": "é",
    "ecirc": "ê",
    "euml": "ë",
    "igrave": "ì",
    "iacute": "í",
    "icirc": "î",
    "iuml": "ï",
    "ntilde": "ñ",
    "ograve": "ò",
    "oacute": "ó",
    "ocirc": "ô",
    "otilde": "õ",
    "ouml": "ö",
    "oslash": "ø",
    "ugrave": "ù",
    "uacute": "ú",
    "ucirc": "û",
    "uuml": "ü",
    "yacute": "ý",
    "yuml": "ÿ",
    "Agrave": "À",
    "Aacute": "Á",
    "Acirc": "Â",
    "Atilde": "Ã",
    "Auml": "Ä",
    "Aring": "Å",
    "AElig": "Æ",
    "Ccedil": "Ç",
    "Egrave": "È",
    "Eacute": "É",
    "Ecirc": "Ê",
    "Euml": "Ë",
    "Igrave": "Ì",
    "Iacute": "Í",
    "Icirc": "Î",
    "Iuml": "Ï",
    "Ntilde": "Ñ",
    "Ograve": "Ò",
    "Oacute": "Ó",
    "Ocirc": "Ô",
    "Otilde": "Õ",
    "Ouml": "Ö",
    "Oslash": "Ø",
    "Ugrave": "Ù",
    "Uacute": "Ú",
    "Ucirc": "Û",
    "Uuml": "Ü",
    "szlig": "ß",
    # Punctuation and symbols
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "deg": "°",
    "plusmn": "±",
    "middot": "·",
    "laquo": "«",
    "raquo": "»",
    "ldquo": "“",
    "rdquo": "”",
    "lsquo": "‘",
    "rsquo": "’",
    "ndash": "–",
    "mdash": "—",
    "hellip": "…",
    "bull": "•",
    "dagger": "†",
    "sect": "§",
    "para": "¶",
    "euro": "€",
    "pound": "£",
    "yen": "¥",
    "cent": "¢",
    "curren": "¤",
    "frac12": "½",
    "frac14": "¼",
    "frac34": "¾",
    "sup1": "¹",
    "sup2": "²",
    "sup3": "³",
    "times": "×",
    "divide": "÷",
    "micro": "µ",
    "iexcl": "¡",
    "iquest": "¿",
    "star": "☆",
    "starf": "★",
    "rarr": "→",
    "larr": "←",
}

_ENTITY_RE = re.compile(
    r"&(?:#[xX]([0-9a-fA-F]{1,6})|#([0-9]{1,7})|([a-zA-Z][a-zA-Z0-9]{1,31}));"
)


def _replace(match: re.Match[str]) -> str:
    hex_digits, dec_digits, name = match.groups()
    if hex_digits is not None:
        return _codepoint(int(hex_digits, 16), match.group(0))
    if dec_digits is not None:
        return _codepoint(int(dec_digits, 10), match.group(0))
    return NAMED_ENTITIES.get(name, match.group(0))


def _codepoint(value: int, raw: str) -> str:
    if 0 < value <= 0x10FFFF and not (0xD800 <= value <= 0xDFFF):
        return chr(value)
    return raw


def decode_entities(text: str) -> str:
    """Decode character references in ``text``.

    >>> decode_entities("Tom &amp; Jerry &#8212; 7&frac12; min")
    'Tom & Jerry — 7½ min'
    """
    if "&" not in text:
        return text
    return _ENTITY_RE.sub(_replace, text)


def encode_entities(text: str) -> str:
    """Minimal inverse of :func:`decode_entities` for markup safety."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
