"""Tolerant HTML tree builder.

Consumes the token stream from :mod:`repro.html.tokenizer` and builds a
:class:`repro.dom.Document`.  The builder guarantees the canonical page
shape the paper's XPaths assume::

    Document
      HTML
        HEAD?    (only when head content exists)
        BODY     (always)

so that a mapping-rule location such as ``BODY[1]/DIV[2]/TABLE[3]/...``
(Section 2.3) evaluates with the ``HTML`` element as context node on any
input, however malformed.

Error-recovery rules implemented (a pragmatic subset of the HTML5
algorithm, matching what 2006-era data-intensive pages need):

* void elements (``<BR>``, ``<IMG>``, ...) never open a scope;
* implied end tags: a new ``<p>`` closes an open ``<p>``, ``<li>`` closes
  ``<li>``, ``<tr>`` closes ``<tr>``/``<td>``/``<th>``, ``<td>``/``<th>``
  close ``<td>``/``<th>``, ``<option>`` closes ``<option>``,
  ``<dt>``/``<dd>`` close each other, table sections close each other;
* stray end tags with no matching open element are dropped;
* an end tag for an ancestor closes every element in between;
* formatting elements are never popped across a table cell boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.dom.node import Comment, Document, Element, Text
from repro.dom.serialize import VOID_ELEMENTS
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    tokenize,
)

#: Tags that belong in <HEAD> when seen before any body content.
_HEAD_TAGS: frozenset[str] = frozenset(
    {"TITLE", "META", "LINK", "BASE", "STYLE"}
)

#: tag -> set of open tags it implicitly closes when it starts.
_IMPLIED_END: dict[str, frozenset[str]] = {
    "P": frozenset({"P"}),
    "LI": frozenset({"LI"}),
    "DT": frozenset({"DT", "DD"}),
    "DD": frozenset({"DT", "DD"}),
    "TR": frozenset({"TR", "TD", "TH"}),
    "TD": frozenset({"TD", "TH"}),
    "TH": frozenset({"TD", "TH"}),
    "THEAD": frozenset({"THEAD", "TBODY", "TFOOT", "TR", "TD", "TH"}),
    "TBODY": frozenset({"THEAD", "TBODY", "TFOOT", "TR", "TD", "TH"}),
    "TFOOT": frozenset({"THEAD", "TBODY", "TFOOT", "TR", "TD", "TH"}),
    "OPTION": frozenset({"OPTION"}),
    "OPTGROUP": frozenset({"OPTION", "OPTGROUP"}),
    "COLGROUP": frozenset({"COLGROUP"}),
    # Block-level elements implicitly close an open paragraph.
    "UL": frozenset({"P"}),
    "OL": frozenset({"P"}),
    "DL": frozenset({"P"}),
    "TABLE": frozenset({"P"}),
    "DIV": frozenset({"P"}),
    "H1": frozenset({"P"}),
    "H2": frozenset({"P"}),
    "H3": frozenset({"P"}),
    "H4": frozenset({"P"}),
    "H5": frozenset({"P"}),
    "H6": frozenset({"P"}),
    "BLOCKQUOTE": frozenset({"P"}),
    "PRE": frozenset({"P"}),
    "HR": frozenset({"P"}),
    "FORM": frozenset({"P"}),
}

#: Tags whose implied-close search must stop at these boundaries, so a
#: new `<li>` inside a nested `<ul>` does not close the outer `<li>`.
_CLOSE_BOUNDARIES: dict[str, frozenset[str]] = {
    "P": frozenset({"BODY", "TD", "TH", "TABLE", "DIV"}),
    "LI": frozenset({"UL", "OL", "BODY"}),
    "DT": frozenset({"DL", "BODY"}),
    "DD": frozenset({"DL", "BODY"}),
    "TR": frozenset({"TABLE", "THEAD", "TBODY", "TFOOT", "BODY"}),
    "TD": frozenset({"TR", "TABLE", "BODY"}),
    "TH": frozenset({"TR", "TABLE", "BODY"}),
    "THEAD": frozenset({"TABLE", "BODY"}),
    "TBODY": frozenset({"TABLE", "BODY"}),
    "TFOOT": frozenset({"TABLE", "BODY"}),
    "OPTION": frozenset({"SELECT", "BODY"}),
    "OPTGROUP": frozenset({"SELECT", "BODY"}),
    "COLGROUP": frozenset({"TABLE", "BODY"}),
}

#: Boundary set shared by the block elements that implicitly close <P>:
#: the paragraph must be a sibling scope, never one outside the nearest
#: cell/list-item/quote container.
_P_CLOSER_BOUNDARIES = frozenset({"BODY", "TD", "TH", "LI", "CAPTION", "BLOCKQUOTE", "DIV"})
for _tag in (
    "UL", "OL", "DL", "TABLE", "DIV", "H1", "H2", "H3", "H4", "H5", "H6",
    "BLOCKQUOTE", "PRE", "HR", "FORM",
):
    _CLOSE_BOUNDARIES[_tag] = _P_CLOSER_BOUNDARIES

#: End tags never matched across these container boundaries, preventing a
#: stray ``</b>`` from popping a table cell.
_SCOPE_BOUNDARIES: frozenset[str] = frozenset(
    {"BODY", "HTML", "TABLE", "TD", "TH", "CAPTION"}
)


class _TreeBuilder:
    """Incremental builder holding the open-element stack."""

    def __init__(self, url: str) -> None:
        self.document = Document(url)
        self.html: Optional[Element] = None
        self.head: Optional[Element] = None
        self.body: Optional[Element] = None
        self.stack: list[Element] = []

    # -- structure synthesis -------------------------------------------- #

    def ensure_html(self, attrs: Optional[dict[str, str]] = None) -> Element:
        if self.html is None:
            self.html = Element("HTML", attrs)
            self.document.append_child(self.html)
        elif attrs:
            for name, value in attrs.items():
                self.html.attributes.setdefault(name, value)
        return self.html

    def ensure_head(self) -> Element:
        html = self.ensure_html()
        if self.head is None:
            self.head = Element("HEAD")
            # HEAD always precedes BODY.
            html.insert_before(self.head, self.body)
        return self.head

    def ensure_body(self, attrs: Optional[dict[str, str]] = None) -> Element:
        html = self.ensure_html()
        if self.body is None:
            self.body = Element("BODY", attrs)
            html.append_child(self.body)
            self.stack = [self.body]
        elif attrs:
            for name, value in attrs.items():
                self.body.attributes.setdefault(name, value)
        return self.body

    # -- insertion -------------------------------------------------------- #

    @property
    def current(self) -> Element:
        if self.stack:
            return self.stack[-1]
        return self.ensure_body()

    def insert_text(self, data: str) -> None:
        if not data:
            return
        if self.body is None:
            if self.stack:
                # Inside a head element (TITLE/SCRIPT/STYLE content).
                parent = self.stack[-1]
                last = parent.children[-1] if parent.children else None
                if isinstance(last, Text):
                    last.data += data
                else:
                    parent.append_child(Text(data))
                return
            if not data.strip():
                return  # inter-element whitespace before body: drop
            self.ensure_body()
        parent = self.current
        last = parent.children[-1] if parent.children else None
        if isinstance(last, Text):
            last.data += data  # merge adjacent text nodes, like browsers
        else:
            parent.append_child(Text(data))

    def insert_comment(self, data: str) -> None:
        if self.body is None and self.html is not None:
            self.html.append_child(Comment(data))
            return
        if self.body is None:
            self.document.append_child(Comment(data))
            return
        self.current.append_child(Comment(data))

    # -- tag handling ------------------------------------------------------ #

    def start_tag(self, token: StartTagToken) -> None:
        tag = token.tag
        if tag == "HTML":
            self.ensure_html(token.attributes)
            return
        if tag == "HEAD":
            self.ensure_head()
            return
        if tag == "BODY":
            self.ensure_body(token.attributes)
            return
        if self.body is None and tag in _HEAD_TAGS:
            head = self.ensure_head()
            element = Element(tag, token.attributes)
            head.append_child(element)
            if tag not in VOID_ELEMENTS and not token.self_closing:
                # TITLE/STYLE content arrives as a following text token.
                self.stack = [element]
            return
        if self.body is None and tag == "SCRIPT":
            head = self.ensure_head()
            element = Element(tag, token.attributes)
            head.append_child(element)
            self.stack = [element]
            return

        self.ensure_body()
        self._apply_implied_end_tags(tag)
        element = Element(tag, token.attributes)
        self.current.append_child(element)
        if tag not in VOID_ELEMENTS and not token.self_closing:
            self.stack.append(element)

    def _apply_implied_end_tags(self, tag: str) -> None:
        closes = _IMPLIED_END.get(tag)
        if not closes:
            return
        boundaries = _CLOSE_BOUNDARIES.get(tag, frozenset({"BODY"}))
        # Find the nearest enclosing boundary element (e.g. the TABLE for a
        # new TR, the UL/OL for a new LI), then close the *deepest* open
        # element above it that the new tag implies an end for — together
        # with everything nested inside it.  A new <tr> therefore closes
        # an open <td> AND its row, but never a row of an outer table.
        boundary_index = -1
        for i in range(len(self.stack) - 1, -1, -1):
            if self.stack[i].tag in boundaries:
                boundary_index = i
                break
        for i in range(boundary_index + 1, len(self.stack)):
            if self.stack[i].tag in closes:
                del self.stack[i:]
                return

    def end_tag(self, token: EndTagToken) -> None:
        tag = token.tag
        if tag in ("HTML", "HEAD"):
            # Leaving head scope: subsequent content belongs to body.
            if self.stack and self.body is None:
                self.stack = []
            return
        if tag == "BODY":
            if self.body is not None:
                self.stack = [self.body]
            return
        if tag in VOID_ELEMENTS:
            return  # </br> and friends are ignored
        for i in range(len(self.stack) - 1, -1, -1):
            open_tag = self.stack[i].tag
            if open_tag == tag:
                del self.stack[i:]
                if not self.stack and self.body is not None:
                    self.stack = [self.body]
                return
            if open_tag in _SCOPE_BOUNDARIES and tag not in _SCOPE_BOUNDARIES:
                return  # don't let an inline end tag escape a cell/table
        # No match: stray end tag, dropped.

    # -- finalisation ------------------------------------------------------ #

    def finish(self) -> Document:
        self.ensure_body()
        return self.document


def parse_html(source: str, url: str = "") -> Document:
    """Parse ``source`` into a :class:`repro.dom.Document`.

    Never raises on malformed markup; recovery rules are documented in
    the module docstring.

    Args:
        source: HTML text.
        url: source URL recorded on the document (used in XML export).

    Example:
        >>> doc = parse_html("<p>one<p>two")
        >>> len(doc.document_element.find_all("P"))
        2
    """
    builder = _TreeBuilder(url)
    for token in tokenize(source):
        if isinstance(token, TextToken):
            builder.insert_text(token.data)
        elif isinstance(token, StartTagToken):
            builder.start_tag(token)
        elif isinstance(token, EndTagToken):
            builder.end_tag(token)
        elif isinstance(token, CommentToken):
            builder.insert_comment(token.data)
        elif isinstance(token, DoctypeToken):
            continue
    return builder.finish()
