"""A tolerant HTML parser producing :mod:`repro.dom` trees.

The paper's tool relies on Mozilla's "internal DOM representation of
loaded HTML documents, *whatever their syntactical quality*" (Section 5).
This package plays that role: a streaming tokenizer plus a tree builder
with browser-style error recovery (void elements, implied end tags for
``<p>``/``<li>``/``<tr>``/``<td>`` and friends, silently dropped stray end
tags, entity decoding).

Example:
    >>> from repro.html import parse_html
    >>> doc = parse_html("<html><body><p>Hi<p>There")
    >>> [el.tag for el in doc.document_element.find_all("P")]
    ['P', 'P']
"""

from repro.html.entities import decode_entities
from repro.html.parser import parse_html
from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    Token,
    tokenize,
)

__all__ = [
    "parse_html",
    "tokenize",
    "decode_entities",
    "Token",
    "StartTagToken",
    "EndTagToken",
    "TextToken",
    "CommentToken",
    "DoctypeToken",
]
