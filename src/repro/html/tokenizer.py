"""Streaming HTML tokenizer.

Splits HTML source into start tags, end tags, text, comments and
doctypes.  The tokenizer never fails on malformed input; anything it
cannot interpret as markup is emitted as text, mirroring browser
behaviour (a bare ``<`` followed by a non-letter is literal text).

Raw-text elements (``<script>``, ``<style>``, ``<textarea>``, ``<title>``)
swallow their content up to the matching end tag, so embedded ``<`` and
``&`` do not confuse the tree builder.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.errors import HtmlParseError
from repro.html.entities import decode_entities


@dataclass
class StartTagToken:
    """``<tag attr="v">`` — ``self_closing`` records a trailing ``/``."""

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass
class EndTagToken:
    """``</tag>``"""

    tag: str


@dataclass
class TextToken:
    """Character data between tags, with entities already decoded."""

    data: str


@dataclass
class CommentToken:
    """``<!-- ... -->``"""

    data: str


@dataclass
class DoctypeToken:
    """``<!DOCTYPE ...>`` — content kept verbatim, unused by the builder."""

    data: str


Token = Union[StartTagToken, EndTagToken, TextToken, CommentToken, DoctypeToken]

#: Elements whose content is raw text up to the matching end tag.
#: SCRIPT/STYLE content is truly raw; TITLE/TEXTAREA are RCDATA, i.e.
#: character references inside them are still decoded.
RAWTEXT_ELEMENTS: frozenset[str] = frozenset({"SCRIPT", "STYLE", "TEXTAREA", "TITLE"})
RCDATA_ELEMENTS: frozenset[str] = frozenset({"TEXTAREA", "TITLE"})

_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:_-]*")
_ATTR_RE = re.compile(
    r"""\s*([^\s=/>"'][^\s=/>]*)           # attribute name
        (?:\s*=\s*
            (?:"([^"]*)"                   # double-quoted value
              |'([^']*)'                   # single-quoted value
              |([^\s>]*)                   # unquoted value
            )
        )?""",
    re.VERBOSE,
)


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens for ``source``.

    Raises:
        HtmlParseError: when ``source`` is not a string.
    """
    if not isinstance(source, str):
        raise HtmlParseError(f"expected str, got {type(source).__name__}")

    pos = 0
    length = len(source)
    rawtext_until: str | None = None

    while pos < length:
        if rawtext_until is not None:
            decode = rawtext_until in RCDATA_ELEMENTS
            end_re = re.compile(rf"</{rawtext_until}\s*>", re.IGNORECASE)
            match = end_re.search(source, pos)
            if match is None:
                # Unterminated raw text: everything remaining is content.
                if pos < length:
                    data = source[pos:]
                    yield TextToken(decode_entities(data) if decode else data)
                return
            if match.start() > pos:
                data = source[pos : match.start()]
                yield TextToken(decode_entities(data) if decode else data)
            yield EndTagToken(rawtext_until.upper())
            pos = match.end()
            rawtext_until = None
            continue

        lt = source.find("<", pos)
        if lt == -1:
            yield TextToken(decode_entities(source[pos:]))
            return
        if lt > pos:
            yield TextToken(decode_entities(source[pos:lt]))
            pos = lt

        # pos is now at '<'
        if source.startswith("<!--", pos):
            end = source.find("-->", pos + 4)
            if end == -1:
                yield CommentToken(source[pos + 4 :])
                return
            yield CommentToken(source[pos + 4 : end])
            pos = end + 3
            continue

        if source.startswith("<!", pos):
            end = source.find(">", pos + 2)
            if end == -1:
                yield TextToken(source[pos:])
                return
            yield DoctypeToken(source[pos + 2 : end].strip())
            pos = end + 1
            continue

        if source.startswith("</", pos):
            name_match = _TAG_NAME_RE.match(source, pos + 2)
            if name_match is None:
                # "</" not followed by a name: literal text (browser rule
                # actually drops it as a bogus comment; text is close enough
                # and lossless).
                gt = source.find(">", pos)
                pos = length if gt == -1 else gt + 1
                continue
            gt = source.find(">", name_match.end())
            if gt == -1:
                return
            yield EndTagToken(name_match.group(0).upper())
            pos = gt + 1
            continue

        name_match = _TAG_NAME_RE.match(source, pos + 1)
        if name_match is None:
            # A lone '<' that does not open a tag: literal text.
            yield TextToken("<")
            pos += 1
            continue

        tag = name_match.group(0).upper()
        attrs, after_attrs, self_closing = _scan_attributes(source, name_match.end())
        yield StartTagToken(tag, attrs, self_closing)
        pos = after_attrs
        if tag in RAWTEXT_ELEMENTS and not self_closing:
            rawtext_until = tag
    return


def _scan_attributes(source: str, pos: int) -> tuple[dict[str, str], int, bool]:
    """Parse attributes from ``pos`` up to (and past) the closing ``>``.

    Returns (attributes, position after '>', self_closing flag).
    Unterminated tags consume to end of input.
    """
    attrs: dict[str, str] = {}
    length = len(source)
    self_closing = False
    while pos < length:
        # Skip whitespace.
        while pos < length and source[pos] in " \t\r\n\f":
            pos += 1
        if pos >= length:
            return attrs, length, self_closing
        char = source[pos]
        if char == ">":
            return attrs, pos + 1, self_closing
        if char == "/":
            pos += 1
            if pos < length and source[pos] == ">":
                return attrs, pos + 1, True
            self_closing = False
            continue
        match = _ATTR_RE.match(source, pos)
        if match is None or match.end() == pos:
            pos += 1  # skip stray character
            continue
        name = match.group(1).lower()
        value = match.group(2) or match.group(3) or match.group(4) or ""
        if name not in attrs:
            attrs[name] = decode_entities(value)
        pos = match.end()
    return attrs, length, self_closing
