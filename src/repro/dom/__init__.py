"""A small DOM implementation for HTML and XML documents.

This package provides the tree model on which the whole library operates:
the HTML parser (:mod:`repro.html`) builds these trees, the XPath engine
(:mod:`repro.xpath`) selects nodes in them, and the mapping-rule machinery
(:mod:`repro.core`) records locations of nodes as XPath expressions.

It deliberately mirrors the subset of the W3C DOM that the paper's
Mozilla-based tool relies on: element/text/comment nodes, parent/child and
sibling navigation, and a stable *document order* (depth-first, the
"most natural way of reading a document" per Section 3.4 of the paper).

Example:
    >>> from repro.dom import Document, Element, Text
    >>> doc = Document()
    >>> body = Element("BODY")
    >>> doc.append_child(body)
    >>> body.append_child(Text("hello"))
    >>> body.text_content()
    'hello'
"""

from repro.dom.node import (
    Comment,
    Document,
    Element,
    Node,
    NodeType,
    Text,
)
from repro.dom.serialize import to_html, to_xml
from repro.dom.traversal import (
    depth_of,
    iter_dfs,
    iter_elements,
    iter_text_nodes,
    max_depth,
    tag_path,
    tag_sequence,
    tree_size,
    tree_signature,
)

__all__ = [
    "Comment",
    "Document",
    "Element",
    "Node",
    "NodeType",
    "Text",
    "to_html",
    "to_xml",
    "iter_dfs",
    "iter_elements",
    "iter_text_nodes",
    "tag_path",
    "tag_sequence",
    "tree_signature",
    "tree_size",
    "max_depth",
    "depth_of",
]
