"""Tree traversal helpers and structural summaries.

Besides generic iteration, this module provides the structural summaries
used by the clustering subsystem (Section 2.1 of the paper partitions a
site's pages by "close HTML structure"):

* :func:`tag_sequence` — the DFS sequence of tag names, input to the
  tag-periodicity/sequence-similarity heuristics;
* :func:`tag_path` — the root-to-node path of tag names (a *tag path
  profile* is the multiset of these over a page);
* :func:`tree_signature` — a stable structural hash for grouping
  identically shaped pages cheaply.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.dom.node import Document, Element, Node, Text


def iter_dfs(root: Node) -> Iterator[Node]:
    """Iterate ``root`` and all descendants in document order."""
    yield from root.self_and_descendants()


def iter_elements(root: Node, tag: Optional[str] = None) -> Iterator[Element]:
    """Iterate descendant-or-self elements, optionally filtered by tag."""
    wanted = tag.upper() if tag else None
    for node in root.self_and_descendants():
        if isinstance(node, Element) and (wanted is None or node.tag == wanted):
            yield node


def iter_text_nodes(root: Node, skip_whitespace: bool = False) -> Iterator[Text]:
    """Iterate descendant text nodes in document order."""
    for node in root.self_and_descendants():
        if isinstance(node, Text):
            if skip_whitespace and node.is_whitespace():
                continue
            yield node


def find_text_node(root: Node, needle: str) -> Optional[Text]:
    """First text node whose stripped data contains ``needle``.

    This is the programmatic stand-in for the user *selecting* a value in
    the rendered page (Section 3.2): instead of a mouse click we locate
    the visible string.
    """
    for text in iter_text_nodes(root):
        if needle in text.data:
            return text
    return None


def find_text_node_exact(root: Node, value: str) -> Optional[Text]:
    """First text node whose stripped data equals ``value`` stripped."""
    wanted = value.strip()
    for text in iter_text_nodes(root):
        if text.data.strip() == wanted:
            return text
    return None


def tag_path(node: Node) -> tuple[str, ...]:
    """Root-to-node tuple of element tag names.

    Text/comment leaves contribute a pseudo-tag ``#text`` / ``#comment``
    so that paths of different node kinds remain distinguishable.
    """
    parts: list[str] = []
    current: Optional[Node] = node
    while current is not None and not isinstance(current, Document):
        if isinstance(current, Element):
            parts.append(current.tag)
        elif isinstance(current, Text):
            parts.append("#text")
        else:
            parts.append("#comment")
        current = current.parent
    return tuple(reversed(parts))


def tag_sequence(root: Node) -> list[str]:
    """DFS sequence of element tag names (open events only)."""
    return [node.tag for node in root.self_and_descendants() if isinstance(node, Element)]


def tag_path_profile(root: Node) -> dict[tuple[str, ...], int]:
    """Multiset of root-to-element tag paths, as a path -> count mapping."""
    profile: dict[tuple[str, ...], int] = {}
    for element in iter_elements(root):
        path = tag_path(element)
        profile[path] = profile.get(path, 0) + 1
    return profile


def tree_signature(root: Node) -> int:
    """Stable structural hash of a subtree (tags and shape, not text).

    Two pages with identical element structure but different text content
    hash equal, which is what a page-cluster pre-grouping wants.
    """

    def signature(node: Node) -> int:
        if isinstance(node, Element):
            child_sig = tuple(
                signature(child)
                for child in node.children
                if not isinstance(child, Text) or not child.is_whitespace()
            )
            return hash((node.tag, child_sig))
        if isinstance(node, Text):
            return hash("#text")
        if isinstance(node, Document):
            return hash(("#document", tuple(signature(c) for c in node.children)))
        return hash("#comment")

    return signature(root)


def tree_size(root: Node) -> int:
    """Number of nodes in the subtree rooted at ``root`` (inclusive)."""
    return sum(1 for _ in root.self_and_descendants())


def max_depth(root: Node) -> int:
    """Depth of the deepest node under ``root`` (``root`` itself = 0).

    Section 7 observes the approach is "empirically more effective on
    fine-grained HTML structures (i.e., highly nested documents)"; the
    nesting-depth ablation benchmark quantifies this using this measure.
    """
    best = 0

    def walk(node: Node, depth: int) -> None:
        nonlocal best
        if depth > best:
            best = depth
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    return best


def depth_of(node: Node) -> int:
    """Number of ancestors of ``node``."""
    return sum(1 for _ in node.ancestors())


def map_tree(
    root: Node,
    visit: Callable[[Node], None],
) -> None:
    """Apply ``visit`` to every node in document order (utility)."""
    for node in root.self_and_descendants():
        visit(node)
