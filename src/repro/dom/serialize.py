"""Serialisation of DOM trees back to HTML or XML text.

Two serialisers are provided:

* :func:`to_html` — writes browser-flavoured HTML (void elements such as
  ``<BR>`` are not closed, text is escaped minimally);
* :func:`to_xml` — writes well-formed XML (every element closed, full
  escaping), used by the extraction processor when emitting *mixed*
  component values, whose content is "a list of text nodes separated by
  HTML tags" (Section 7 of the paper).
"""

from __future__ import annotations

import sys

from repro.dom.node import Comment, Document, Element, Node, Text

#: Elements that never have content and are serialised without an end tag.
VOID_ELEMENTS: frozenset[str] = frozenset(
    {
        "AREA",
        "BASE",
        "BR",
        "COL",
        "EMBED",
        "HR",
        "IMG",
        "INPUT",
        "LINK",
        "META",
        "PARAM",
        "SOURCE",
        "TRACK",
        "WBR",
    }
)


# Tag names are interned in the DOM arena (see repro.dom.node), so a
# small identity-keyed cache turns per-node ``tag.lower()`` calls in
# the serialisation hot loops into one dict hit per distinct tag.
_LOWER_TAGS: dict[str, str] = {}


def _lower_tag(tag: str) -> str:
    cached = _LOWER_TAGS.get(tag)
    if cached is None:
        cached = _LOWER_TAGS[tag] = sys.intern(tag.lower())
    return cached


def escape_text(value: str) -> str:
    """Escape character data for inclusion in markup."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for inclusion in a double-quoted literal."""
    return escape_text(value).replace('"', "&quot;")


def _open_tag(element: Element, lowercase: bool) -> str:
    tag = _lower_tag(element.tag) if lowercase else element.tag
    parts = [tag]
    for name, value in element.attributes.items():
        parts.append(f'{name}="{escape_attribute(value)}"')
    return "<" + " ".join(parts) + ">"


def to_html(node: Node, lowercase_tags: bool = True) -> str:
    """Serialise ``node`` (and its subtree) as HTML text.

    Args:
        node: any DOM node; documents serialise their children.
        lowercase_tags: emit ``<body>`` rather than ``<BODY>``.  The DOM
            stores canonical upper-case names; most real HTML is written
            in lower case, so that is the default.
    """
    out: list[str] = []
    _write_html(node, out, lowercase_tags)
    return "".join(out)


def _write_html(node: Node, out: list[str], lowercase: bool) -> None:
    if isinstance(node, Document):
        for child in node.children:
            _write_html(child, out, lowercase)
        return
    if isinstance(node, Text):
        out.append(escape_text(node.data))
        return
    if isinstance(node, Comment):
        out.append(f"<!--{node.data}-->")
        return
    if isinstance(node, Element):
        out.append(_open_tag(node, lowercase))
        if node.tag in VOID_ELEMENTS:
            return
        for child in node.children:
            _write_html(child, out, lowercase)
        tag = _lower_tag(node.tag) if lowercase else node.tag
        out.append(f"</{tag}>")
        return
    raise TypeError(f"cannot serialise node of type {type(node).__name__}")


def to_xml(node: Node, lowercase_tags: bool = False) -> str:
    """Serialise ``node`` as well-formed XML (all elements closed)."""
    out: list[str] = []
    _write_xml(node, out, lowercase_tags)
    return "".join(out)


def _write_xml(node: Node, out: list[str], lowercase: bool) -> None:
    if isinstance(node, Document):
        for child in node.children:
            _write_xml(child, out, lowercase)
        return
    if isinstance(node, Text):
        out.append(escape_text(node.data))
        return
    if isinstance(node, Comment):
        out.append(f"<!--{node.data}-->")
        return
    if isinstance(node, Element):
        tag = _lower_tag(node.tag) if lowercase else node.tag
        attrs = "".join(
            f' {name}="{escape_attribute(value)}"'
            for name, value in node.attributes.items()
        )
        if not node.children:
            out.append(f"<{tag}{attrs}/>")
            return
        out.append(f"<{tag}{attrs}>")
        for child in node.children:
            _write_xml(child, out, lowercase)
        out.append(f"</{tag}>")
        return
    raise TypeError(f"cannot serialise node of type {type(node).__name__}")


def pretty_html(node: Node, indent: str = "  ", lowercase_tags: bool = True) -> str:
    """Indented HTML rendering for debugging and examples.

    Text nodes are stripped; whitespace-only text is dropped.  Do not use
    the output for re-parsing round-trips where exact whitespace matters.
    """
    lines: list[str] = []

    def write(current: Node, depth: int) -> None:
        pad = indent * depth
        if isinstance(current, Document):
            for child in current.children:
                write(child, depth)
            return
        if isinstance(current, Text):
            stripped = current.data.strip()
            if stripped:
                lines.append(pad + escape_text(stripped))
            return
        if isinstance(current, Comment):
            lines.append(f"{pad}<!--{current.data}-->")
            return
        if isinstance(current, Element):
            lines.append(pad + _open_tag(current, lowercase_tags))
            if current.tag in VOID_ELEMENTS:
                return
            for child in current.children:
                write(child, depth + 1)
            tag = _lower_tag(current.tag) if lowercase_tags else current.tag
            lines.append(f"{pad}</{tag}>")
            return
        raise TypeError(f"cannot serialise node of type {type(current).__name__}")

    write(node, 0)
    return "\n".join(lines)
